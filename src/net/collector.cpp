#include "net/collector.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <array>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "reporting/record_codec.hpp"
#include "telemetry/export.hpp"

namespace nd::net {

/// One accepted device connection: its socket, its stream parser, and
/// the device id its hello announced (none until then).
struct Collector::Connection {
  explicit Connection(Socket accepted) : socket(std::move(accepted)) {}
  Socket socket;
  FrameStreamParser parser;
  bool saw_hello{false};
  std::uint32_t device_id{0};
};

/// Routes one connection's parser events into the collector's shared
/// state. Constructed on the stack per service() call; the loop thread
/// already holds mutex_ while feeding the parser.
class Collector::ConnectionEvents final : public FrameStreamParser::Events {
 public:
  ConnectionEvents(Collector& collector, Connection& conn)
      : collector_(collector), conn_(conn) {}

  void on_hello(const Hello& hello) override {
    conn_.saw_hello = true;
    conn_.device_id = hello.device_id;
    ++collector_.stats_.hellos;
    DeviceState& device = collector_.devices_[hello.device_id];
    device.epoch = hello.epoch;
    if (hello.epoch > 0) {
      ++collector_.stats_.reconnects;
      if (collector_.tm_reconnects_ != nullptr) {
        collector_.tm_reconnects_->increment();
      }
    }
  }

  void on_bye(const Bye& bye) override {
    ++collector_.stats_.byes;
    collector_.mark_bye(bye.device_id, bye.intervals, /*journal=*/true);
  }

  void on_report_frame(std::span<const std::uint8_t> payload) override {
    ++collector_.stats_.frames_received;
    if (collector_.tm_frames_ != nullptr) {
      collector_.tm_frames_->increment();
    }
    if (!conn_.saw_hello) {
      // A report with no owner cannot enter the merge; a well-behaved
      // device always introduces itself first, so count and drop.
      ++collector_.stats_.decode_errors;
      if (collector_.tm_decode_errors_ != nullptr) {
        collector_.tm_decode_errors_->increment();
      }
      return;
    }
    collector_.ingest_report_payload(conn_.device_id, payload,
                                     /*journal=*/true);
  }

  void on_resync(std::size_t bytes_skipped) override {
    (void)bytes_skipped;
    ++collector_.stats_.resyncs;
    if (collector_.tm_resyncs_ != nullptr) {
      collector_.tm_resyncs_->increment();
    }
  }

 private:
  Collector& collector_;
  Connection& conn_;
};

/// Routes replayed journal records back into the normal ingestion path.
class Collector::JournalReplay final : public JournalReplayEvents {
 public:
  explicit JournalReplay(Collector& collector) : collector_(collector) {}

  void on_report(std::uint32_t device_id, std::uint32_t epoch,
                 std::span<const std::uint8_t> payload) override {
    DeviceState& device = collector_.devices_[device_id];
    device.epoch = std::max(device.epoch, epoch);
    collector_.ingest_report_payload(device_id, payload,
                                     /*journal=*/false);
  }

  void on_bye(std::uint32_t device_id, std::uint32_t /*epoch*/,
              std::uint32_t intervals) override {
    collector_.mark_bye(device_id, intervals, /*journal=*/false);
  }

 private:
  Collector& collector_;
};

Collector::Collector(const CollectorConfig& config) : config_(config) {
  listener_ = tcp_listen(config_.port, &port_);
  set_nonblocking(listener_.fd(), true);
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) != 0) {
    throw NetError("net: collector stop pipe");
  }
  stop_reader_ = Socket(pipe_fds[0]);
  stop_writer_ = Socket(pipe_fds[1]);
  if (config_.metrics != nullptr) {
    telemetry::MetricsRegistry& registry = *config_.metrics;
    const telemetry::Labels& labels = config_.metric_labels;
    tm_connections_ =
        &registry.counter("nd_net_connections_total", labels);
    tm_frames_ = &registry.counter("nd_net_frames_total", labels);
    tm_reports_ = &registry.counter("nd_net_reports_total", labels);
    tm_duplicates_ =
        &registry.counter("nd_net_duplicate_reports_total", labels);
    tm_decode_errors_ =
        &registry.counter("nd_net_decode_errors_total", labels);
    tm_resyncs_ = &registry.counter("nd_net_resync_total", labels);
    tm_reconnects_ =
        &registry.counter("nd_net_reconnects_total", labels);
    tm_merge_ns_ = &registry.histogram("nd_net_merge_ns", labels);
    if (!config_.journal_path.empty()) {
      tm_journal_records_ =
          &registry.counter("nd_journal_records_total", labels);
      tm_journal_replayed_ =
          &registry.counter("nd_journal_replayed_total", labels);
      tm_journal_torn_ =
          &registry.counter("nd_journal_torn_records_total", labels);
      tm_journal_write_errors_ =
          &registry.counter("nd_journal_write_errors_total", labels);
    }
    aggregator_.emplace(registry);
  }
  if (!config_.journal_path.empty()) {
    // Replay whatever a previous incarnation journaled, then open the
    // log for appending — recovery before the listener sees a byte.
    replay_journal_file();
    journal_.emplace(
        JournalWriterConfig{.path = config_.journal_path,
                            .fsync = config_.journal_fsync,
                            .fsync_batch = config_.journal_fsync_batch,
                            .faults = config_.faults,
                            .metrics = config_.metrics,
                            .metric_labels = config_.metric_labels});
  }
  ingest_buffer_.resize(64 * 1024);
}

void Collector::replay_journal_file() {
  std::ifstream in(config_.journal_path, std::ios::binary);
  if (!in) return;  // first run: nothing to replay
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)),
      std::istreambuf_iterator<char>());
  telemetry::ScopedTraceSpan span(
      config_.trace, "journal.replay", "collector", telemetry::TraceArgs{},
      "records");
  JournalReplay events(*this);
  const JournalReplayStats replayed = replay_journal(bytes, events);
  span.mutable_args().value =
      static_cast<std::int64_t>(replayed.records);
  stats_.journal_replayed += replayed.records;
  stats_.journal_torn_records += replayed.torn;
  if (tm_journal_replayed_ != nullptr) {
    tm_journal_replayed_->add(replayed.records);
  }
  if (tm_journal_torn_ != nullptr) tm_journal_torn_->add(replayed.torn);
}

void Collector::ingest_report_payload(std::uint32_t device_id,
                                      std::span<const std::uint8_t> payload,
                                      bool journal) {
  DeviceState& device = devices_[device_id];
  reporting::DecodedReport decoded;
  {
    telemetry::ScopedTraceSpan span(
        config_.trace, "frame.decode", "collector",
        telemetry::TraceArgs{device_id, device.epoch, -1,
                             static_cast<std::int64_t>(payload.size())},
        "bytes");
    try {
      decoded = reporting::decode_full(payload);
    } catch (const reporting::CodecError&) {
      // The CRC passed but the payload is not a report: a sender-side
      // corruption of the pre-framing bytes (or, on the replay path, a
      // journal record damaged before its CRC was computed). Drop it;
      // the device's retry loop re-sends the interval.
      ++stats_.decode_errors;
      if (tm_decode_errors_ != nullptr) {
        tm_decode_errors_->increment();
      }
      return;
    }
    span.mutable_args().interval =
        static_cast<std::int64_t>(decoded.report.interval);
  }
  const common::IntervalIndex interval = decoded.report.interval;
  for (const core::ShardStatus& shard : decoded.report.shards) {
    if (shard.degraded) {
      ++device.degraded_intervals;
      degraded_seen_ = true;
      break;
    }
  }
  const bool first_copy =
      device.reports.find(interval) == device.reports.end();
  if (first_copy && journal && journal_.has_value()) {
    // Journal before merge: once this report can influence the fleet
    // merge, it must survive a crash. Only first copies are written —
    // a duplicate adds nothing a replay needs.
    encode_journal_report_into(journal_scratch_, device_id, device.epoch,
                               payload);
    if (journal_->append(journal_scratch_)) {
      ++stats_.journal_records;
      if (tm_journal_records_ != nullptr) {
        tm_journal_records_->increment();
      }
      if (config_.trace != nullptr) {
        config_.trace->instant(
            "journal.append", "collector",
            telemetry::TraceArgs{device_id, device.epoch,
                                 static_cast<std::int64_t>(interval)});
      }
    } else {
      ++stats_.journal_write_errors;
      if (tm_journal_write_errors_ != nullptr) {
        tm_journal_write_errors_->increment();
      }
    }
  }
  const auto [it, inserted] = device.reports.try_emplace(
      interval, std::move(decoded.report));
  (void)it;
  if (inserted) {
    ++stats_.reports_ingested;
    if (tm_reports_ != nullptr) {
      tm_reports_->increment();
    }
    ingest_metrics_trailer(device_id, decoded.metrics_json);
  } else {
    // A reconnecting device re-ships intervals it cannot prove
    // arrived; first-copy-wins keeps the merge exactly-once — and
    // keeps the fleet aggregation exactly-once too (the duplicate's
    // trailer is discarded with it).
    ++stats_.duplicate_reports;
    if (tm_duplicates_ != nullptr) {
      tm_duplicates_->increment();
    }
    if (config_.trace != nullptr) {
      config_.trace->instant(
          "report.duplicate", "collector",
          telemetry::TraceArgs{device_id, device.epoch,
                               static_cast<std::int64_t>(interval)});
    }
  }
}

void Collector::mark_bye(std::uint32_t device_id, std::uint32_t intervals,
                         bool journal) {
  DeviceState& device = devices_[device_id];
  const bool first_bye = !device.bye;
  device.bye = true;
  if (first_bye && journal && journal_.has_value()) {
    const std::vector<std::uint8_t> record =
        encode_journal_bye(device_id, device.epoch, intervals);
    if (journal_->append(record)) {
      ++stats_.journal_records;
      if (tm_journal_records_ != nullptr) {
        tm_journal_records_->increment();
      }
    } else {
      ++stats_.journal_write_errors;
      if (tm_journal_write_errors_ != nullptr) {
        tm_journal_write_errors_->increment();
      }
    }
  }
}

void Collector::ingest_metrics_trailer(std::uint32_t device_id,
                                       const std::string& metrics_json) {
  if (!aggregator_.has_value() || metrics_json.empty()) return;
  // The trailer is one JSON line per snapshotted interval.
  std::size_t begin = 0;
  while (begin < metrics_json.size()) {
    std::size_t end = metrics_json.find('\n', begin);
    if (end == std::string::npos) end = metrics_json.size();
    const std::string_view line(metrics_json.data() + begin,
                                end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    try {
      aggregator_->ingest(device_id, telemetry::from_json_line(line));
    } catch (const std::invalid_argument&) {
      // A trailer that is not our JSON is sender-side corruption of
      // opaque bytes: count it, keep the report (it decoded fine).
      ++stats_.decode_errors;
      if (tm_decode_errors_ != nullptr) tm_decode_errors_->increment();
    }
  }
}

bool Collector::healthy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !degraded_seen_;
}

std::string Collector::status_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto uptime =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_);
  std::string out = "collector status\n";
  out += "uptime_ms: " + std::to_string(uptime.count()) + "\n";
  out += "connections: " +
         std::to_string(stats_.connections_accepted) + " accepted, " +
         std::to_string(stats_.connections_closed) + " closed\n";
  out += "frames: " + std::to_string(stats_.frames_received) +
         " received, " + std::to_string(stats_.resyncs) + " resyncs, " +
         std::to_string(stats_.decode_errors) + " decode errors\n";
  out += "reports: " + std::to_string(stats_.reports_ingested) +
         " ingested, " + std::to_string(stats_.duplicate_reports) +
         " duplicates\n";
  if (journal_.has_value()) {
    out += "journal: " + std::to_string(stats_.journal_records) +
           " appended, " + std::to_string(stats_.journal_replayed) +
           " replayed, " + std::to_string(stats_.journal_torn_records) +
           " torn, " + std::to_string(stats_.journal_write_errors) +
           " write errors\n";
  }
  out += "devices:\n";
  for (const auto& [id, device] : devices_) {
    out += "  device " + std::to_string(id) + ": epoch " +
           std::to_string(device.epoch) + ", " +
           std::to_string(device.reports.size()) + " reports" +
           (device.bye ? ", bye" : "") +
           (device.degraded_intervals > 0
                ? ", " + std::to_string(device.degraded_intervals) +
                      " degraded intervals"
                : "") +
           "\n";
  }
  out += degraded_seen_ ? "health: DEGRADED\n" : "health: ok\n";
  return out;
}

Collector::~Collector() {
  stop();
  if (thread_.joinable()) thread_.join();
}

bool Collector::all_done_locked() const {
  if (config_.expected_devices == 0) return false;
  std::uint32_t done = 0;
  for (const auto& [id, device] : devices_) {
    if (device.bye) ++done;
  }
  return done >= config_.expected_devices;
}

void Collector::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listener_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN (drained) or transient failure
    Socket accepted(fd);
    set_nonblocking(accepted.fd(), true);
    ++stats_.connections_accepted;
    if (tm_connections_ != nullptr) tm_connections_->increment();
    connections_.push_back(
        std::make_unique<Connection>(std::move(accepted)));
  }
}

bool Collector::service(Connection& conn) {
  ConnectionEvents events(*this, conn);
  std::size_t drained = 0;
  for (;;) {
    const ssize_t n = read_some(conn.socket.fd(), ingest_buffer_.data(),
                                ingest_buffer_.size());
    if (n > 0) {
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      drained += static_cast<std::size_t>(n);
      conn.parser.feed(
          {ingest_buffer_.data(), static_cast<std::size_t>(n)}, events);
      // Fairness cap first: a device blasting its spool backlog must
      // yield to the other connections once the per-wake budget is
      // spent, even when the kernel hands the bytes over in sub-buffer
      // reads (anything still queued survives to the next poll wake).
      if (config_.max_drain_bytes_per_wake != 0 &&
          drained >= config_.max_drain_bytes_per_wake) {
        ++stats_.drain_cap_hits;
        return true;
      }
      // A short read means the socket buffer is empty: stop here
      // instead of paying one more read() just to see EAGAIN.
      if (static_cast<std::size_t>(n) < ingest_buffer_.size()) {
        return true;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // Orderly EOF or a hard error: either way the connection is done.
    // A partial frame left in the parser is dropped — the device's
    // channel never got a success for it and will re-send the whole
    // interval on its next connection.
    if (conn.parser.reset() > 0) ++stats_.partial_frames_dropped;
    return false;
  }
}

void Collector::close_connection(std::size_t index) {
  ++stats_.connections_closed;
  connections_.erase(connections_.begin() +
                     static_cast<std::ptrdiff_t>(index));
}

void Collector::drain_remaining_locked() {
  // Every device said bye, but a connection cut earlier may still hold
  // queued bytes and an unread EOF — e.g. the strict prefix a
  // mid-frame disconnect left on the wire. service() stops at a short
  // read, so that EOF can be pending a poll wake that will never come.
  // Sweep the survivors once (non-blocking throughout) so the
  // partial-frame accounting is deterministic instead of a race
  // between the last bye and the dead connection's wake.
  for (std::size_t i = connections_.size(); i-- > 0;) {
    if (!service(*connections_[i])) close_connection(i);
  }
}

bool Collector::run() {
  const bool bounded = config_.timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + config_.timeout;
  std::vector<pollfd> fds;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (all_done_locked()) {
        drain_remaining_locked();
        return true;
      }
      if (stop_requested_) return false;
    }
    int timeout_ms = -1;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return false;
      timeout_ms = static_cast<int>(remaining.count());
    }

    fds.clear();
    fds.push_back(pollfd{stop_reader_.fd(), POLLIN, 0});
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& conn : connections_) {
        fds.push_back(pollfd{conn->socket.fd(), POLLIN, 0});
      }
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw NetError("net: collector poll failed");
    }
    if (ready == 0) continue;  // deadline re-checked at loop top

    if ((fds[0].revents & POLLIN) != 0) {
      std::array<std::uint8_t, 64> drain;
      (void)read_some(stop_reader_.fd(), drain.data(), drain.size());
      std::lock_guard<std::mutex> lock(mutex_);
      stop_requested_ = true;
      continue;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if ((fds[1].revents & POLLIN) != 0) accept_ready();
    // fds[2 + i] mirrors connections_[i]; service back-to-front so
    // close_connection's erase never shifts an index still to visit.
    const std::size_t watched = fds.size() - 2;
    for (std::size_t i = watched; i-- > 0;) {
      if (i >= connections_.size()) continue;
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!service(*connections_[i])) close_connection(i);
    }
  }
}

void Collector::start() {
  thread_ = std::thread([this] { thread_result_ = run(); });
}

void Collector::stop() {
  const std::uint8_t byte = 1;
  (void)::write(stop_writer_.fd(), &byte, 1);
}

bool Collector::wait() {
  if (thread_.joinable()) thread_.join();
  return thread_result_;
}

std::vector<core::Report> Collector::merged_reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Every interval any device reported, ascending.
  std::vector<common::IntervalIndex> intervals;
  for (const auto& [id, device] : devices_) {
    for (const auto& [interval, report] : device.reports) {
      intervals.push_back(interval);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  intervals.erase(std::unique(intervals.begin(), intervals.end()),
                  intervals.end());

  std::vector<core::Report> merged;
  merged.reserve(intervals.size());
  for (const common::IntervalIndex interval : intervals) {
    // Member order is ascending device id (std::map iteration), the
    // fleet analogue of ShardedDevice's merge-in-shard-order.
    std::vector<core::Report> members;
    for (const auto& [id, device] : devices_) {
      const auto it = device.reports.find(interval);
      if (it != device.reports.end()) members.push_back(it->second);
    }
    const telemetry::ScopedTimer timer(tm_merge_ns_);
    telemetry::ScopedTraceSpan span(
        config_.trace, "fleet.merge", "collector",
        telemetry::TraceArgs{-1, -1, static_cast<std::int64_t>(interval),
                             static_cast<std::int64_t>(members.size())},
        "members");
    merged.push_back(core::merge_member_reports(interval, members));
  }
  return merged;
}

CollectorStats Collector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint32_t Collector::devices_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t done = 0;
  for (const auto& [id, device] : devices_) {
    if (device.bye) ++done;
  }
  return done;
}

}  // namespace nd::net
