// Collector crash-recovery journal.
//
// A kill -9'd collector used to lose every interval it had accepted but
// not yet exported. The journal closes that window: each accepted
// (device, epoch, interval) report frame — and each bye — is appended
// to an on-disk log *before* it enters the merge state, so a restarted
// `ndtm collect --journal` replays the log through the same
// first-copy-wins dedup and resumes with a fleet merge bit-identical to
// an uninterrupted run (devices replaying their spools on reconnect
// only produce duplicates the dedup already absorbs).
//
// On disk the journal is a stream of wal records (reporting/wal.hpp)
// under its own magic 'NDJL', each payload:
//
//   type (u8: 0 = report, 1 = bye) | device id (u32) | epoch (u32) | body
//
// where a report's body is the raw NDFR payload bytes exactly as the
// frame carried them (report codec v3, metrics trailer included) and a
// bye's body is the intervals count (u32). Big-endian throughout.
// Replay is recover-or-reject: wal::scan drops torn or corrupt records
// and resyncs, a CRC-valid record with a malformed journal payload is
// counted and skipped, and the report bytes themselves are validated by
// the collector's usual decode path — damage costs exactly the damaged
// record, never the journal.
//
// Fault site (robustness/fault.hpp):
//   journal.torn_record  an append is cut mid-record (crash model);
//                        later appends still land and replay resyncs.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "robustness/fault.hpp"
#include "telemetry/metrics.hpp"

namespace nd::net {

inline constexpr std::uint32_t kJournalMagic = 0x4E444A4C;  // "NDJL"

/// Journal payload for one accepted report frame; `payload` is the NDFR
/// frame payload (the encoded report), stored verbatim.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_report(
    std::uint32_t device_id, std::uint32_t epoch,
    std::span<const std::uint8_t> payload);

/// encode_journal_report into a caller-owned scratch buffer (cleared
/// first) — the collector journals every accepted frame, so the hot
/// path reuses one buffer instead of allocating per record.
void encode_journal_report_into(std::vector<std::uint8_t>& out,
                                std::uint32_t device_id, std::uint32_t epoch,
                                std::span<const std::uint8_t> payload);

/// Journal payload for a device's bye.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_bye(
    std::uint32_t device_id, std::uint32_t epoch, std::uint32_t intervals);

/// Replay sink. on_report hands over the stored NDFR payload verbatim;
/// decoding (and deduplicating) it is the caller's business, so replay
/// flows through exactly the ingestion path live frames take.
class JournalReplayEvents {
 public:
  virtual ~JournalReplayEvents() = default;
  virtual void on_report(std::uint32_t device_id, std::uint32_t epoch,
                         std::span<const std::uint8_t> payload) = 0;
  virtual void on_bye(std::uint32_t device_id, std::uint32_t epoch,
                      std::uint32_t intervals) = 0;
};

struct JournalReplayStats {
  /// Well-formed journal records handed to the sink.
  std::uint64_t records{0};
  /// Damaged records skipped: torn/corrupt at the wal layer plus
  /// CRC-valid records whose journal payload was malformed.
  std::uint64_t torn{0};
};

/// Scan a journal byte range (typically a whole file) and replay every
/// intact record, in file order. Free function so the fuzz tables can
/// drive it without a Collector.
JournalReplayStats replay_journal(std::span<const std::uint8_t> bytes,
                                  JournalReplayEvents& events);

struct JournalWriterConfig {
  std::string path;
  /// fsync the journal (false trades crash-durability for speed).
  bool fsync{true};
  /// Group commit: fsync once per `fsync_batch` appends instead of per
  /// record (1 = every append, the classic contract). sync() and the
  /// destructor flush a partial batch, so an orderly shutdown never
  /// widens the crash window; a power cut can lose at most the last
  /// fsync_batch-1 records — which devices re-send from their spools
  /// and first-copy-wins dedup absorbs. Ignored when fsync is false.
  std::uint32_t fsync_batch{1};
  /// Fault hook for "journal.torn_record". Not owned.
  robustness::FaultInjector* faults{nullptr};
  /// Optional telemetry registry (not owned); labels tag every series.
  telemetry::MetricsRegistry* metrics{nullptr};
  telemetry::Labels metric_labels{};
};

struct JournalWriterStats {
  std::uint64_t appended{0};
  std::uint64_t write_errors{0};
  /// Appends deliberately cut mid-record by journal.torn_record.
  std::uint64_t torn_writes{0};
  /// fsync() calls issued (== appended when fsync_batch is 1).
  std::uint64_t fsyncs{0};
};

/// Append-only journal file handle (O_APPEND | O_CLOEXEC). Throws
/// JournalError when the file cannot be opened; append errors after
/// that are counted, not thrown — a collector with a sick disk keeps
/// collecting, it just loses crash-durability for the affected records.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JournalWriter {
 public:
  explicit JournalWriter(const JournalWriterConfig& config);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one journal payload (from encode_journal_*) as a wal
  /// record. Returns true when the record is fully written (with
  /// fsync_batch > 1 the fsync may be deferred to the batch boundary —
  /// see JournalWriterConfig for the crash-window contract).
  bool append(std::span<const std::uint8_t> payload);

  /// Flush a partial group-commit batch to disk now (no-op when
  /// nothing is pending or fsync is off).
  void sync();

  [[nodiscard]] const JournalWriterStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& path() const { return config_.path; }

 private:
  JournalWriterConfig config_;
  int fd_{-1};
  JournalWriterStats stats_;
  /// Appends since the last fsync (group commit).
  std::uint32_t unsynced_{0};
  /// Reusable wal-record scratch: steady-state appends allocate nothing.
  std::vector<std::uint8_t> scratch_;
  telemetry::Counter* tm_fsyncs_{nullptr};
};

}  // namespace nd::net
