// TcpTransport: the real-socket wire under reporting::ResilientChannel.
//
// The channel keeps owning policy — retry budget, exponential backoff,
// largest-first shedding, abandonment accounting — while this class
// owns mechanism: one TCP connection to the collector daemon, re-dialed
// lazily whenever it is down, with a hello control frame announcing
// (device id, reconnect epoch) after every successful connect and a bye
// frame when the capture ends. send_frame() returning false is the only
// failure signal the channel sees; it maps onto the same retry path as
// an in-process drop, so the existing chaos invariants carry over to a
// real wire unchanged.
//
// Three deterministic fault sites gate the failure paths (consulted in
// this order, at most one fires per call):
//   net.connect      the next connect attempt fails before dialing
//   net.disconnect   the frame is cut mid-write and the socket closed,
//                    exercising the collector's partial-frame handling
//   net.short_write  sends are shrunk to tiny chunks (the frame still
//                    arrives whole — TCP short writes must be invisible)
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "net/socket.hpp"
#include "reporting/resilient_channel.hpp"
#include "robustness/fault.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace nd::net {

struct TcpTransportConfig {
  /// Collector address (numeric IPv4; every deployment in this repo is
  /// loopback).
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
  /// Announced in the hello frame; the collector keys per-device state
  /// (sequence tracking, interval dedup) on it.
  std::uint32_t device_id{0};
  /// Fault hook for the net.* sites above. Not owned; null = no faults.
  robustness::FaultInjector* faults{nullptr};
  /// Optional telemetry registry (not owned); labels tag every series.
  telemetry::MetricsRegistry* metrics{nullptr};
  telemetry::Labels metric_labels{};
  /// Optional trace recorder (not owned): an instant per (re)connect,
  /// carrying the reconnect epoch the hello announced.
  telemetry::TraceRecorder* trace{nullptr};
};

struct TcpTransportStats {
  /// Successful connects (== hello frames sent). connects - 1 is the
  /// current reconnect epoch.
  std::uint64_t connects{0};
  /// Dials that failed (injected or real connection refusals).
  std::uint64_t connect_failures{0};
  std::uint64_t frames_sent{0};
  std::uint64_t bytes_sent{0};
  /// Connections lost mid-frame (injected cut or peer reset).
  std::uint64_t disconnects{0};
  /// Frames delivered under a short-write fault (chunked sends).
  std::uint64_t short_writes{0};
};

class TcpTransport final : public reporting::FrameTransport {
 public:
  explicit TcpTransport(const TcpTransportConfig& config);

  /// Test seam: adopt an already-connected socket (socket_pair()) so
  /// transport behaviour — hello framing, fault sites, partial-write
  /// loops — is testable without a listener. The hello for this
  /// "connection" is sent on the first send_frame().
  TcpTransport(const TcpTransportConfig& config, Socket connected);

  /// Dial if needed (hello included), then write the frame whole.
  /// False means the frame did not reach the collector intact; the
  /// socket is closed so the next attempt re-dials with a bumped epoch.
  [[nodiscard]] bool send_frame(
      std::span<const std::uint8_t> frame) override;

  /// Zero-copy framing path: header + payload go out in one sendmsg()
  /// scatter-gather write, so the payload is never copied behind the
  /// header. Same fault sites and failure semantics as send_frame()
  /// (the net.disconnect prefix cut and net.short_write chunking span
  /// both parts, so the chaos surface is identical).
  [[nodiscard]] bool send_frame_parts(
      std::span<const std::uint8_t> header,
      std::span<const std::uint8_t> payload) override;

  /// Best-effort bye control frame (no fault sites — saying goodbye is
  /// not part of the chaos surface). False when the connection is down
  /// and could not be re-established.
  [[nodiscard]] bool send_bye(std::uint32_t intervals);

  /// Drop the connection (tests force a reconnect this way).
  void disconnect();

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] const TcpTransportStats& stats() const { return stats_; }

 private:
  /// Ensure a live connection, sending hello on a fresh one.
  [[nodiscard]] bool ensure_connected();
  [[nodiscard]] bool write_frame(std::span<const std::uint8_t> bytes,
                                 std::size_t max_chunk);

  TcpTransportConfig config_;
  Socket socket_;
  /// Adopted socket that has not yet introduced itself.
  bool hello_pending_{false};
  TcpTransportStats stats_;
  telemetry::Counter* tm_connects_{nullptr};
  telemetry::Counter* tm_connect_failures_{nullptr};
  telemetry::Counter* tm_frames_{nullptr};
  telemetry::Counter* tm_bytes_{nullptr};
  telemetry::Counter* tm_disconnects_{nullptr};
};

}  // namespace nd::net
