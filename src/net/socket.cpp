#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace nd::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t port, std::uint16_t* bound_port) {
  // CLOEXEC everywhere a socket is born: the soak harness forks and
  // execs devices and collectors; a listener leaking into a child would
  // keep the port alive past the owner's death.
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) throw_errno("net: socket");
  const int one = 1;
  // Listener restarts (tests, daemon respawns) must not trip
  // TIME_WAIT; data correctness never depends on the port's history.
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("net: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) throw_errno("net: listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      throw_errno("net: getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: not a numeric IPv4 address: " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) throw_errno("net: socket");
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Socket();  // retryable: the caller's backoff policy decides
  }
  const int one = 1;
  // Reports are interval-granularity and framed whole; Nagle only adds
  // latency between a frame's header and body writes.
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
  return sock;
}

std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    throw_errno("net: socketpair");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

bool write_all(int fd, std::span<const std::uint8_t> bytes,
               std::size_t max_chunk) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    std::size_t len = bytes.size() - off;
    if (max_chunk != 0 && len > max_chunk) len = max_chunk;
    const ssize_t n =
        ::send(fd, bytes.data() + off, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool writev_all(int fd, std::span<const std::uint8_t> head,
                std::span<const std::uint8_t> body) {
  iovec iov[2];
  iov[0].iov_base = const_cast<std::uint8_t*>(head.data());
  iov[0].iov_len = head.size();
  iov[1].iov_base = const_cast<std::uint8_t*>(body.data());
  iov[1].iov_len = body.size();
  std::size_t idx = 0;
  while (idx < 2 && iov[idx].iov_len == 0) ++idx;
  while (idx < 2) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = 2 - idx;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    // Consume n bytes across the (at most two) segments; a partial
    // write resumes mid-segment on the next sendmsg.
    std::size_t left = static_cast<std::size_t>(n);
    while (idx < 2 && left > 0) {
      const std::size_t take =
          left < iov[idx].iov_len ? left : iov[idx].iov_len;
      iov[idx].iov_base =
          static_cast<std::uint8_t*>(iov[idx].iov_base) + take;
      iov[idx].iov_len -= take;
      left -= take;
      if (iov[idx].iov_len == 0) ++idx;
    }
    while (idx < 2 && iov[idx].iov_len == 0) ++idx;
  }
  return true;
}

ssize_t read_some(int fd, std::uint8_t* buffer, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buffer, len);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("net: fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) throw_errno("net: fcntl(F_SETFL)");
}

}  // namespace nd::net
