#include "net/transport.hpp"

#include "net/frame_stream.hpp"

namespace nd::net {

namespace {

/// Chunk size a net.short_write fault forces: small enough that any
/// real frame needs many send() calls, never zero.
[[nodiscard]] std::size_t short_write_chunk(std::uint64_t salt) {
  return static_cast<std::size_t>(salt % 7) + 1;
}

}  // namespace

TcpTransport::TcpTransport(const TcpTransportConfig& config)
    : config_(config) {
  if (config_.metrics != nullptr) {
    telemetry::MetricsRegistry& registry = *config_.metrics;
    const telemetry::Labels& labels = config_.metric_labels;
    tm_connects_ = &registry.counter("nd_net_connects_total", labels);
    tm_connect_failures_ =
        &registry.counter("nd_net_connect_failures_total", labels);
    tm_frames_ = &registry.counter("nd_net_frames_sent_total", labels);
    tm_bytes_ = &registry.counter("nd_net_bytes_sent_total", labels);
    tm_disconnects_ =
        &registry.counter("nd_net_disconnects_total", labels);
  }
}

TcpTransport::TcpTransport(const TcpTransportConfig& config,
                           Socket connected)
    : TcpTransport(config) {
  socket_ = std::move(connected);
  hello_pending_ = true;
}

bool TcpTransport::ensure_connected() {
  if (socket_.valid() && !hello_pending_) return true;
  if (!socket_.valid()) {
    if (config_.faults != nullptr &&
        config_.faults->next("net.connect").has_value()) {
      ++stats_.connect_failures;
      if (tm_connect_failures_ != nullptr) {
        tm_connect_failures_->increment();
      }
      return false;
    }
    socket_ = tcp_connect(config_.host, config_.port);
    if (!socket_.valid()) {
      ++stats_.connect_failures;
      if (tm_connect_failures_ != nullptr) {
        tm_connect_failures_->increment();
      }
      return false;
    }
    hello_pending_ = true;
  }
  // Epoch counts completed dials: 0 on the first connection, +1 per
  // reconnect — the collector uses it to distinguish a resumed device
  // from duplicate traffic.
  const Hello hello{config_.device_id,
                    static_cast<std::uint32_t>(stats_.connects)};
  if (!write_frame(encode_hello(hello), 0)) {
    ++stats_.disconnects;
    if (tm_disconnects_ != nullptr) tm_disconnects_->increment();
    socket_.close();
    hello_pending_ = true;
    return false;
  }
  hello_pending_ = false;
  ++stats_.connects;
  if (tm_connects_ != nullptr) tm_connects_->increment();
  if (config_.trace != nullptr) {
    config_.trace->instant(
        "net.connect", "transport",
        telemetry::TraceArgs{config_.device_id,
                             static_cast<std::int64_t>(hello.epoch), -1});
  }
  return true;
}

bool TcpTransport::write_frame(std::span<const std::uint8_t> bytes,
                               std::size_t max_chunk) {
  if (!write_all(socket_.fd(), bytes, max_chunk)) return false;
  stats_.bytes_sent += bytes.size();
  if (tm_bytes_ != nullptr) tm_bytes_->add(bytes.size());
  return true;
}

bool TcpTransport::send_frame(std::span<const std::uint8_t> frame) {
  return send_frame_parts(frame, {});
}

bool TcpTransport::send_frame_parts(std::span<const std::uint8_t> header,
                                    std::span<const std::uint8_t> payload) {
  if (!ensure_connected()) return false;

  const std::size_t total = header.size() + payload.size();
  std::size_t max_chunk = 0;
  if (config_.faults != nullptr) {
    if (const auto fault = config_.faults->next("net.disconnect")) {
      // Cut the connection mid-frame: ship a strict prefix so the
      // collector is left holding a partial frame, then close. The
      // prefix length is salt-derived, so seeded plans replay exactly
      // whether the frame arrived whole or as header + payload parts.
      const std::size_t prefix = robustness::truncated_size(total, fault->salt);
      const std::size_t head_part =
          prefix < header.size() ? prefix : header.size();
      (void)write_all(socket_.fd(), header.first(head_part));
      if (prefix > head_part) {
        (void)write_all(socket_.fd(), payload.first(prefix - head_part));
      }
      socket_.close();
      hello_pending_ = true;
      ++stats_.disconnects;
      if (tm_disconnects_ != nullptr) tm_disconnects_->increment();
      return false;
    }
    if (const auto fault = config_.faults->next("net.short_write")) {
      max_chunk = short_write_chunk(fault->salt);
      ++stats_.short_writes;
    }
  }

  bool ok;
  if (max_chunk != 0) {
    // Forced tiny chunks: sequential write_all per part keeps the
    // partial-write path exercised end to end (the frame still arrives
    // whole — TCP short writes must be invisible to the collector).
    ok = write_all(socket_.fd(), header, max_chunk) &&
         (payload.empty() || write_all(socket_.fd(), payload, max_chunk));
  } else if (payload.empty()) {
    ok = write_all(socket_.fd(), header);
  } else {
    ok = writev_all(socket_.fd(), header, payload);
  }
  if (!ok) {
    ++stats_.disconnects;
    if (tm_disconnects_ != nullptr) tm_disconnects_->increment();
    socket_.close();
    hello_pending_ = true;
    return false;
  }
  stats_.bytes_sent += total;
  if (tm_bytes_ != nullptr) tm_bytes_->add(total);
  ++stats_.frames_sent;
  if (tm_frames_ != nullptr) tm_frames_->increment();
  return true;
}

bool TcpTransport::send_bye(std::uint32_t intervals) {
  if (!ensure_connected()) return false;
  if (!write_frame(encode_bye(Bye{config_.device_id, intervals}), 0)) {
    ++stats_.disconnects;
    if (tm_disconnects_ != nullptr) tm_disconnects_->increment();
    socket_.close();
    hello_pending_ = true;
    return false;
  }
  return true;
}

void TcpTransport::disconnect() {
  socket_.close();
  hello_pending_ = true;
}

}  // namespace nd::net
