#include "net/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "net/frame_stream.hpp"
#include "reporting/wal.hpp"

namespace nd::net {

namespace {

/// type + device + epoch, before the per-type body.
constexpr std::size_t kJournalPrefixBytes = 9;
constexpr std::uint8_t kTypeReport = 0;
constexpr std::uint8_t kTypeBye = 1;

/// Journal records wrap NDFR payloads; allow their bound plus our
/// prefix so a damaged length field cannot demand a huge allocation.
constexpr std::size_t kMaxJournalPayload =
    kMaxFramePayloadBytes + kJournalPrefixBytes + 16;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes,
                      std::size_t offset) {
  return (static_cast<std::uint32_t>(bytes[offset]) << 24) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 8) |
         static_cast<std::uint32_t>(bytes[offset + 3]);
}

std::vector<std::uint8_t> prefix(std::uint8_t type,
                                 std::uint32_t device_id,
                                 std::uint32_t epoch) {
  std::vector<std::uint8_t> out;
  out.push_back(type);
  put_u32(out, device_id);
  put_u32(out, epoch);
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_journal_report(
    std::uint32_t device_id, std::uint32_t epoch,
    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  encode_journal_report_into(out, device_id, epoch, payload);
  return out;
}

void encode_journal_report_into(std::vector<std::uint8_t>& out,
                                std::uint32_t device_id, std::uint32_t epoch,
                                std::span<const std::uint8_t> payload) {
  out.clear();
  out.reserve(kJournalPrefixBytes + payload.size());
  out.push_back(kTypeReport);
  put_u32(out, device_id);
  put_u32(out, epoch);
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_journal_bye(std::uint32_t device_id,
                                             std::uint32_t epoch,
                                             std::uint32_t intervals) {
  std::vector<std::uint8_t> out = prefix(kTypeBye, device_id, epoch);
  put_u32(out, intervals);
  return out;
}

JournalReplayStats replay_journal(std::span<const std::uint8_t> bytes,
                                  JournalReplayEvents& events) {
  JournalReplayStats stats;
  const reporting::wal::ScanStats scanned = reporting::wal::scan(
      bytes, kJournalMagic, kMaxJournalPayload,
      [&](std::span<const std::uint8_t> payload) {
        if (payload.size() < kJournalPrefixBytes) {
          ++stats.torn;
          return;
        }
        const std::uint8_t type = payload[0];
        const std::uint32_t device_id = get_u32(payload, 1);
        const std::uint32_t epoch = get_u32(payload, 5);
        const std::span<const std::uint8_t> body =
            payload.subspan(kJournalPrefixBytes);
        if (type == kTypeReport) {
          ++stats.records;
          events.on_report(device_id, epoch, body);
        } else if (type == kTypeBye && body.size() == 4) {
          ++stats.records;
          events.on_bye(device_id, epoch, get_u32(body, 0));
        } else {
          // CRC-valid bytes that are not a journal record we know:
          // damage written before the CRC was computed, or a future
          // type. Recover-or-reject — skip it, keep replaying.
          ++stats.torn;
        }
      });
  stats.torn += scanned.torn;
  return stats;
}

JournalWriter::JournalWriter(const JournalWriterConfig& config)
    : config_(config) {
  config_.fsync_batch = std::max<std::uint32_t>(config_.fsync_batch, 1);
  fd_ = ::open(config_.path.c_str(),
               O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw JournalError("net: cannot open journal '" + config_.path + "'");
  }
  if (config_.metrics != nullptr) {
    tm_fsyncs_ = &config_.metrics->counter("nd_journal_fsync_total",
                                           config_.metric_labels);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    sync();
    ::close(fd_);
  }
}

void JournalWriter::sync() {
  if (fd_ < 0 || !config_.fsync || unsynced_ == 0) return;
  ::fsync(fd_);
  unsynced_ = 0;
  ++stats_.fsyncs;
  if (tm_fsyncs_ != nullptr) tm_fsyncs_->increment();
}

bool JournalWriter::append(std::span<const std::uint8_t> payload) {
  scratch_.clear();
  reporting::wal::append_record(scratch_, kJournalMagic, payload);
  const std::span<const std::uint8_t> record = scratch_;
  std::span<const std::uint8_t> to_write = record;
  bool torn = false;
  if (config_.faults != nullptr) {
    if (const auto decision = config_.faults->next("journal.torn_record")) {
      torn = true;
      to_write = to_write.first(
          robustness::truncated_size(record.size(), decision->salt));
    }
  }
  std::size_t offset = 0;
  while (offset < to_write.size()) {
    const ssize_t wrote =
        ::write(fd_, to_write.data() + offset, to_write.size() - offset);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ++stats_.write_errors;
      return false;
    }
    offset += static_cast<std::size_t>(wrote);
  }
  if (torn) {
    ++stats_.torn_writes;
    return false;
  }
  ++stats_.appended;
  // Group commit: the fsync lands once per batch; sync() or the
  // destructor flush a partial batch.
  if (config_.fsync && ++unsynced_ >= config_.fsync_batch) sync();
  return true;
}

}  // namespace nd::net
