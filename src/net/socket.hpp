// Thin POSIX socket layer for the collection tier: an RAII fd, loopback
// TCP listen/connect, a socketpair seam for transport tests, and the
// write-exactly loop every sender needs (partial writes and EINTR are
// normal TCP behaviour, not errors — the fault injector exercises both
// on purpose via the "net.short_write" site).
//
// Scope is deliberately small: the collector daemon and TcpTransport
// are the only consumers, both speak IPv4 (numeric addresses, loopback
// in every test), and everything above this file deals in whole NDFR
// frames — so no buffering, no readiness abstraction, no address
// resolution beyond inet_pton lives here.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <sys/types.h>
#include <utility>

namespace nd::net {

/// Socket-layer failures (bind/listen/connect/accept); message carries
/// errno text. Frame-level corruption is NOT an error at this layer —
/// the stream parser resyncs instead.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only RAII file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_{-1};
};

/// Bind and listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port — the test harness's default, so suites never collide). The
/// actually-bound port is written to `bound_port`. Throws NetError.
[[nodiscard]] Socket tcp_listen(std::uint16_t port,
                                std::uint16_t* bound_port = nullptr);

/// Blocking connect to a numeric IPv4 `host`:`port`. Throws NetError on
/// a malformed address; returns an invalid Socket when the connect
/// itself fails (refused, unreachable) — that is the retryable case the
/// caller's backoff policy owns.
[[nodiscard]] Socket tcp_connect(const std::string& host,
                                 std::uint16_t port);

/// A connected AF_UNIX pair: the deterministic socket seam transport
/// tests use instead of a live listener. Throws NetError.
[[nodiscard]] std::pair<Socket, Socket> socket_pair();

/// Write all of `bytes`, looping over partial writes and EINTR, with
/// SIGPIPE suppressed (a peer reset must surface as a return value, not
/// a signal). Returns false on any hard error. `max_chunk` caps each
/// underlying send() — the "net.short_write" fault site shrinks it to
/// force the partial-write path; 0 means unbounded.
[[nodiscard]] bool write_all(int fd, std::span<const std::uint8_t> bytes,
                             std::size_t max_chunk = 0);

/// Scatter-gather write_all: both spans go out in one sendmsg() when
/// the kernel accepts them whole, looping over partial writes and EINTR
/// with SIGPIPE suppressed. This is the zero-copy framing seam — a
/// 12-byte NDFR header and its payload hit the wire without ever being
/// assembled into one buffer. Returns false on any hard error.
[[nodiscard]] bool writev_all(int fd, std::span<const std::uint8_t> head,
                              std::span<const std::uint8_t> body);

/// One read() of up to `len` bytes, retrying EINTR. Returns bytes read,
/// 0 on orderly EOF, -1 on error or would-block.
[[nodiscard]] ssize_t read_some(int fd, std::uint8_t* buffer,
                                std::size_t len);

/// Toggle O_NONBLOCK (the collector's event loop runs every accepted
/// connection non-blocking). Throws NetError.
void set_nonblocking(int fd, bool on);

}  // namespace nd::net
