// The collection tier's stream protocol: length-delimited NDFR report
// frames (reporting/record_codec.hpp) interleaved with two fixed-size
// control frames on one TCP byte stream.
//
//   hello 'NDHI' (u32) | device id (u32) | reconnect epoch (u32) | 0 (u32)
//   bye   'NDBY' (u32) | device id (u32) | intervals sent (u32)   | 0 (u32)
//   data  'NDFR' (u32) | payload length (u32) | CRC32 (u32) | payload
//
// A device sends hello first on every (re)connection — the epoch counts
// reconnects, so the collector can tell a resumed device from a new
// one — ships one framed v3 report per interval, and says bye when its
// capture ends. Everything is big-endian, matching the report codec.
//
// FrameStreamParser is the collector's incremental decoder: feed() it
// whatever read() returned and it emits whole, CRC-verified events.
// Its central obligation is the resync rule the chaos suite enforces:
// any malformed bytes — bad magic, an absurd length prefix, a CRC
// mismatch — are skipped to the next plausible frame boundary (the
// next 'ND..' magic) and counted, never crashed on and never allowed
// to desynchronize the frames that follow. That is what lets a
// collector survive a corrupted frame in the middle of a live stream
// and keep ingesting the rest, NetFlow's "loss rates of up to 90%"
// problem answered with per-frame damage instead of per-stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nd::net {

inline constexpr std::uint32_t kHelloMagic = 0x4E444849;  // "NDHI"
inline constexpr std::uint32_t kByeMagic = 0x4E444259;    // "NDBY"
inline constexpr std::size_t kControlFrameBytes = 16;
/// Allocation bound on a report frame's payload: a length prefix above
/// this is treated as corruption (resync), not as a 4 GB allocation.
inline constexpr std::size_t kMaxFramePayloadBytes = 1ULL << 26;

struct Hello {
  std::uint32_t device_id{0};
  /// 0 on the device's first connection, +1 per reconnect.
  std::uint32_t epoch{0};
};

struct Bye {
  std::uint32_t device_id{0};
  /// Intervals the device closed over its lifetime (all epochs).
  std::uint32_t intervals{0};
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_bye(const Bye& bye);

class FrameStreamParser {
 public:
  /// Event sink for one connection's stream. on_report_frame hands over
  /// the CRC-verified NDFR payload (a view into the parser's buffer,
  /// valid only during the call); decoding it is the caller's business.
  class Events {
   public:
    virtual ~Events() = default;
    virtual void on_hello(const Hello& hello) = 0;
    virtual void on_bye(const Bye& bye) = 0;
    virtual void on_report_frame(std::span<const std::uint8_t> payload) = 0;
    /// Malformed bytes were skipped to the next plausible frame
    /// boundary. Fires once per resync decision.
    virtual void on_resync(std::size_t bytes_skipped) = 0;
  };

  explicit FrameStreamParser(
      std::size_t max_payload = kMaxFramePayloadBytes)
      : max_payload_(max_payload) {}

  /// Consume a chunk of the byte stream, emitting every complete frame.
  void feed(std::span<const std::uint8_t> bytes, Events& events);

  /// Drop any buffered partial frame (connection closed mid-frame; the
  /// device re-sends the whole report on its next connection). Returns
  /// the bytes discarded.
  std::size_t reset();

  /// Bytes held waiting for the rest of a frame.
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  /// Skip past the malformed prefix to the next candidate magic.
  std::size_t resync_skip() const;

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
};

}  // namespace nd::net
