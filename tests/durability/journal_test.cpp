// Collector crash-recovery journal suite: the journal codec round
// trip, torn-record resync, the journal.torn_record fault site, and
// the end-to-end restart property — a collector rebuilt from its
// journal merges bit-identically to one that never died, with devices
// replaying their spools absorbed by first-copy-wins dedup.
#include "net/journal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "../support/report_testing.hpp"
#include "core/device.hpp"
#include "net/collector.hpp"
#include "net/transport.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/wal.hpp"
#include "robustness/fault.hpp"

namespace nd::net {
namespace {

namespace fs = std::filesystem;

std::string fresh_path(const std::string& name) {
  const fs::path path =
      fs::path(::testing::TempDir()) / ("nd_journal_" + name);
  fs::remove_all(path);
  return path.string();
}

core::Report make_report(common::IntervalIndex interval,
                         std::size_t flows) {
  core::Report report;
  report.interval = interval;
  report.threshold = 50'000;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FF,
        static_cast<std::uint16_t>(1000 + i), 80,
        packet::IpProtocol::kTcp);
    flow.estimated_bytes = 200'000 - 10'000 * i;
    report.flows.push_back(flow);
  }
  return report;
}

struct RecordedEvents final : JournalReplayEvents {
  struct ReportEvent {
    std::uint32_t device;
    std::uint32_t epoch;
    std::vector<std::uint8_t> payload;
  };
  struct ByeEvent {
    std::uint32_t device;
    std::uint32_t epoch;
    std::uint32_t intervals;
  };
  std::vector<ReportEvent> reports;
  std::vector<ByeEvent> byes;

  void on_report(std::uint32_t device_id, std::uint32_t epoch,
                 std::span<const std::uint8_t> payload) override {
    reports.push_back(
        {device_id, epoch, {payload.begin(), payload.end()}});
  }
  void on_bye(std::uint32_t device_id, std::uint32_t epoch,
              std::uint32_t intervals) override {
    byes.push_back({device_id, epoch, intervals});
  }
};

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(Journal, CodecRoundTripThroughReplay) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  std::vector<std::uint8_t> bytes;
  reporting::wal::append_record(bytes, kJournalMagic,
                                encode_journal_report(7, 2, payload));
  reporting::wal::append_record(bytes, kJournalMagic,
                                encode_journal_bye(7, 3, 5));

  RecordedEvents events;
  const JournalReplayStats stats = replay_journal(bytes, events);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.torn, 0u);
  ASSERT_EQ(events.reports.size(), 1u);
  EXPECT_EQ(events.reports[0].device, 7u);
  EXPECT_EQ(events.reports[0].epoch, 2u);
  EXPECT_EQ(events.reports[0].payload, payload);
  ASSERT_EQ(events.byes.size(), 1u);
  EXPECT_EQ(events.byes[0].device, 7u);
  EXPECT_EQ(events.byes[0].epoch, 3u);
  EXPECT_EQ(events.byes[0].intervals, 5u);
}

TEST(Journal, ReplayResyncsPastTornRecord) {
  const std::vector<std::uint8_t> first = {10, 11, 12};
  const std::vector<std::uint8_t> last = {20, 21, 22};
  std::vector<std::uint8_t> bytes;
  reporting::wal::append_record(bytes, kJournalMagic,
                                encode_journal_report(1, 0, first));
  // A record torn mid-write: only half its bytes ever landed.
  const std::vector<std::uint8_t> middle = {30, 31, 32, 33};
  const std::vector<std::uint8_t> torn = reporting::wal::encode_record(
      kJournalMagic, encode_journal_report(2, 0, middle));
  bytes.insert(bytes.end(), torn.begin(),
               torn.begin() + static_cast<std::ptrdiff_t>(torn.size() / 2));
  reporting::wal::append_record(bytes, kJournalMagic,
                                encode_journal_report(3, 0, last));

  RecordedEvents events;
  const JournalReplayStats stats = replay_journal(bytes, events);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_GE(stats.torn, 1u);
  ASSERT_EQ(events.reports.size(), 2u);
  EXPECT_EQ(events.reports[0].payload, first);
  EXPECT_EQ(events.reports[1].payload, last);
}

TEST(Journal, MalformedPayloadIsRejectedNotCrashed) {
  // CRC-valid wal records whose journal payloads are garbage: an
  // unknown type tag, and one too short to even hold the header.
  std::vector<std::uint8_t> bytes;
  const std::vector<std::uint8_t> unknown_type(10, 9);
  const std::vector<std::uint8_t> too_short = {0};
  reporting::wal::append_record(bytes, kJournalMagic, unknown_type);
  reporting::wal::append_record(bytes, kJournalMagic, too_short);
  RecordedEvents events;
  const JournalReplayStats stats = replay_journal(bytes, events);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.torn, 2u);
  EXPECT_TRUE(events.reports.empty());
  EXPECT_TRUE(events.byes.empty());
}

TEST(Journal, GroupCommitBatchesFsyncsAndFlushesOnSyncAndClose) {
  JournalWriterConfig config;
  config.path = fresh_path("group_commit.wal");
  config.fsync_batch = 3;
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  {
    JournalWriter writer(config);
    for (std::uint32_t i = 0; i < 7; ++i) {
      const std::vector<std::uint8_t> payload = {
          static_cast<std::uint8_t>(i), 2, 3};
      ASSERT_TRUE(writer.append(encode_journal_report(1, 0, payload)));
    }
    // 7 appends / batch of 3 = 2 full batches; 1 record pending.
    EXPECT_EQ(writer.stats().appended, 7u);
    EXPECT_EQ(writer.stats().fsyncs, 2u);
    writer.sync();
    EXPECT_EQ(writer.stats().fsyncs, 3u);
    writer.sync();  // nothing pending: no extra fsync
    EXPECT_EQ(writer.stats().fsyncs, 3u);
    EXPECT_EQ(registry.counter("nd_journal_fsync_total").value(), 3u);
    ASSERT_TRUE(writer.append(encode_journal_bye(1, 0, 7)));
    // Destructor flushes the final partial batch before close.
  }
  std::ifstream in(config.path, std::ios::binary);
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)),
      std::istreambuf_iterator<char>());
  RecordedEvents events;
  const JournalReplayStats stats = replay_journal(bytes, events);
  EXPECT_EQ(stats.records, 8u);
  EXPECT_EQ(stats.torn, 0u);
}

TEST(Journal, FsyncBatchDefaultsToPerAppend) {
  JournalWriterConfig config;
  config.path = fresh_path("batch_default.wal");
  JournalWriter writer(config);
  const std::vector<std::uint8_t> payload = {1};
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.append(encode_journal_report(1, 0, payload)));
  }
  EXPECT_EQ(writer.stats().fsyncs, 4u);
}

TEST(Journal, WriterTornFaultCostsOnlyTheTornRecord) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kTruncate;
  spec.schedule = {0};
  robustness::FaultInjector faults(
      robustness::FaultPlan(5).inject("journal.torn_record", spec));

  JournalWriterConfig config;
  config.path = fresh_path("torn.wal");
  config.faults = &faults;
  const std::vector<std::uint8_t> first = {1, 2, 3};
  const std::vector<std::uint8_t> second = {42, 43, 44};
  {
    JournalWriter writer(config);
    EXPECT_FALSE(writer.append(encode_journal_report(1, 0, first)));
    EXPECT_EQ(writer.stats().torn_writes, 1u);
    EXPECT_TRUE(writer.append(encode_journal_report(2, 0, second)));
    EXPECT_EQ(writer.stats().appended, 1u);
  }
  RecordedEvents events;
  const JournalReplayStats stats =
      replay_journal(read_file_bytes(config.path), events);
  EXPECT_EQ(stats.records, 1u);
  ASSERT_EQ(events.reports.size(), 1u);
  EXPECT_EQ(events.reports[0].device, 2u);
  EXPECT_EQ(events.reports[0].payload, second);
}

/// Block until the collector has ingested (or deduplicated) `count`
/// reports — send_frame returns at the socket, not at the merge.
void wait_for_frames(const Collector& collector, std::uint64_t count) {
  for (int i = 0; i < 2000; ++i) {
    const CollectorStats stats = collector.stats();
    if (stats.reports_ingested + stats.duplicate_reports >= count) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "collector never saw " << count << " reports";
}

TEST(Journal, CollectorRestartMergesBitIdenticallyToUninterruptedRun) {
  const std::string journal = fresh_path("restart.wal");
  const packet::FlowKeyKind kind = packet::FlowKeyKind::kFiveTuple;

  // Incarnation 1 accepts two intervals, then dies without a bye (the
  // destructor models the kill: nothing is flushed beyond the journal).
  {
    CollectorConfig config;
    config.expected_devices = 1;
    config.journal_path = journal;
    Collector collector(config);
    collector.start();
    TcpTransportConfig transport_config;
    transport_config.port = collector.port();
    transport_config.device_id = 0;
    TcpTransport transport(transport_config);
    ASSERT_TRUE(transport.send_frame(
        reporting::encode_framed(make_report(0, 6), kind, {})));
    ASSERT_TRUE(transport.send_frame(
        reporting::encode_framed(make_report(1, 6), kind, {})));
    wait_for_frames(collector, 2);
    EXPECT_EQ(collector.stats().journal_records, 2u);
    collector.stop();
    EXPECT_FALSE(collector.wait());
  }

  // Incarnation 2 replays the journal, then the device replays its
  // spool (intervals 0 and 1 again — duplicates) plus the rest.
  CollectorConfig config;
  config.expected_devices = 1;
  config.journal_path = journal;
  Collector restarted(config);
  EXPECT_EQ(restarted.stats().journal_replayed, 2u);
  EXPECT_EQ(restarted.stats().journal_torn_records, 0u);
  restarted.start();
  {
    TcpTransportConfig transport_config;
    transport_config.port = restarted.port();
    transport_config.device_id = 0;
    TcpTransport transport(transport_config);
    for (std::uint32_t interval = 0; interval < 3; ++interval) {
      ASSERT_TRUE(transport.send_frame(
          reporting::encode_framed(make_report(interval, 6), kind, {})));
    }
    ASSERT_TRUE(transport.send_bye(3));
  }
  ASSERT_TRUE(restarted.wait());
  EXPECT_EQ(restarted.stats().duplicate_reports, 2u);
  EXPECT_EQ(restarted.devices_done(), 1u);

  // The uninterrupted reference: same three intervals, one clean run.
  CollectorConfig reference_config;
  reference_config.expected_devices = 1;
  Collector reference(reference_config);
  reference.start();
  {
    TcpTransportConfig transport_config;
    transport_config.port = reference.port();
    transport_config.device_id = 0;
    TcpTransport transport(transport_config);
    for (std::uint32_t interval = 0; interval < 3; ++interval) {
      ASSERT_TRUE(transport.send_frame(
          reporting::encode_framed(make_report(interval, 6), kind, {})));
    }
    ASSERT_TRUE(transport.send_bye(3));
  }
  ASSERT_TRUE(reference.wait());

  const std::vector<core::Report> recovered = restarted.merged_reports();
  const std::vector<core::Report> expected = reference.merged_reports();
  ASSERT_EQ(recovered.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    testing::expect_reports_equal(recovered[i], expected[i]);
  }
}

TEST(Journal, ReplayedByeCompletesCollectionWithoutConnections) {
  // A collector killed after the fleet's last bye restarts and is
  // already done: the journal alone carries the full collection.
  const std::string journal = fresh_path("bye.wal");
  {
    JournalWriterConfig writer_config;
    writer_config.path = journal;
    JournalWriter writer(writer_config);
    const std::vector<std::uint8_t> payload = reporting::encode(
        make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
    ASSERT_TRUE(writer.append(encode_journal_report(0, 0, payload)));
    ASSERT_TRUE(writer.append(encode_journal_bye(0, 0, 1)));
  }
  CollectorConfig config;
  config.expected_devices = 1;
  config.timeout = std::chrono::milliseconds(5000);
  config.journal_path = journal;
  Collector collector(config);
  EXPECT_EQ(collector.stats().journal_replayed, 2u);
  EXPECT_EQ(collector.devices_done(), 1u);
  EXPECT_TRUE(collector.run());
  EXPECT_EQ(collector.stats().connections_accepted, 0u);
  ASSERT_EQ(collector.merged_reports().size(), 1u);
}

}  // namespace
}  // namespace nd::net
