// SpoolWal unit suite: append/recover round trips, watermark
// ack/rewind semantics, segment rotation, the disk-budget
// evict-then-shed-then-drop ladder, every spool.* fault site, and the
// ResilientChannel integration (exhausted reports stay spooled; a
// transport failure mid-drain rewinds and the full log replays).
#include "reporting/spool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "../support/report_testing.hpp"
#include "core/device.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/resilient_channel.hpp"
#include "robustness/fault.hpp"

namespace nd::reporting {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty spool directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("nd_spool_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// Flows already sorted largest-first so shed predictions are exact
/// (ResilientChannel::send sorts before appending; direct appends here
/// pre-sort the same way).
core::Report make_report(common::IntervalIndex interval,
                         std::size_t flows) {
  core::Report report;
  report.interval = interval;
  report.threshold = 50'000;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FF,
        static_cast<std::uint16_t>(1000 + i), 80,
        packet::IpProtocol::kTcp);
    flow.estimated_bytes = 200'000 - 10'000 * i;
    report.flows.push_back(flow);
  }
  return report;
}

robustness::FaultPlan site_schedule(const std::string& site,
                                    std::vector<std::uint64_t> schedule) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kDrop;
  spec.schedule = std::move(schedule);
  return robustness::FaultPlan(5).inject(site, spec);
}

/// Frame size on disk for a no-shard, no-trailer report with F flows.
constexpr std::uint64_t frame_bytes(std::uint64_t flows) {
  return kFrameHeaderBytes + kHeaderBytes + flows * kRecordBytes +
         kTrailerLengthBytes;
}

TEST(SpoolWal, AppendRecoverRoundTrip) {
  SpoolWalConfig config;
  config.directory = fresh_dir("roundtrip");
  {
    SpoolWal spool(config);
    for (std::uint32_t i = 0; i < 3; ++i) {
      const SpoolWal::AppendResult result = spool.append(
          make_report(i, 4), packet::FlowKeyKind::kFiveTuple, {});
      EXPECT_EQ(result.index, i);
      EXPECT_TRUE(result.durable);
      EXPECT_EQ(result.records_shed, 0u);
    }
    EXPECT_EQ(spool.stats().appended, 3u);
    EXPECT_EQ(spool.backlog(), 3u);
  }
  // A new process over the same directory sees every frame, unsent.
  SpoolWal spool(config);
  EXPECT_EQ(spool.stats().recovered, 3u);
  EXPECT_EQ(spool.stats().torn_records, 0u);
  EXPECT_EQ(spool.watermark(), 0u);
  ASSERT_EQ(spool.frame_count(), 3u);
  EXPECT_TRUE(spool.draining());
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(spool.frame_interval(i), i);
    const DecodedReport decoded = decode_framed(spool.frame(i));
    testing::expect_reports_equal(decoded.report, make_report(i, 4));
  }
}

TEST(SpoolWal, WatermarkAckAndRewind) {
  SpoolWalConfig config;
  config.directory = fresh_dir("watermark");
  SpoolWal spool(config);
  for (std::uint32_t i = 0; i < 3; ++i) {
    spool.append(make_report(i, 2), packet::FlowKeyKind::kFiveTuple, {});
  }
  spool.ack();
  spool.ack();
  EXPECT_EQ(spool.watermark(), 2u);
  EXPECT_EQ(spool.backlog(), 1u);
  EXPECT_EQ(spool.stats().acked, 2u);

  // A dead connection marks the whole log pending again.
  spool.rewind();
  EXPECT_EQ(spool.watermark(), 0u);
  EXPECT_EQ(spool.backlog(), 3u);
  EXPECT_EQ(spool.stats().rewinds, 1u);
  // Rewinding an already-rewound log is a no-op, not a new rewind.
  spool.rewind();
  EXPECT_EQ(spool.stats().rewinds, 1u);

  spool.ack();
  spool.ack();
  spool.ack();
  EXPECT_EQ(spool.backlog(), 0u);
  EXPECT_FALSE(spool.draining());
}

TEST(SpoolWal, RotationFinalizesSegmentsAndRecoveryFindsAll) {
  SpoolWalConfig config;
  config.directory = fresh_dir("rotate");
  config.max_segment_bytes = 1;  // every frame rotates into its own file
  {
    SpoolWal spool(config);
    for (std::uint32_t i = 0; i < 3; ++i) {
      spool.append(make_report(i, 4), packet::FlowKeyKind::kFiveTuple, {});
    }
    EXPECT_GE(spool.stats().segments_created, 3u);
    std::size_t closed = 0;
    std::size_t open = 0;
    for (const auto& entry : fs::directory_iterator(config.directory)) {
      const std::string name = entry.path().filename().string();
      if (name.ends_with(".seg.open")) {
        ++open;
      } else if (name.ends_with(".seg")) {
        ++closed;
      }
    }
    EXPECT_EQ(closed, 2u);  // rotation finalized by rename
    EXPECT_EQ(open, 1u);    // the active segment
  }
  SpoolWal spool(config);
  EXPECT_EQ(spool.stats().recovered, 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(spool.frame_interval(i), i);
  }
}

TEST(SpoolWal, GroupCommitBatchesFsyncsAndFlushesOnSyncAndClose) {
  SpoolWalConfig config;
  config.directory = fresh_dir("group_commit");
  config.fsync_batch = 4;
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;
  {
    SpoolWal spool(config);
    for (std::uint32_t i = 0; i < 10; ++i) {
      const SpoolWal::AppendResult result = spool.append(
          make_report(i, 4), packet::FlowKeyKind::kFiveTuple, {});
      EXPECT_TRUE(result.durable);
    }
    // 10 appends / batch of 4 = 2 full batches; 2 records pending.
    EXPECT_EQ(spool.stats().fsyncs, 2u);
    spool.sync();
    EXPECT_EQ(spool.stats().fsyncs, 3u);
    spool.sync();  // nothing pending: no extra fsync
    EXPECT_EQ(spool.stats().fsyncs, 3u);
    EXPECT_EQ(registry.counter("nd_spool_fsync_total").value(), 3u);
    spool.append(make_report(10, 4), packet::FlowKeyKind::kFiveTuple, {});
    // Destructor flushes the final partial batch.
  }
  SpoolWal spool(config);
  EXPECT_EQ(spool.stats().recovered, 11u);
  EXPECT_EQ(spool.stats().torn_records, 0u);
}

TEST(SpoolWal, GroupCommitFlushesBeforeRotationFinalizesSegment) {
  SpoolWalConfig config;
  config.directory = fresh_dir("group_commit_rotate");
  config.max_segment_bytes = 1;  // every append rotates
  config.fsync_batch = 100;      // far larger than the appends below
  {
    SpoolWal spool(config);
    for (std::uint32_t i = 0; i < 3; ++i) {
      spool.append(make_report(i, 4), packet::FlowKeyKind::kFiveTuple, {});
    }
    // Each rotation flushed the batch before the rename: a closed .seg
    // must hold everything it claims to.
    EXPECT_GE(spool.stats().fsyncs, 2u);
  }
  SpoolWal spool(config);
  EXPECT_EQ(spool.stats().recovered, 3u);
}

TEST(SpoolWal, FsyncBatchOneKeepsPerAppendDurability) {
  SpoolWalConfig config;
  config.directory = fresh_dir("batch_one");
  {
    SpoolWal spool(config);  // fsync_batch defaults to 1
    for (std::uint32_t i = 0; i < 5; ++i) {
      spool.append(make_report(i, 4), packet::FlowKeyKind::kFiveTuple, {});
    }
    EXPECT_EQ(spool.stats().fsyncs, 5u);
  }
  SpoolWalConfig off = config;
  off.directory = fresh_dir("fsync_off");
  off.fsync = false;
  off.fsync_batch = 4;  // ignored when fsync is off
  SpoolWal spool(off);
  spool.append(make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
  spool.sync();
  EXPECT_EQ(spool.stats().fsyncs, 0u);
}

TEST(SpoolWal, TornTailCostsExactlyTheLastRecord) {
  SpoolWalConfig config;
  config.directory = fresh_dir("torn_tail");
  {
    SpoolWal spool(config);
    spool.append(make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
    spool.append(make_report(1, 4), packet::FlowKeyKind::kFiveTuple, {});
  }
  // Crash model: the tail of the active segment never hit the platter.
  for (const auto& entry : fs::directory_iterator(config.directory)) {
    const std::uintmax_t size = fs::file_size(entry.path());
    if (size == 0) continue;
    fs::resize_file(entry.path(), size - 5);
  }
  SpoolWal spool(config);
  EXPECT_EQ(spool.stats().recovered, 1u);
  EXPECT_EQ(spool.stats().torn_records, 1u);
  ASSERT_EQ(spool.frame_count(), 1u);
  EXPECT_EQ(spool.frame_interval(0), 0u);
  testing::expect_reports_equal(decode_framed(spool.frame(0)).report,
                                make_report(0, 4));
}

TEST(SpoolWal, DiskFullFaultKeepsFrameDeliverableInMemory) {
  robustness::FaultInjector faults(site_schedule("spool.disk_full", {0}));
  SpoolWalConfig config;
  config.directory = fresh_dir("disk_full");
  config.faults = &faults;
  {
    SpoolWal spool(config);
    const SpoolWal::AppendResult result = spool.append(
        make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
    EXPECT_EQ(result.index, 0u);
    EXPECT_FALSE(result.durable);
    EXPECT_EQ(spool.stats().write_errors, 1u);
    // Still deliverable this run: the frame drains from memory.
    EXPECT_EQ(spool.backlog(), 1u);
    testing::expect_reports_equal(decode_framed(spool.frame(0)).report,
                                  make_report(0, 4));
  }
  // But not durable: a crash before delivery loses exactly this frame.
  SpoolWalConfig clean = config;
  clean.faults = nullptr;
  SpoolWal spool(clean);
  EXPECT_EQ(spool.stats().recovered, 0u);
}

TEST(SpoolWal, TornWriteFaultSurvivesToIntactNeighbors) {
  robustness::FaultInjector faults(
      site_schedule("spool.torn_record", {0}));
  SpoolWalConfig config;
  config.directory = fresh_dir("torn_write");
  config.faults = &faults;
  {
    SpoolWal spool(config);
    const SpoolWal::AppendResult torn = spool.append(
        make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
    EXPECT_FALSE(torn.durable);
    EXPECT_EQ(spool.stats().torn_writes, 1u);
    const SpoolWal::AppendResult clean = spool.append(
        make_report(1, 4), packet::FlowKeyKind::kFiveTuple, {});
    EXPECT_TRUE(clean.durable);
  }
  // Recovery resyncs past the torn record; the intact neighbor is
  // whole. (The tear's cut point is salt-derived, so the torn prefix
  // may be empty — at most one damaged record is ever reported.)
  SpoolWalConfig clean = config;
  clean.faults = nullptr;
  SpoolWal spool(clean);
  ASSERT_EQ(spool.stats().recovered, 1u);
  EXPECT_LE(spool.stats().torn_records, 1u);
  EXPECT_EQ(spool.frame_interval(0), 1u);
}

TEST(SpoolWal, ShortWriteFaultLandsTheWholeRecord) {
  robustness::FaultInjector faults(
      site_schedule("spool.short_write", {0}));
  SpoolWalConfig config;
  config.directory = fresh_dir("short_write");
  config.faults = &faults;
  {
    SpoolWal spool(config);
    const SpoolWal::AppendResult result = spool.append(
        make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
    EXPECT_TRUE(result.durable);
    EXPECT_EQ(spool.stats().short_writes, 1u);
  }
  SpoolWalConfig clean = config;
  clean.faults = nullptr;
  SpoolWal spool(clean);
  EXPECT_EQ(spool.stats().recovered, 1u);
  EXPECT_EQ(spool.stats().torn_records, 0u);
}

TEST(SpoolWal, BudgetEvictsAckedFramesOldestFirst) {
  SpoolWalConfig config;
  config.directory = fresh_dir("evict");
  config.max_segment_bytes = 1;  // one frame per segment: eviction can
                                 // actually reclaim closed files
  config.max_total_bytes = 300;  // two 136-byte frames fit, three don't
  SpoolWal spool(config);
  ASSERT_EQ(frame_bytes(4), 136u);
  spool.append(make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
  spool.ack();
  spool.append(make_report(1, 4), packet::FlowKeyKind::kFiveTuple, {});
  spool.ack();
  const SpoolWal::AppendResult result = spool.append(
      make_report(2, 4), packet::FlowKeyKind::kFiveTuple, {});
  // The oldest acked frame made room; nothing was shed or dropped.
  EXPECT_NE(result.index, SpoolWal::npos);
  EXPECT_EQ(result.records_shed, 0u);
  EXPECT_EQ(spool.stats().evicted, 1u);
  EXPECT_EQ(spool.stats().dropped, 0u);
  ASSERT_EQ(spool.frame_count(), 2u);
  EXPECT_EQ(spool.frame_interval(0), 1u);
  EXPECT_EQ(spool.frame_interval(1), 2u);
  EXPECT_EQ(spool.watermark(), 1u);  // interval 1 stays acked
  EXPECT_LE(spool.stats().bytes_on_disk, config.max_total_bytes);
}

TEST(SpoolWal, BudgetShedsSmallestFlowsToFit) {
  SpoolWalConfig config;
  config.directory = fresh_dir("shed");
  config.max_total_bytes = 150;
  SpoolWal spool(config);
  // 8 flows need 232 bytes; the 150-byte budget holds exactly 4.
  const SpoolWal::AppendResult result = spool.append(
      make_report(0, 8), packet::FlowKeyKind::kFiveTuple, {});
  EXPECT_NE(result.index, SpoolWal::npos);
  EXPECT_EQ(result.records_shed, 4u);
  EXPECT_EQ(spool.stats().records_shed, 4u);
  EXPECT_EQ(spool.stats().dropped, 0u);
  // Largest-first keep: the retained prefix is the 4 biggest flows.
  const DecodedReport decoded = decode_framed(spool.frame(0));
  core::Report expected = make_report(0, 8);
  expected.flows.resize(4);
  testing::expect_reports_equal(decoded.report, expected);
}

TEST(SpoolWal, OversizeReportIsDroppedAndCounted) {
  SpoolWalConfig config;
  config.directory = fresh_dir("drop");
  config.max_total_bytes = 30;  // below even an empty report's 40 bytes
  SpoolWal spool(config);
  const SpoolWal::AppendResult result = spool.append(
      make_report(0, 4), packet::FlowKeyKind::kFiveTuple, {});
  EXPECT_EQ(result.index, SpoolWal::npos);
  EXPECT_EQ(spool.stats().dropped, 1u);
  EXPECT_EQ(spool.backlog(), 0u);
}

/// A transport whose per-frame verdicts are scripted; every attempted
/// frame is captured regardless of verdict.
class ScriptedTransport final : public FrameTransport {
 public:
  explicit ScriptedTransport(std::deque<bool> verdicts)
      : verdicts_(std::move(verdicts)) {}

  bool send_frame(std::span<const std::uint8_t> frame) override {
    frames.emplace_back(frame.begin(), frame.end());
    if (verdicts_.empty()) return true;
    const bool ok = verdicts_.front();
    verdicts_.pop_front();
    return ok;
  }

  std::vector<std::vector<std::uint8_t>> frames;

 private:
  std::deque<bool> verdicts_;
};

TEST(SpoolWal, ChannelExhaustionLeavesReportSpooledNotAbandoned) {
  ScriptedTransport transport({false, false, true});
  SpoolWalConfig spool_config;
  spool_config.directory = fresh_dir("channel_exhaust");
  SpoolWal spool(spool_config);
  ResilientChannelConfig config;
  config.transport = &transport;
  config.spool = &spool;
  config.max_attempts = 2;
  config.backoff_base = std::chrono::microseconds(10);
  ResilientChannel channel(config);

  const DeliveryOutcome outcome = channel.send(make_report(0, 4));
  EXPECT_FALSE(outcome.delivered);
  EXPECT_TRUE(outcome.spooled);
  EXPECT_EQ(outcome.backlog, 1u);
  // The spool converts abandonment into waiting.
  EXPECT_EQ(channel.stats().reports_abandoned, 0u);
  EXPECT_EQ(channel.stats().reports_spooled, 1u);
  EXPECT_EQ(channel.stats().transport_failures, 2u);

  // The wire comes back: an explicit drain empties the backlog.
  EXPECT_TRUE(channel.drain_spool());
  EXPECT_EQ(spool.backlog(), 0u);
  EXPECT_EQ(spool.stats().acked, 1u);
  ASSERT_EQ(transport.frames.size(), 3u);
  testing::expect_reports_equal(
      decode_framed(transport.frames.back()).report, make_report(0, 4));
}

TEST(SpoolWal, ChannelTransportFailureRewindsAndReplaysWholeLog) {
  // Frame 0 delivers; frame 1's first attempt kills the connection.
  // The watermark rewinds to zero, so the retry replays frame 0 (which
  // the collector dedups) before frame 1.
  ScriptedTransport transport({true, false, true, true});
  SpoolWalConfig spool_config;
  spool_config.directory = fresh_dir("channel_rewind");
  SpoolWal spool(spool_config);
  ResilientChannelConfig config;
  config.transport = &transport;
  config.spool = &spool;
  config.max_attempts = 4;
  config.backoff_base = std::chrono::microseconds(10);
  ResilientChannel channel(config);

  EXPECT_TRUE(channel.send(make_report(0, 4)).delivered);
  const DeliveryOutcome outcome = channel.send(make_report(1, 4));
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.backlog, 0u);
  EXPECT_EQ(spool.stats().rewinds, 1u);
  EXPECT_EQ(spool.backlog(), 0u);
  ASSERT_EQ(transport.frames.size(), 4u);
  // The replay resends frame 0 byte-identically.
  EXPECT_EQ(transport.frames[2], transport.frames[0]);
  testing::expect_reports_equal(
      decode_framed(transport.frames[3]).report, make_report(1, 4));
}

}  // namespace
}  // namespace nd::reporting
