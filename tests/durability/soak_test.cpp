// Kill-level chaos soak over the real ndtm binary: a two-member fleet
// ships a synthesized capture to a journaled collector over loopback
// while the collector is SIGKILLed and restarted between cycles (with
// a seeded mid-interval kill delay) and the devices are SIGKILLed and
// restarted from their checkpoints + spools. The acceptance bar is
// total: the final collector incarnation's merged export must be
// byte-identical to a single-process `--shards M` run of the same
// capture, and no device may ever report a permanently dropped spool
// frame (nd_spool_dropped_total == 0, surfaced as exit code 0 and a
// "0 dropped" spool summary). ND_SOAK_CYCLES caps the cycles so CI
// stays bounded (default 4: three kill/restart cycles, one clean).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#ifndef NDTM_BIN
#error "NDTM_BIN must be defined to the ndtm binary path"
#endif

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kFleetSize = 2;

pid_t spawn(const std::vector<std::string>& args,
            const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  ::execv(argv[0], argv.data());
  _exit(127);
}

/// Exit code, or 128 + signal for a killed child.
int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int run_sync(const std::vector<std::string>& args,
             const std::string& log_path) {
  return wait_exit(spawn(args, log_path));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Poll for the collector's --port-file and parse the bound port.
/// Returns 0 if the collector exits before publishing — which is
/// legitimate when a restarted incarnation replays a journal that
/// already holds every device's bye and finishes without listening.
int wait_port(const std::string& path, pid_t collector) {
  for (int i = 0; i < 500; ++i) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return port;
    int status = 0;
    if (::waitpid(collector, &status, WNOHANG) == collector) {
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return 0;
      ADD_FAILURE() << "collector died before publishing its port";
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ADD_FAILURE() << "collector never published its port";
  return -1;
}

TEST(DurabilitySoak, KillLevelChaosLosesNothingAndMergesBitIdentically) {
  const std::string bin = NDTM_BIN;
  const fs::path workdir = fs::path(::testing::TempDir()) / "nd_soak";
  fs::remove_all(workdir);
  fs::create_directories(workdir);
  const auto path = [&](const std::string& name) {
    return (workdir / name).string();
  };

  int cycles = 4;
  if (const char* env = std::getenv("ND_SOAK_CYCLES")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 10) cycles = parsed;
  }

  // A capture long enough that kills land mid-stream.
  ASSERT_EQ(run_sync({bin, "synthesize", "--preset", "cos", "--scale",
                      "0.3", "--intervals", "5", "--out",
                      path("soak.pcap")},
                     path("synthesize.log")),
            0)
      << slurp(path("synthesize.log"));

  // The single-process reference: one M-sharded device, same seed.
  ASSERT_EQ(run_sync({bin, "measure", "--in", path("soak.pcap"),
                      "--algorithm", "multistage", "--flow-def", "dstip",
                      "--threshold", "100000", "--shards",
                      std::to_string(kFleetSize), "--export",
                      path("reference.bin")},
                     path("reference.log")),
            0)
      << slurp(path("reference.log"));

  const auto device_args = [&](std::uint32_t member, int port) {
    const std::string m = std::to_string(member);
    return std::vector<std::string>{
        bin, "measure", "--in", path("soak.pcap"),
        "--algorithm", "multistage", "--flow-def", "dstip",
        "--threshold", "100000",
        "--fleet-size", std::to_string(kFleetSize), "--device-id", m,
        "--connect", "127.0.0.1:" + std::to_string(port),
        "--spool-dir", path("spool_" + m),
        "--checkpoint", path("device_" + m + ".ndck"), "--resume",
        "--net-attempts", "3", "--net-backoff-us", "2000",
        // Throttle the replay to a live-capture cadence so the seeded
        // kills land mid-stream, not after the capture already drained.
        "--pace-ms", "120"};
  };
  const auto device_log = [&](std::uint32_t member, int cycle) {
    return path("device_" + std::to_string(member) + "_cycle" +
                std::to_string(cycle) + ".log");
  };

  // Seeded kill schedule: deterministic per ND_SOAK_CYCLES, varied per
  // cycle, and always inside the fleet's measurement window.
  std::uint64_t kill_seed = 0x9E3779B97F4A7C15ull;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const bool final_cycle = cycle + 1 == cycles;
    fs::remove(path("collect.port"));
    const pid_t collector = spawn(
        {bin, "collect", "--listen", "0", "--devices",
         std::to_string(kFleetSize), "--timeout-ms", "60000",
         "--journal", path("collect.journal"),
         "--port-file", path("collect.port"),
         "--export", path("merged.bin")},
        path("collect_cycle" + std::to_string(cycle) + ".log"));
    const int port = wait_port(path("collect.port"), collector);
    ASSERT_NE(port, -1) << "cycle " << cycle;
    if (port == 0) {
      // The journal already held every device's bye: the restarted
      // collector replayed it, exported the merge, and exited 0
      // without listening. The fleet finished in an earlier cycle —
      // nothing left to chaos.
      break;
    }

    std::vector<pid_t> devices;
    for (std::uint32_t member = 0; member < kFleetSize; ++member) {
      devices.push_back(
          spawn(device_args(member, port), device_log(member, cycle)));
    }

    if (!final_cycle) {
      kill_seed = kill_seed * 6364136223846793005ull +
                  1442695040888963407ull;
      const int delay_ms = 40 + static_cast<int>(kill_seed % 160);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      // kill -9, no warning shot: whatever was in socket buffers or
      // unflushed state dies with the process. The journal and spools
      // are all that survive.
      ::kill(collector, SIGKILL);
      for (const pid_t device : devices) ::kill(device, SIGKILL);
      wait_exit(collector);
      for (const pid_t device : devices) wait_exit(device);
      continue;
    }

    // Final cycle: every device restarts from its checkpoint, drains
    // its spool, finishes the capture, and says bye; the collector
    // completes the fleet and exports the merge.
    for (std::uint32_t member = 0; member < kFleetSize; ++member) {
      EXPECT_EQ(wait_exit(devices[member]), 0)
          << "device " << member << " final run:\n"
          << slurp(device_log(member, cycle));
    }
    EXPECT_EQ(wait_exit(collector), 0)
        << "final collector:\n"
        << slurp(path("collect_cycle" + std::to_string(cycle) + ".log"));
  }

  // Zero permanent loss: each device's last *completed* run (killed
  // runs never reach the summary line) must report 0 spool drops —
  // exit 5 would already have failed above; a dropped frame is the
  // one loss the spool cannot hide.
  for (std::uint32_t member = 0; member < kFleetSize; ++member) {
    std::string summary_log;
    for (int cycle = cycles - 1; cycle >= 0; --cycle) {
      const std::string log = slurp(device_log(member, cycle));
      // The startup "spool: recovered ..." line can appear in a killed
      // run; only the end-of-run summary carries the drop counter.
      if (log.find(" dropped,") != std::string::npos) {
        summary_log = log;
        break;
      }
    }
    ASSERT_FALSE(summary_log.empty())
        << "device " << member << " never completed a run";
    EXPECT_NE(summary_log.find(" 0 dropped"), std::string::npos)
        << "device " << member << " spool summary:\n"
        << summary_log;
  }

  // The collapse-the-distributed-system guarantee, kill-level edition:
  // the journal-recovered fleet merge is byte-identical to the
  // uninterrupted single-process sharded run.
  const std::string reference = slurp(path("reference.bin"));
  const std::string merged = slurp(path("merged.bin"));
  ASSERT_FALSE(reference.empty());
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.size(), reference.size());
  EXPECT_TRUE(merged == reference)
      << "fleet merge diverged from the sharded reference";
}

}  // namespace
