// Fuzz tables for the two durability formats: every truncation prefix
// and every single-byte flip of a spool segment and a collector
// journal must recover-or-reject — no crash, no invented record, no
// double count. Damage costs exactly the damaged record; intact
// neighbors always survive (wal::scan resyncs byte by byte).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "../support/report_testing.hpp"
#include "core/device.hpp"
#include "net/journal.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/spool.hpp"
#include "reporting/wal.hpp"

namespace nd {
namespace {

namespace fs = std::filesystem;

constexpr std::uint8_t kFlipPatterns[] = {0x01, 0x80, 0xFF};

core::Report make_report(common::IntervalIndex interval,
                         std::size_t flows) {
  core::Report report;
  report.interval = interval;
  report.threshold = 50'000;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FF,
        static_cast<std::uint16_t>(1000 + i), 80,
        packet::IpProtocol::kTcp);
    flow.estimated_bytes = 200'000 - 10'000 * i;
    report.flows.push_back(flow);
  }
  return report;
}

/// The record index owning byte `pos` given each record's end offset.
std::size_t record_at(const std::vector<std::size_t>& ends,
                      std::size_t pos) {
  for (std::size_t i = 0; i < ends.size(); ++i) {
    if (pos < ends[i]) return i;
  }
  return ends.size();
}

// ---------------------------------------------------------------- spool

struct SpoolCorpus {
  std::vector<core::Report> originals;
  std::vector<std::uint8_t> bytes;     // one segment, three frames
  std::vector<std::size_t> frame_ends; // cumulative end offsets
};

SpoolCorpus spool_corpus() {
  SpoolCorpus corpus;
  for (std::uint32_t i = 0; i < 3; ++i) {
    corpus.originals.push_back(make_report(i, 3 + i));
    const std::vector<std::uint8_t> frame = reporting::encode_framed(
        corpus.originals.back(), packet::FlowKeyKind::kFiveTuple, {});
    corpus.bytes.insert(corpus.bytes.end(), frame.begin(), frame.end());
    corpus.frame_ends.push_back(corpus.bytes.size());
  }
  return corpus;
}

/// Recover a damaged segment image through a real SpoolWal and return
/// the intervals of every surfaced frame (asserting each decodes).
std::vector<common::IntervalIndex> recover_intervals(
    const std::string& dir, std::span<const std::uint8_t> image) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(fs::path(dir) / "wal-000001.seg", std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }
  reporting::SpoolWalConfig config;
  config.directory = dir;
  config.fsync = false;
  reporting::SpoolWal spool(config);
  std::vector<common::IntervalIndex> intervals;
  for (std::size_t i = 0; i < spool.frame_count(); ++i) {
    const reporting::DecodedReport decoded =
        reporting::decode_framed(spool.frame(i));
    EXPECT_EQ(decoded.report.interval, spool.frame_interval(i));
    intervals.push_back(decoded.report.interval);
  }
  return intervals;
}

TEST(DurabilityFuzz, SpoolRecoversExactPrefixUnderEveryTruncation) {
  const SpoolCorpus corpus = spool_corpus();
  const std::string dir =
      (fs::path(::testing::TempDir()) / "nd_fuzz_spool_trunc").string();
  for (std::size_t cut = 0; cut <= corpus.bytes.size(); ++cut) {
    const auto intervals = recover_intervals(
        dir, std::span(corpus.bytes).first(cut));
    // Exactly the frames wholly inside the prefix, in order.
    std::size_t expected = 0;
    while (expected < corpus.frame_ends.size() &&
           corpus.frame_ends[expected] <= cut) {
      ++expected;
    }
    ASSERT_EQ(intervals.size(), expected) << "cut=" << cut;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(intervals[i], corpus.originals[i].interval)
          << "cut=" << cut;
    }
  }
}

TEST(DurabilityFuzz, SpoolByteFlipCostsExactlyTheDamagedFrame) {
  const SpoolCorpus corpus = spool_corpus();
  const std::string dir =
      (fs::path(::testing::TempDir()) / "nd_fuzz_spool_flip").string();
  for (std::size_t pos = 0; pos < corpus.bytes.size(); ++pos) {
    for (const std::uint8_t pattern : kFlipPatterns) {
      std::vector<std::uint8_t> image = corpus.bytes;
      image[pos] ^= pattern;
      const std::size_t damaged = record_at(corpus.frame_ends, pos);
      const auto intervals = recover_intervals(dir, image);
      // The flipped frame is rejected by its CRC (or its magic stops
      // matching); every other frame survives, once, in order.
      ASSERT_EQ(intervals.size(), 2u)
          << "pos=" << pos << " pattern=" << int(pattern);
      std::size_t next = 0;
      for (std::size_t i = 0; i < corpus.originals.size(); ++i) {
        if (i == damaged) continue;
        EXPECT_EQ(intervals[next++], corpus.originals[i].interval)
            << "pos=" << pos << " pattern=" << int(pattern);
      }
    }
  }
}

// -------------------------------------------------------------- journal

struct JournalCorpus {
  std::vector<std::vector<std::uint8_t>> payloads;  // journal payloads
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> record_ends;
};

JournalCorpus journal_corpus() {
  JournalCorpus corpus;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const std::vector<std::uint8_t> report_payload = reporting::encode(
        make_report(i, 4), packet::FlowKeyKind::kFiveTuple, {});
    corpus.payloads.push_back(net::encode_journal_report(
        0, 0, report_payload));
  }
  corpus.payloads.push_back(net::encode_journal_bye(0, 0, 2));
  for (const auto& payload : corpus.payloads) {
    reporting::wal::append_record(corpus.bytes, net::kJournalMagic,
                                  payload);
    corpus.record_ends.push_back(corpus.bytes.size());
  }
  return corpus;
}

struct CapturedEvents final : net::JournalReplayEvents {
  /// Journal payloads reconstructed from the replay callbacks, for
  /// exact comparison against the originals.
  std::vector<std::vector<std::uint8_t>> payloads;

  void on_report(std::uint32_t device_id, std::uint32_t epoch,
                 std::span<const std::uint8_t> payload) override {
    payloads.push_back(net::encode_journal_report(device_id, epoch,
                                                  payload));
  }
  void on_bye(std::uint32_t device_id, std::uint32_t epoch,
              std::uint32_t intervals) override {
    payloads.push_back(net::encode_journal_bye(device_id, epoch,
                                               intervals));
  }
};

TEST(DurabilityFuzz, JournalReplaysExactPrefixUnderEveryTruncation) {
  const JournalCorpus corpus = journal_corpus();
  for (std::size_t cut = 0; cut <= corpus.bytes.size(); ++cut) {
    CapturedEvents events;
    net::replay_journal(std::span(corpus.bytes).first(cut), events);
    std::size_t expected = 0;
    while (expected < corpus.record_ends.size() &&
           corpus.record_ends[expected] <= cut) {
      ++expected;
    }
    ASSERT_EQ(events.payloads.size(), expected) << "cut=" << cut;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(events.payloads[i], corpus.payloads[i]) << "cut=" << cut;
    }
  }
}

TEST(DurabilityFuzz, JournalByteFlipCostsExactlyTheDamagedRecord) {
  const JournalCorpus corpus = journal_corpus();
  for (std::size_t pos = 0; pos < corpus.bytes.size(); ++pos) {
    for (const std::uint8_t pattern : kFlipPatterns) {
      std::vector<std::uint8_t> image = corpus.bytes;
      image[pos] ^= pattern;
      const std::size_t damaged = record_at(corpus.record_ends, pos);
      CapturedEvents events;
      net::replay_journal(image, events);
      ASSERT_EQ(events.payloads.size(), 2u)
          << "pos=" << pos << " pattern=" << int(pattern);
      std::size_t next = 0;
      for (std::size_t i = 0; i < corpus.payloads.size(); ++i) {
        if (i == damaged) continue;
        EXPECT_EQ(events.payloads[next++], corpus.payloads[i])
            << "pos=" << pos << " pattern=" << int(pattern);
      }
    }
  }
}

}  // namespace
}  // namespace nd
