// TcpTransport + Collector unit suite, on deterministic seams: the
// socket-pair seam proves wire behaviour (hello framing, fault sites,
// partial-write loops) without a listener, the FakeClock seam pins
// retry/backoff schedules exactly with zero wall-clock sleeps, and a
// live loopback Collector pins per-device sequencing (dedup, orphan
// frames, resync telemetry, reconnect epochs).
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "core/device.hpp"
#include "net/collector.hpp"
#include "net/frame_stream.hpp"
#include "net/socket.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/resilient_channel.hpp"
#include "robustness/fault.hpp"
#include "telemetry/metrics.hpp"

namespace nd::net {
namespace {

core::Report make_report(common::IntervalIndex interval,
                         std::size_t flows) {
  core::Report report;
  report.interval = interval;
  report.threshold = 25'000;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FE,
        static_cast<std::uint16_t>(3000 + i), 22,
        packet::IpProtocol::kTcp);
    flow.estimated_bytes = 60'000 + 1'000 * i;
    report.flows.push_back(flow);
  }
  return report;
}

std::vector<std::uint8_t> framed(common::IntervalIndex interval,
                                 std::size_t flows) {
  return reporting::encode_framed(make_report(interval, flows),
                                  packet::FlowKeyKind::kFiveTuple);
}

/// Read from `fd` until `n` bytes arrived (the peer is in-process, so
/// this never blocks long).
std::vector<std::uint8_t> read_exact(int fd, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = read_some(fd, out.data() + off, n - off);
    if (got <= 0) break;
    off += static_cast<std::size_t>(got);
  }
  out.resize(off);
  return out;
}

struct CountingEvents final : FrameStreamParser::Events {
  std::vector<Hello> hellos;
  std::vector<Bye> byes;
  std::size_t reports{0};
  std::size_t resyncs{0};

  void on_hello(const Hello& hello) override { hellos.push_back(hello); }
  void on_bye(const Bye& bye) override { byes.push_back(bye); }
  void on_report_frame(std::span<const std::uint8_t>) override {
    ++reports;
  }
  void on_resync(std::size_t) override { ++resyncs; }
};

/// Spin until `predicate` holds (bounded); the collector loop runs on
/// its own thread, so tests that need "the EOF was serviced" ordering
/// wait on the stats snapshot instead of sleeping blind.
template <typename Predicate>
void wait_until(Predicate predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(predicate());
}

robustness::FaultPlan site_schedule(const std::string& site,
                                    std::vector<std::uint64_t> schedule) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kDrop;
  spec.schedule = std::move(schedule);
  return robustness::FaultPlan(5).inject(site, spec);
}

TEST(TcpTransport, HelloPrecedesFirstFrameOnAdoptedSocket) {
  auto [ours, theirs] = socket_pair();
  TcpTransportConfig config;
  config.device_id = 7;
  TcpTransport transport(config, std::move(ours));

  const std::vector<std::uint8_t> frame = framed(0, 2);
  ASSERT_TRUE(transport.send_frame(frame));
  ASSERT_TRUE(transport.send_bye(1));

  const std::vector<std::uint8_t> wire = read_exact(
      theirs.fd(), 2 * kControlFrameBytes + frame.size());
  FrameStreamParser parser;
  CountingEvents events;
  parser.feed(wire, events);

  ASSERT_EQ(events.hellos.size(), 1u);
  EXPECT_EQ(events.hellos[0].device_id, 7u);
  EXPECT_EQ(events.hellos[0].epoch, 0u);
  EXPECT_EQ(events.reports, 1u);
  ASSERT_EQ(events.byes.size(), 1u);
  EXPECT_EQ(events.byes[0].intervals, 1u);
  EXPECT_EQ(events.resyncs, 0u);

  EXPECT_EQ(transport.stats().connects, 1u);
  EXPECT_EQ(transport.stats().frames_sent, 1u);
}

TEST(TcpTransport, ShortWriteFaultStillDeliversWholeFrame) {
  robustness::FaultInjector faults(
      site_schedule("net.short_write", {0}));
  auto [ours, theirs] = socket_pair();
  TcpTransportConfig config;
  config.device_id = 1;
  config.faults = &faults;
  TcpTransport transport(config, std::move(ours));

  const std::vector<std::uint8_t> frame = framed(0, 3);
  ASSERT_TRUE(transport.send_frame(frame));
  EXPECT_EQ(transport.stats().short_writes, 1u);

  // TCP short writes must be invisible above the socket layer: the
  // frame arrives whole and verifies.
  const std::vector<std::uint8_t> wire =
      read_exact(theirs.fd(), kControlFrameBytes + frame.size());
  FrameStreamParser parser;
  CountingEvents events;
  parser.feed(wire, events);
  EXPECT_EQ(events.reports, 1u);
  EXPECT_EQ(events.resyncs, 0u);
}

TEST(TcpTransport, SendFramePartsDeliversHeaderPlusPayloadWhole) {
  // The zero-copy path: a 12-byte header span plus the payload span go
  // out in one scatter-gather write, and the receiver cannot tell the
  // difference from a contiguous frame.
  auto [ours, theirs] = socket_pair();
  TcpTransportConfig config;
  config.device_id = 12;
  TcpTransport transport(config, std::move(ours));

  const core::Report report = make_report(3, 4);
  std::vector<std::uint8_t> payload;
  reporting::encode_into(payload, report, packet::FlowKeyKind::kFiveTuple);
  const auto header = reporting::frame_header(payload);
  ASSERT_TRUE(transport.send_frame_parts(header, payload));
  EXPECT_EQ(transport.stats().frames_sent, 1u);
  // bytes_sent covers the connect-time hello too.
  EXPECT_EQ(transport.stats().bytes_sent,
            kControlFrameBytes + header.size() + payload.size());

  const std::vector<std::uint8_t> wire = read_exact(
      theirs.fd(), kControlFrameBytes + header.size() + payload.size());
  FrameStreamParser parser;
  CountingEvents events;
  parser.feed(wire, events);
  EXPECT_EQ(events.hellos.size(), 1u);
  EXPECT_EQ(events.reports, 1u);
  EXPECT_EQ(events.resyncs, 0u);

  // And the parts must be byte-identical to the assembled encoding —
  // the wire format does not depend on which send path was taken.
  std::vector<std::uint8_t> assembled = reporting::encode_framed(
      report, packet::FlowKeyKind::kFiveTuple);
  std::vector<std::uint8_t> parts(header.begin(), header.end());
  parts.insert(parts.end(), payload.begin(), payload.end());
  EXPECT_EQ(parts, assembled);
}

TEST(TcpTransport, SendFramePartsShortWriteStillDeliversWhole) {
  robustness::FaultInjector faults(
      site_schedule("net.short_write", {0}));
  auto [ours, theirs] = socket_pair();
  TcpTransportConfig config;
  config.device_id = 13;
  config.faults = &faults;
  TcpTransport transport(config, std::move(ours));

  std::vector<std::uint8_t> payload;
  reporting::encode_into(payload, make_report(0, 3),
                         packet::FlowKeyKind::kFiveTuple);
  const auto header = reporting::frame_header(payload);
  ASSERT_TRUE(transport.send_frame_parts(header, payload));
  EXPECT_EQ(transport.stats().short_writes, 1u);

  const std::vector<std::uint8_t> wire = read_exact(
      theirs.fd(), kControlFrameBytes + header.size() + payload.size());
  FrameStreamParser parser;
  CountingEvents events;
  parser.feed(wire, events);
  EXPECT_EQ(events.reports, 1u);
  EXPECT_EQ(events.resyncs, 0u);
}

TEST(TcpTransport, SendFramePartsDisconnectCutsAcrossBothParts) {
  robustness::FaultInjector faults(
      site_schedule("net.disconnect", {0}));
  auto [ours, theirs] = socket_pair();
  TcpTransportConfig config;
  config.device_id = 14;
  config.faults = &faults;
  TcpTransport transport(config, std::move(ours));

  std::vector<std::uint8_t> payload;
  reporting::encode_into(payload, make_report(0, 3),
                         packet::FlowKeyKind::kFiveTuple);
  const auto header = reporting::frame_header(payload);
  EXPECT_FALSE(transport.send_frame_parts(header, payload));
  EXPECT_FALSE(transport.connected());
  EXPECT_EQ(transport.stats().disconnects, 1u);

  // Strict prefix of header+payload on the wire, then EOF — the same
  // contract the contiguous path honors.
  const std::vector<std::uint8_t> wire = read_exact(
      theirs.fd(), kControlFrameBytes + header.size() + payload.size());
  EXPECT_GE(wire.size(), kControlFrameBytes);
  EXPECT_LT(wire.size(),
            kControlFrameBytes + header.size() + payload.size());
}

TEST(TcpTransport, DisconnectFaultCutsMidFrameAndReportsFailure) {
  robustness::FaultInjector faults(
      site_schedule("net.disconnect", {0}));
  auto [ours, theirs] = socket_pair();
  TcpTransportConfig config;
  config.device_id = 2;
  config.faults = &faults;
  TcpTransport transport(config, std::move(ours));

  const std::vector<std::uint8_t> frame = framed(0, 3);
  EXPECT_FALSE(transport.send_frame(frame));
  EXPECT_FALSE(transport.connected());
  EXPECT_EQ(transport.stats().disconnects, 1u);
  EXPECT_EQ(transport.stats().frames_sent, 0u);

  // The receiver holds the hello plus a strict prefix of the frame,
  // then EOF — exactly the partial-frame case the collector's reset()
  // path drops.
  const std::vector<std::uint8_t> wire =
      read_exact(theirs.fd(), kControlFrameBytes + frame.size());
  EXPECT_GE(wire.size(), kControlFrameBytes);
  EXPECT_LT(wire.size(), kControlFrameBytes + frame.size());
}

TEST(TcpTransport, ConnectFaultThenRecoveryWithExactBackoffSchedule) {
  // One injected connect refusal, then a live collector: the channel's
  // retry policy drives the real socket and the FakeClock records the
  // exact backoff schedule — no wall-clock sleeps anywhere.
  CollectorConfig collector_config;
  collector_config.expected_devices = 1;
  Collector collector(collector_config);
  collector.start();

  robustness::FaultInjector faults(site_schedule("net.connect", {0}));
  TcpTransportConfig transport_config;
  transport_config.port = collector.port();
  transport_config.device_id = 4;
  transport_config.faults = &faults;
  TcpTransport transport(transport_config);

  common::FakeClock clock;
  reporting::ResilientChannelConfig channel_config;
  channel_config.max_attempts = 3;
  channel_config.backoff_base = std::chrono::microseconds(500);
  channel_config.sleep_on_backoff = true;
  channel_config.clock = &clock;
  channel_config.transport = &transport;
  reporting::ResilientChannel channel(channel_config);

  const reporting::DeliveryOutcome outcome =
      channel.send(make_report(0, 2));
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(channel.stats().transport_failures, 1u);
  ASSERT_EQ(clock.sleep_count(), 1u);
  EXPECT_EQ(clock.sleeps()[0], std::chrono::microseconds(500));
  EXPECT_EQ(transport.stats().connect_failures, 1u);
  EXPECT_EQ(transport.stats().connects, 1u);

  ASSERT_TRUE(transport.send_bye(1));
  EXPECT_TRUE(collector.wait());
  EXPECT_EQ(collector.stats().reports_ingested, 1u);
}

TEST(TcpTransport, ExhaustedRetriesAbandonWithFullBackoffSchedule) {
  // Every connect refused: the report is abandoned after max_attempts
  // and the recorded schedule is exactly base * (1, 2, 4, 8).
  robustness::FaultInjector faults(
      site_schedule("net.connect", {0, 1, 2, 3}));
  TcpTransportConfig transport_config;
  transport_config.port = 1;  // nothing listens there either
  transport_config.device_id = 5;
  transport_config.faults = &faults;
  TcpTransport transport(transport_config);

  common::FakeClock clock;
  reporting::ResilientChannelConfig channel_config;
  channel_config.max_attempts = 4;
  channel_config.backoff_base = std::chrono::microseconds(250);
  channel_config.sleep_on_backoff = true;
  channel_config.clock = &clock;
  channel_config.transport = &transport;
  reporting::ResilientChannel channel(channel_config);

  const reporting::DeliveryOutcome outcome =
      channel.send(make_report(0, 1));
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(channel.stats().reports_abandoned, 1u);
  EXPECT_EQ(channel.stats().transport_failures, 4u);
  ASSERT_EQ(clock.sleep_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(clock.sleeps()[i],
              std::chrono::microseconds(250) * (1 << i))
        << "retry " << i;
  }
  EXPECT_EQ(clock.elapsed(), std::chrono::microseconds(250 * 15));
}

TEST(Collector, DeduplicatesReshippedIntervalsFirstCopyWins) {
  CollectorConfig config;
  config.expected_devices = 1;
  Collector collector(config);
  collector.start();

  Socket conn = tcp_connect("127.0.0.1", collector.port());
  ASSERT_TRUE(conn.valid());
  const std::vector<std::uint8_t> hello = encode_hello(Hello{11, 0});
  const std::vector<std::uint8_t> frame = framed(0, 2);
  const std::vector<std::uint8_t> bye = encode_bye(Bye{11, 1});
  ASSERT_TRUE(write_all(conn.fd(), hello));
  ASSERT_TRUE(write_all(conn.fd(), frame));
  ASSERT_TRUE(write_all(conn.fd(), frame));  // re-shipped interval
  ASSERT_TRUE(write_all(conn.fd(), bye));
  EXPECT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.frames_received, 2u);
  EXPECT_EQ(stats.reports_ingested, 1u);
  EXPECT_EQ(stats.duplicate_reports, 1u);
  const std::vector<core::Report> merged = collector.merged_reports();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].flows.size(), 2u);
}

TEST(Collector, OrphanFramesAndGarbageAreCountedNeverFatal) {
  telemetry::MetricsRegistry registry;
  CollectorConfig config;
  config.expected_devices = 1;
  config.metrics = &registry;
  Collector collector(config);
  collector.start();

  Socket conn = tcp_connect("127.0.0.1", collector.port());
  ASSERT_TRUE(conn.valid());
  const std::vector<std::uint8_t> frame = framed(0, 1);
  // Report before hello: counted, dropped, connection survives.
  ASSERT_TRUE(write_all(conn.fd(), frame));
  // Mid-stream garbage: the parser resyncs to the next real frame.
  const std::vector<std::uint8_t> garbage(21, 0x5A);
  ASSERT_TRUE(write_all(conn.fd(), garbage));
  ASSERT_TRUE(write_all(conn.fd(), encode_hello(Hello{3, 0})));
  ASSERT_TRUE(write_all(conn.fd(), frame));
  ASSERT_TRUE(write_all(conn.fd(), encode_bye(Bye{3, 1})));
  EXPECT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.decode_errors, 1u);  // the orphan
  EXPECT_GE(stats.resyncs, 1u);        // the garbage
  EXPECT_EQ(stats.reports_ingested, 1u);
  EXPECT_EQ(registry.counter("nd_net_resync_total").value(),
            stats.resyncs);
  EXPECT_EQ(registry.counter("nd_net_frames_total").value(),
            stats.frames_received);
}

TEST(Collector, ReconnectEpochsAreTracked) {
  CollectorConfig config;
  config.expected_devices = 1;
  Collector collector(config);
  collector.start();

  {
    // First connection dies mid-frame (no bye).
    Socket conn = tcp_connect("127.0.0.1", collector.port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(write_all(conn.fd(), encode_hello(Hello{8, 0})));
    const std::vector<std::uint8_t> frame = framed(0, 2);
    ASSERT_TRUE(
        write_all(conn.fd(), {frame.data(), frame.size() / 2}));
  }
  wait_until([&] { return collector.stats().connections_closed == 1; });
  {
    // The device dials again with a bumped epoch and re-ships.
    Socket conn = tcp_connect("127.0.0.1", collector.port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(write_all(conn.fd(), encode_hello(Hello{8, 1})));
    const std::vector<std::uint8_t> frame = framed(0, 2);
    ASSERT_TRUE(write_all(conn.fd(), frame));
    ASSERT_TRUE(write_all(conn.fd(), encode_bye(Bye{8, 1})));
    EXPECT_TRUE(collector.wait());
  }

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.hellos, 2u);
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.partial_frames_dropped, 1u);
  EXPECT_EQ(stats.reports_ingested, 1u);
  EXPECT_EQ(stats.duplicate_reports, 0u);
}

TEST(Collector, BurstDrainFairnessCapYieldsWithoutLoss) {
  // A device blasting a large backlog must trip the per-wake drain cap
  // (so peers are not starved) and still lose nothing: the capped
  // bytes stay queued in the kernel for the next poll wake.
  CollectorConfig config;
  config.expected_devices = 1;
  config.max_drain_bytes_per_wake = 16 * 1024;
  Collector collector(config);
  collector.start();

  Socket conn = tcp_connect("127.0.0.1", collector.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(write_all(conn.fd(), encode_hello(Hello{21, 0})));
  constexpr std::size_t kBurst = 64;
  for (std::size_t i = 0; i < kBurst; ++i) {
    // ~16 KiB per frame, ~1 MiB total: the kernel queue far outruns
    // the ingest buffer, so some wake must read it full and trip the
    // cap (decode work on the single collector thread guarantees the
    // writer gets ahead).
    ASSERT_TRUE(write_all(
        conn.fd(), framed(static_cast<common::IntervalIndex>(i), 600)));
  }
  ASSERT_TRUE(write_all(conn.fd(), encode_bye(Bye{21, kBurst})));
  EXPECT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.reports_ingested, kBurst);
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.partial_frames_dropped, 0u);
  EXPECT_GE(stats.drain_cap_hits, 1u);
}

TEST(Collector, TimeoutReturnsFalseWhenDevicesNeverFinish) {
  CollectorConfig config;
  config.expected_devices = 1;
  config.timeout = std::chrono::milliseconds(50);
  Collector collector(config);
  EXPECT_FALSE(collector.run());
  EXPECT_EQ(collector.devices_done(), 0u);
}

TEST(Collector, StopInterruptsRunPromptly) {
  CollectorConfig config;
  config.expected_devices = 1;
  Collector collector(config);
  collector.start();
  collector.stop();
  EXPECT_FALSE(collector.wait());
}

TEST(Collector, ChaosPlanOverRealTransportNeverCrashes) {
  // The seeded chaos drill end to end: drops before framing, payload
  // corruption on the wire (the collector must resync, not crash),
  // tiny-chunk stalls, and a mid-stream disconnect — all while real
  // frames keep flowing. Every loss is visible in the stats.
  telemetry::MetricsRegistry registry;
  robustness::FaultSpec corrupt;
  corrupt.kind = robustness::FaultKind::kCorrupt;
  corrupt.schedule = {1, 4};
  robustness::FaultSpec drop;
  drop.kind = robustness::FaultKind::kDrop;
  drop.schedule = {2};
  robustness::FaultSpec cut;
  cut.kind = robustness::FaultKind::kDrop;
  cut.schedule = {3};
  robustness::FaultSpec trickle;
  trickle.kind = robustness::FaultKind::kDrop;
  trickle.schedule = {5};
  robustness::FaultInjector faults(robustness::FaultPlan(99)
                                       .inject("channel.corrupt", corrupt)
                                       .inject("channel.drop", drop)
                                       .inject("net.disconnect", cut)
                                       .inject("net.short_write", trickle));

  CollectorConfig collector_config;
  collector_config.expected_devices = 1;
  collector_config.timeout = std::chrono::milliseconds(5000);
  collector_config.metrics = &registry;
  Collector collector(collector_config);
  collector.start();

  TcpTransportConfig transport_config;
  transport_config.port = collector.port();
  transport_config.device_id = 6;
  transport_config.faults = &faults;
  TcpTransport transport(transport_config);

  common::FakeClock clock;
  reporting::ResilientChannelConfig channel_config;
  channel_config.max_attempts = 4;
  channel_config.sleep_on_backoff = true;
  channel_config.clock = &clock;
  channel_config.transport = &transport;
  channel_config.faults = &faults;
  reporting::ResilientChannel channel(channel_config);

  constexpr std::size_t kReports = 8;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < kReports; ++i) {
    if (channel.send(make_report(static_cast<common::IntervalIndex>(i), 3))
            .delivered) {
      ++delivered;
    }
  }
  ASSERT_TRUE(transport.send_bye(kReports));
  EXPECT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  // A corrupted frame is "delivered" from the channel's point of view
  // (the wire accepted it) but the collector's CRC rejects it; that is
  // the on-the-wire loss model, and it must show up as resyncs — the
  // required nd_net_resync_total series — never as a crash.
  EXPECT_EQ(delivered, kReports);
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_GE(registry.counter("nd_net_resync_total").value(), 1u);
  EXPECT_EQ(stats.reports_ingested + corrupt.schedule.size(), kReports);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(transport.stats().disconnects, 1u);
  EXPECT_EQ(transport.stats().short_writes, 1u);
  EXPECT_EQ(channel.stats().drops, 1u);
  // Ingested reports decode into exactly the intervals that survived.
  const std::vector<core::Report> merged = collector.merged_reports();
  EXPECT_EQ(merged.size(), stats.reports_ingested);
}

}  // namespace
}  // namespace nd::net
