// The loopback integration suite: M in-process device threads, each a
// FleetMember shipping interval reports through a real ResilientChannel
// + TcpTransport over 127.0.0.1, against one collector daemon. The
// acceptance bar is the collapse-the-distributed-system guarantee: the
// collector's fleet merge is bit-identical to a single-process
// ShardedDevice with the same shard count, seed, and factory — and it
// stays bit-identical when a seeded fault plan cuts a member's
// connection mid-frame and forces a reconnect + re-send.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "../support/report_testing.hpp"
#include "core/multistage_filter.hpp"
#include "core/sharded_device.hpp"
#include "net/collector.hpp"
#include "net/fleet.hpp"
#include "net/transport.hpp"
#include "packet/flow_definition.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/resilient_channel.hpp"
#include "robustness/fault.hpp"
#include "telemetry/metrics.hpp"

namespace nd::net {
namespace {

using nd::testing::classify_trace;
using nd::testing::expect_reports_equal;

constexpr std::uint32_t kFleetSize = 4;
constexpr std::uint64_t kSeed = 7;

trace::TraceConfig fleet_trace() {
  trace::TraceConfig config;
  config.flow_count = 500;
  config.bytes_per_interval = 2'500'000;
  config.num_intervals = 3;
  config.seed = 123;
  return config;
}

core::MultistageFilterConfig filter_config(std::uint64_t seed) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 128;
  config.depth = 3;
  config.buckets_per_stage = 64;
  config.threshold = 40'000;
  config.seed = seed;
  return config;
}

/// The single-process reference: one M-sharded device over the same
/// trace, same seed, same per-shard factory.
std::vector<core::Report> sharded_reference(
    const std::vector<std::vector<packet::ClassifiedPacket>>& intervals) {
  core::ShardedDeviceConfig config;
  config.shards = kFleetSize;
  config.seed = kSeed;
  core::ShardedDevice device(
      config, [](std::uint32_t, std::uint64_t shard_seed) {
        return std::make_unique<core::MultistageFilter>(
            filter_config(shard_seed));
      });
  std::vector<core::Report> reports;
  for (const auto& interval : intervals) {
    device.observe_batch(interval);
    reports.push_back(device.end_interval());
  }
  return reports;
}

/// One device thread: a FleetMember over the full stream, shipping each
/// interval through ResilientChannel + TcpTransport. `faults` may carry
/// a per-member chaos plan (null = clean run).
void run_member(std::uint32_t member, std::uint16_t port,
                const std::vector<std::vector<packet::ClassifiedPacket>>&
                    intervals,
                robustness::FaultInjector* faults) {
  FleetMember fleet_member(
      member, kFleetSize, kSeed,
      std::make_unique<core::MultistageFilter>(
          filter_config(core::shard_seed(kSeed, member))));

  TcpTransportConfig transport_config;
  transport_config.port = port;
  transport_config.device_id = member;
  transport_config.faults = faults;
  TcpTransport transport(transport_config);

  common::FakeClock clock;
  reporting::ResilientChannelConfig channel_config;
  channel_config.bytes_per_interval = 1ULL << 24;  // no shedding here
  channel_config.sleep_on_backoff = true;
  channel_config.clock = &clock;
  channel_config.transport = &transport;
  reporting::ResilientChannel channel(channel_config);

  for (const auto& interval : intervals) {
    fleet_member.observe_batch(interval);
    const core::Report report = fleet_member.end_interval();
    EXPECT_TRUE(channel.send(report).delivered)
        << "member " << member << " interval " << report.interval;
  }
  EXPECT_TRUE(transport.send_bye(
      static_cast<std::uint32_t>(intervals.size())))
      << "member " << member;
}

/// Bit-identity in the strongest form: the encoded bytes match. Flow
/// order inside an interval differs benignly between the two paths (the
/// channel ships each member's flows largest-first), so both sides are
/// put in size order — a stable sort, so ties keep member order and the
/// comparison stays exact.
void expect_bit_identical(std::vector<core::Report> fleet,
                          std::vector<core::Report> single) {
  ASSERT_EQ(fleet.size(), single.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    core::sort_by_size(fleet[i]);
    core::sort_by_size(single[i]);
    expect_reports_equal(fleet[i], single[i]);
    ASSERT_EQ(fleet[i].shards.size(), single[i].shards.size())
        << "interval " << i;
    EXPECT_EQ(
        reporting::encode(fleet[i], packet::FlowKeyKind::kFiveTuple),
        reporting::encode(single[i], packet::FlowKeyKind::kFiveTuple))
        << "interval " << i << ": encoded bytes differ";
  }
}

TEST(LoopbackFleet, FourDevicesMergeBitIdenticalToShardedDevice) {
  const auto intervals = classify_trace(
      fleet_trace(), packet::FlowDefinition::five_tuple());
  const std::vector<core::Report> reference = sharded_reference(intervals);

  telemetry::MetricsRegistry registry;
  CollectorConfig config;
  config.expected_devices = kFleetSize;
  config.timeout = std::chrono::milliseconds(30'000);  // hang guard
  config.metrics = &registry;
  Collector collector(config);
  collector.start();

  std::vector<std::thread> members;
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    members.emplace_back(
        [m, port = collector.port(), &intervals] {
          run_member(m, port, intervals, nullptr);
        });
  }
  for (std::thread& member : members) member.join();
  ASSERT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.hellos, kFleetSize);
  EXPECT_EQ(stats.byes, kFleetSize);
  EXPECT_EQ(stats.reports_ingested, kFleetSize * intervals.size());
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.duplicate_reports, 0u);
  EXPECT_EQ(registry.counter("nd_net_reports_total").value(),
            stats.reports_ingested);

  expect_bit_identical(collector.merged_reports(), reference);
}

TEST(LoopbackFleet, MergeSurvivesMidIntervalDisconnectBitIdentical) {
  // Same fleet, but two members get their connection cut mid-frame by
  // a seeded net.disconnect plan. The transport reconnects with a
  // bumped epoch, the channel re-sends the interval, the collector
  // drops the partial frame and dedups — and the merged output must
  // still match the single-process device bit for bit.
  const auto intervals = classify_trace(
      fleet_trace(), packet::FlowDefinition::five_tuple());
  const std::vector<core::Report> reference = sharded_reference(intervals);

  CollectorConfig config;
  config.expected_devices = kFleetSize;
  config.timeout = std::chrono::milliseconds(30'000);  // hang guard
  Collector collector(config);
  collector.start();

  // Per-member injectors (consulted on the member's own thread, so the
  // cross-thread determinism contract holds). Members 1 and 3 each lose
  // their second data frame mid-write.
  robustness::FaultSpec cut;
  cut.kind = robustness::FaultKind::kDrop;
  cut.schedule = {1};
  std::vector<std::unique_ptr<robustness::FaultInjector>> injectors(
      kFleetSize);
  injectors[1] = std::make_unique<robustness::FaultInjector>(
      robustness::FaultPlan(31).inject("net.disconnect", cut));
  injectors[3] = std::make_unique<robustness::FaultInjector>(
      robustness::FaultPlan(33).inject("net.disconnect", cut));

  std::vector<std::thread> members;
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    members.emplace_back(
        [m, port = collector.port(), &intervals, &injectors] {
          run_member(m, port, intervals, injectors[m].get());
        });
  }
  for (std::thread& member : members) member.join();
  ASSERT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  // Both cut members dialed again with epoch 1 and the collector saw
  // their truncated frames die on the old connections.
  EXPECT_EQ(stats.reconnects, 2u);
  EXPECT_EQ(stats.partial_frames_dropped, 2u);
  EXPECT_EQ(stats.hellos, kFleetSize + 2);
  // The cut frame never completed, so the re-send is the first copy:
  // no duplicates, nothing lost.
  EXPECT_EQ(stats.duplicate_reports, 0u);
  EXPECT_EQ(stats.reports_ingested, kFleetSize * intervals.size());

  expect_bit_identical(collector.merged_reports(), reference);
}

}  // namespace
}  // namespace nd::net
