// The loopback integration suite: M in-process device threads, each a
// FleetMember shipping interval reports through a real ResilientChannel
// + TcpTransport over 127.0.0.1, against one collector daemon. The
// acceptance bar is the collapse-the-distributed-system guarantee: the
// collector's fleet merge is bit-identical to a single-process
// ShardedDevice with the same shard count, seed, and factory — and it
// stays bit-identical when a seeded fault plan cuts a member's
// connection mid-frame and forces a reconnect + re-send.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../support/report_testing.hpp"
#include "core/multistage_filter.hpp"
#include "core/sharded_device.hpp"
#include "net/collector.hpp"
#include "net/fleet.hpp"
#include "net/transport.hpp"
#include "packet/flow_definition.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/resilient_channel.hpp"
#include "robustness/fault.hpp"
#include "telemetry/export.hpp"
#include "telemetry/http_exporter.hpp"
#include "telemetry/metrics.hpp"

namespace nd::net {
namespace {

using nd::testing::classify_trace;
using nd::testing::expect_reports_equal;

constexpr std::uint32_t kFleetSize = 4;
constexpr std::uint64_t kSeed = 7;

trace::TraceConfig fleet_trace() {
  trace::TraceConfig config;
  config.flow_count = 500;
  config.bytes_per_interval = 2'500'000;
  config.num_intervals = 3;
  config.seed = 123;
  return config;
}

core::MultistageFilterConfig filter_config(std::uint64_t seed) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 128;
  config.depth = 3;
  config.buckets_per_stage = 64;
  config.threshold = 40'000;
  config.seed = seed;
  return config;
}

/// The single-process reference: one M-sharded device over the same
/// trace, same seed, same per-shard factory.
std::vector<core::Report> sharded_reference(
    const std::vector<std::vector<packet::ClassifiedPacket>>& intervals) {
  core::ShardedDeviceConfig config;
  config.shards = kFleetSize;
  config.seed = kSeed;
  core::ShardedDevice device(
      config, [](std::uint32_t, std::uint64_t shard_seed) {
        return std::make_unique<core::MultistageFilter>(
            filter_config(shard_seed));
      });
  std::vector<core::Report> reports;
  for (const auto& interval : intervals) {
    device.observe_batch(interval);
    reports.push_back(device.end_interval());
  }
  return reports;
}

/// One device thread: a FleetMember over the full stream, shipping each
/// interval through ResilientChannel + TcpTransport. `faults` may carry
/// a per-member chaos plan (null = clean run).
void run_member(std::uint32_t member, std::uint16_t port,
                const std::vector<std::vector<packet::ClassifiedPacket>>&
                    intervals,
                robustness::FaultInjector* faults) {
  FleetMember fleet_member(
      member, kFleetSize, kSeed,
      std::make_unique<core::MultistageFilter>(
          filter_config(core::shard_seed(kSeed, member))));

  TcpTransportConfig transport_config;
  transport_config.port = port;
  transport_config.device_id = member;
  transport_config.faults = faults;
  TcpTransport transport(transport_config);

  common::FakeClock clock;
  reporting::ResilientChannelConfig channel_config;
  channel_config.bytes_per_interval = 1ULL << 24;  // no shedding here
  channel_config.sleep_on_backoff = true;
  channel_config.clock = &clock;
  channel_config.transport = &transport;
  reporting::ResilientChannel channel(channel_config);

  for (const auto& interval : intervals) {
    fleet_member.observe_batch(interval);
    const core::Report report = fleet_member.end_interval();
    EXPECT_TRUE(channel.send(report).delivered)
        << "member " << member << " interval " << report.interval;
  }
  EXPECT_TRUE(transport.send_bye(
      static_cast<std::uint32_t>(intervals.size())))
      << "member " << member;
}

/// Bit-identity in the strongest form: the encoded bytes match. Flow
/// order inside an interval differs benignly between the two paths (the
/// channel ships each member's flows largest-first), so both sides are
/// put in size order — a stable sort, so ties keep member order and the
/// comparison stays exact.
void expect_bit_identical(std::vector<core::Report> fleet,
                          std::vector<core::Report> single) {
  ASSERT_EQ(fleet.size(), single.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    core::sort_by_size(fleet[i]);
    core::sort_by_size(single[i]);
    expect_reports_equal(fleet[i], single[i]);
    ASSERT_EQ(fleet[i].shards.size(), single[i].shards.size())
        << "interval " << i;
    EXPECT_EQ(
        reporting::encode(fleet[i], packet::FlowKeyKind::kFiveTuple),
        reporting::encode(single[i], packet::FlowKeyKind::kFiveTuple))
        << "interval " << i << ": encoded bytes differ";
  }
}

TEST(LoopbackFleet, FourDevicesMergeBitIdenticalToShardedDevice) {
  const auto intervals = classify_trace(
      fleet_trace(), packet::FlowDefinition::five_tuple());
  const std::vector<core::Report> reference = sharded_reference(intervals);

  telemetry::MetricsRegistry registry;
  CollectorConfig config;
  config.expected_devices = kFleetSize;
  config.timeout = std::chrono::milliseconds(30'000);  // hang guard
  config.metrics = &registry;
  Collector collector(config);
  collector.start();

  std::vector<std::thread> members;
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    members.emplace_back(
        [m, port = collector.port(), &intervals] {
          run_member(m, port, intervals, nullptr);
        });
  }
  for (std::thread& member : members) member.join();
  ASSERT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.hellos, kFleetSize);
  EXPECT_EQ(stats.byes, kFleetSize);
  EXPECT_EQ(stats.reports_ingested, kFleetSize * intervals.size());
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.duplicate_reports, 0u);
  EXPECT_EQ(registry.counter("nd_net_reports_total").value(),
            stats.reports_ingested);

  expect_bit_identical(collector.merged_reports(), reference);
}

/// Scrape client for the observability-plane tests: one GET, read to
/// EOF (the exporter closes after each response).
std::string http_get(std::uint16_t port, const std::string& path) {
  Socket socket = tcp_connect("127.0.0.1", port);
  EXPECT_TRUE(socket.valid());
  const std::string raw = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(write_all(
      socket.fd(),
      {reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()}));
  std::string response;
  std::uint8_t buffer[8192];
  for (;;) {
    const ssize_t n = read_some(socket.fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buffer),
                    static_cast<std::size_t>(n));
  }
  return response;
}

/// A member that also keeps a device-side registry and ships each
/// interval snapshot as the v3 metrics trailer — the fleet-aggregation
/// ingest path.
void run_member_with_metrics(
    std::uint32_t member, std::uint16_t port,
    const std::vector<std::vector<packet::ClassifiedPacket>>& intervals) {
  FleetMember fleet_member(
      member, kFleetSize, kSeed,
      std::make_unique<core::MultistageFilter>(
          filter_config(core::shard_seed(kSeed, member))));

  TcpTransportConfig transport_config;
  transport_config.port = port;
  transport_config.device_id = member;
  TcpTransport transport(transport_config);

  common::FakeClock clock;
  reporting::ResilientChannelConfig channel_config;
  channel_config.bytes_per_interval = 1ULL << 24;
  channel_config.sleep_on_backoff = true;
  channel_config.clock = &clock;
  channel_config.transport = &transport;
  reporting::ResilientChannel channel(channel_config);

  telemetry::MetricsRegistry registry;
  telemetry::Counter& packets =
      registry.counter("nd_member_packets_total");
  telemetry::Gauge& entries = registry.gauge("nd_member_entries");
  telemetry::Histogram& flows =
      registry.histogram("nd_member_report_flows");
  for (const auto& interval : intervals) {
    fleet_member.observe_batch(interval);
    const core::Report report = fleet_member.end_interval();
    packets.add(report.shards.front().packets);
    entries.set(
        static_cast<double>(report.shards.front().entries_used));
    flows.record(report.flows.size());
    const std::string trailer =
        telemetry::to_json_line(registry.snapshot(report.interval));
    EXPECT_TRUE(channel.send(report, trailer).delivered)
        << "member " << member << " interval " << report.interval;
  }
  EXPECT_TRUE(transport.send_bye(
      static_cast<std::uint32_t>(intervals.size())));
}

TEST(LoopbackFleet, MetricsTrailersAggregateAndServeOverHttp) {
  // Every member ships per-interval registry snapshots in the metrics
  // trailer; the collector re-registers them under device="<id>" plus
  // device="fleet" rollups, all scrapeable over the HTTP plane — and
  // the rollups must equal what the single-process ShardedDevice
  // reference reports for the same trace.
  const auto intervals = classify_trace(
      fleet_trace(), packet::FlowDefinition::five_tuple());
  const std::vector<core::Report> reference = sharded_reference(intervals);

  telemetry::MetricsRegistry registry;
  CollectorConfig config;
  config.expected_devices = kFleetSize;
  config.timeout = std::chrono::milliseconds(30'000);  // hang guard
  config.metrics = &registry;
  Collector collector(config);

  telemetry::HttpExporterConfig http_config;
  http_config.metrics_text = [&registry] {
    return telemetry::to_prometheus(registry.snapshot());
  };
  http_config.status_text = [&collector] {
    return collector.status_text();
  };
  http_config.healthy = [&collector] { return collector.healthy(); };
  telemetry::HttpExporter http(std::move(http_config));
  http.start();

  collector.start();
  std::vector<std::thread> members;
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    members.emplace_back([m, port = collector.port(), &intervals] {
      run_member_with_metrics(m, port, intervals);
    });
  }
  for (std::thread& member : members) member.join();
  ASSERT_TRUE(collector.wait());

  // Per-device series match the reference shard statuses exactly: the
  // member's packet counter accumulates what ShardedDevice routed to
  // that shard, its entries gauge is the shard's last entries_used.
  std::uint64_t total_packets = 0;
  std::size_t max_entries = 0;
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    std::uint64_t shard_packets = 0;
    for (const core::Report& report : reference) {
      shard_packets += report.shards[m].packets;
    }
    total_packets += shard_packets;
    const telemetry::Labels labels{{"device", std::to_string(m)}};
    EXPECT_EQ(
        registry.counter("nd_member_packets_total", labels).value(),
        shard_packets)
        << "device " << m;
    const auto entries = reference.back().shards[m].entries_used;
    max_entries = std::max(max_entries, entries);
    EXPECT_DOUBLE_EQ(
        registry.gauge("nd_member_entries", labels).value(),
        static_cast<double>(entries))
        << "device " << m;
  }
  // Fleet rollups: counters sum, gauges take the worst member.
  const telemetry::Labels fleet{{"device", "fleet"}};
  EXPECT_EQ(registry.counter("nd_member_packets_total", fleet).value(),
            total_packets);
  EXPECT_DOUBLE_EQ(registry.gauge("nd_member_entries", fleet).value(),
                   static_cast<double>(max_entries));
  EXPECT_EQ(
      registry.histogram("nd_member_report_flows", fleet).count(),
      static_cast<std::uint64_t>(kFleetSize * intervals.size()));

  // The same values over a real HTTP scrape.
  const std::string scrape = http_get(http.port(), "/metrics");
  EXPECT_NE(scrape.find("HTTP/1.0 200 OK"), std::string::npos);
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    EXPECT_NE(scrape.find("nd_member_packets_total{device=\"" +
                          std::to_string(m) + "\"} "),
              std::string::npos)
        << "device " << m << " series missing from scrape";
  }
  EXPECT_NE(scrape.find("nd_member_packets_total{device=\"fleet\"} " +
                        std::to_string(total_packets) + "\n"),
            std::string::npos)
      << scrape.substr(0, 2000);
  // Healthy fleet: /healthz 200, /statusz shows every device done.
  EXPECT_NE(http_get(http.port(), "/healthz").find("200 OK"),
            std::string::npos);
  const std::string status = http_get(http.port(), "/statusz");
  EXPECT_NE(status.find("health: ok"), std::string::npos);
  EXPECT_NE(status.find("device 0: epoch 0, 3 reports, bye"),
            std::string::npos)
      << status;
}

TEST(LoopbackFleet, DegradedShardFlipsHealthzSticky) {
  // A report whose ShardStatus carries degraded=true means an interval
  // lost flows to the watchdog; once the collector has ingested one,
  // /healthz must answer 503 for the rest of the daemon's life.
  telemetry::MetricsRegistry registry;
  CollectorConfig config;
  config.expected_devices = 1;
  config.timeout = std::chrono::milliseconds(30'000);  // hang guard
  config.metrics = &registry;
  Collector collector(config);

  telemetry::HttpExporterConfig http_config;
  http_config.metrics_text = [&registry] {
    return telemetry::to_prometheus(registry.snapshot());
  };
  http_config.status_text = [&collector] {
    return collector.status_text();
  };
  http_config.healthy = [&collector] { return collector.healthy(); };
  telemetry::HttpExporter http(std::move(http_config));
  http.start();
  collector.start();

  EXPECT_TRUE(collector.healthy());
  EXPECT_NE(http_get(http.port(), "/healthz").find("200 OK"),
            std::string::npos);

  const auto intervals = classify_trace(
      fleet_trace(), packet::FlowDefinition::five_tuple());
  std::thread member([port = collector.port(), &intervals] {
    FleetMember fleet_member(
        0, 1, kSeed,
        std::make_unique<core::MultistageFilter>(
            filter_config(core::shard_seed(kSeed, 0))));
    TcpTransportConfig transport_config;
    transport_config.port = port;
    TcpTransport transport(transport_config);
    common::FakeClock clock;
    reporting::ResilientChannelConfig channel_config;
    channel_config.bytes_per_interval = 1ULL << 24;
    channel_config.sleep_on_backoff = true;
    channel_config.clock = &clock;
    channel_config.transport = &transport;
    reporting::ResilientChannel channel(channel_config);
    fleet_member.observe_batch(intervals.front());
    core::Report report = fleet_member.end_interval();
    // The hand-crafted failure: this interval missed its watchdog.
    report.shards.front().degraded = true;
    EXPECT_TRUE(channel.send(report).delivered);
    EXPECT_TRUE(transport.send_bye(1));
  });
  member.join();
  ASSERT_TRUE(collector.wait());

  EXPECT_FALSE(collector.healthy());
  EXPECT_NE(http_get(http.port(), "/healthz")
                .find("503 Service Unavailable"),
            std::string::npos);
  const std::string status = http_get(http.port(), "/statusz");
  EXPECT_NE(status.find("health: DEGRADED"), std::string::npos);
  EXPECT_NE(status.find("1 degraded intervals"), std::string::npos)
      << status;
}

TEST(LoopbackFleet, MergeSurvivesMidIntervalDisconnectBitIdentical) {
  // Same fleet, but two members get their connection cut mid-frame by
  // a seeded net.disconnect plan. The transport reconnects with a
  // bumped epoch, the channel re-sends the interval, the collector
  // drops the partial frame and dedups — and the merged output must
  // still match the single-process device bit for bit.
  const auto intervals = classify_trace(
      fleet_trace(), packet::FlowDefinition::five_tuple());
  const std::vector<core::Report> reference = sharded_reference(intervals);

  CollectorConfig config;
  config.expected_devices = kFleetSize;
  config.timeout = std::chrono::milliseconds(30'000);  // hang guard
  Collector collector(config);
  collector.start();

  // Per-member injectors (consulted on the member's own thread, so the
  // cross-thread determinism contract holds). Members 1 and 3 each lose
  // their second data frame mid-write.
  robustness::FaultSpec cut;
  cut.kind = robustness::FaultKind::kDrop;
  cut.schedule = {1};
  std::vector<std::unique_ptr<robustness::FaultInjector>> injectors(
      kFleetSize);
  injectors[1] = std::make_unique<robustness::FaultInjector>(
      robustness::FaultPlan(31).inject("net.disconnect", cut));
  injectors[3] = std::make_unique<robustness::FaultInjector>(
      robustness::FaultPlan(33).inject("net.disconnect", cut));

  std::vector<std::thread> members;
  for (std::uint32_t m = 0; m < kFleetSize; ++m) {
    members.emplace_back(
        [m, port = collector.port(), &intervals, &injectors] {
          run_member(m, port, intervals, injectors[m].get());
        });
  }
  for (std::thread& member : members) member.join();
  ASSERT_TRUE(collector.wait());

  const CollectorStats stats = collector.stats();
  // Both cut members dialed again with epoch 1 and the collector saw
  // their truncated frames die on the old connections.
  EXPECT_EQ(stats.reconnects, 2u);
  EXPECT_EQ(stats.partial_frames_dropped, 2u);
  EXPECT_EQ(stats.hellos, kFleetSize + 2);
  // The cut frame never completed, so the re-send is the first copy:
  // no duplicates, nothing lost.
  EXPECT_EQ(stats.duplicate_reports, 0u);
  EXPECT_EQ(stats.reports_ingested, kFleetSize * intervals.size());

  expect_bit_identical(collector.merged_reports(), reference);
}

}  // namespace
}  // namespace nd::net
