// FrameStreamParser unit suite: whole-frame dispatch, arbitrary chunk
// boundaries, and the resync rule (malformed bytes are skipped to the
// next plausible boundary — the frames that follow always survive).
#include "net/frame_stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/cpu_features.hpp"
#include "core/device.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"

namespace nd::net {
namespace {

struct RecordingEvents final : FrameStreamParser::Events {
  std::vector<Hello> hellos;
  std::vector<Bye> byes;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::size_t> resyncs;

  void on_hello(const Hello& hello) override { hellos.push_back(hello); }
  void on_bye(const Bye& bye) override { byes.push_back(bye); }
  void on_report_frame(std::span<const std::uint8_t> payload) override {
    payloads.emplace_back(payload.begin(), payload.end());
  }
  void on_resync(std::size_t skipped) override {
    resyncs.push_back(skipped);
  }
};

core::Report make_report(common::IntervalIndex interval,
                         std::size_t flows) {
  core::Report report;
  report.interval = interval;
  report.threshold = 40'000;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FF,
        static_cast<std::uint16_t>(2000 + i), 443,
        packet::IpProtocol::kTcp);
    flow.estimated_bytes = 90'000 + 500 * i;
    report.flows.push_back(flow);
  }
  return report;
}

std::vector<std::uint8_t> report_frame(common::IntervalIndex interval,
                                       std::size_t flows) {
  return reporting::encode_framed(make_report(interval, flows),
                                  packet::FlowKeyKind::kFiveTuple);
}

void feed_all(FrameStreamParser& parser,
              const std::vector<std::uint8_t>& bytes,
              RecordingEvents& events) {
  parser.feed(bytes, events);
}

TEST(FrameStream, ControlFramesRoundTrip) {
  FrameStreamParser parser;
  RecordingEvents events;
  feed_all(parser, encode_hello(Hello{42, 3}), events);
  feed_all(parser, encode_bye(Bye{42, 17}), events);

  ASSERT_EQ(events.hellos.size(), 1u);
  EXPECT_EQ(events.hellos[0].device_id, 42u);
  EXPECT_EQ(events.hellos[0].epoch, 3u);
  ASSERT_EQ(events.byes.size(), 1u);
  EXPECT_EQ(events.byes[0].device_id, 42u);
  EXPECT_EQ(events.byes[0].intervals, 17u);
  EXPECT_TRUE(events.resyncs.empty());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameStream, ReportFrameIsVerifiedAndDelivered) {
  const std::vector<std::uint8_t> frame = report_frame(5, 4);
  FrameStreamParser parser;
  RecordingEvents events;
  feed_all(parser, frame, events);

  ASSERT_EQ(events.payloads.size(), 1u);
  const core::Report decoded = reporting::decode(events.payloads[0]);
  EXPECT_EQ(decoded.interval, 5u);
  EXPECT_EQ(decoded.flows.size(), 4u);
  EXPECT_TRUE(events.resyncs.empty());
}

TEST(FrameStream, ByteByByteFeedDeliversEverything) {
  // The parser must be indifferent to chunk boundaries: one byte at a
  // time is the worst case TCP can legally produce.
  std::vector<std::uint8_t> stream = encode_hello(Hello{9, 0});
  const std::vector<std::uint8_t> frame1 = report_frame(0, 3);
  const std::vector<std::uint8_t> frame2 = report_frame(1, 1);
  stream.insert(stream.end(), frame1.begin(), frame1.end());
  stream.insert(stream.end(), frame2.begin(), frame2.end());
  const std::vector<std::uint8_t> bye = encode_bye(Bye{9, 2});
  stream.insert(stream.end(), bye.begin(), bye.end());

  FrameStreamParser parser;
  RecordingEvents events;
  for (const std::uint8_t byte : stream) {
    parser.feed({&byte, 1}, events);
  }
  EXPECT_EQ(events.hellos.size(), 1u);
  EXPECT_EQ(events.payloads.size(), 2u);
  EXPECT_EQ(events.byes.size(), 1u);
  EXPECT_TRUE(events.resyncs.empty());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameStream, GarbageBetweenFramesResyncs) {
  const std::vector<std::uint8_t> frame1 = report_frame(0, 2);
  const std::vector<std::uint8_t> frame2 = report_frame(1, 2);
  std::vector<std::uint8_t> stream = frame1;
  // Garbage with no 'N' anywhere: one resync skips it all.
  const std::vector<std::uint8_t> garbage(37, 0xAB);
  stream.insert(stream.end(), garbage.begin(), garbage.end());
  stream.insert(stream.end(), frame2.begin(), frame2.end());

  FrameStreamParser parser;
  RecordingEvents events;
  feed_all(parser, stream, events);

  ASSERT_EQ(events.payloads.size(), 2u);
  EXPECT_EQ(reporting::decode(events.payloads[1]).interval, 1u);
  EXPECT_GE(events.resyncs.size(), 1u);
  std::size_t skipped = 0;
  for (const std::size_t n : events.resyncs) skipped += n;
  EXPECT_EQ(skipped, garbage.size());
}

TEST(FrameStream, CorruptedCrcResyncsToNextFrame) {
  std::vector<std::uint8_t> frame1 = report_frame(0, 2);
  frame1[frame1.size() - 1] ^= 0x01;  // payload flip: CRC must catch it
  const std::vector<std::uint8_t> frame2 = report_frame(1, 2);
  std::vector<std::uint8_t> stream = frame1;
  stream.insert(stream.end(), frame2.begin(), frame2.end());

  FrameStreamParser parser;
  RecordingEvents events;
  feed_all(parser, stream, events);

  // The corrupted frame is never delivered; the next one survives.
  ASSERT_EQ(events.payloads.size(), 1u);
  EXPECT_EQ(reporting::decode(events.payloads[0]).interval, 1u);
  EXPECT_GE(events.resyncs.size(), 1u);
}

TEST(FrameStream, AbsurdLengthPrefixResyncsInsteadOfWaiting) {
  // A length prefix above the cap must be treated as corruption
  // immediately — not held as a frame the parser waits gigabytes for.
  std::vector<std::uint8_t> frame = report_frame(0, 1);
  frame[4] = 0xFF;  // length high byte: now far beyond the cap
  const std::vector<std::uint8_t> good = report_frame(1, 1);
  std::vector<std::uint8_t> stream = frame;
  stream.insert(stream.end(), good.begin(), good.end());

  FrameStreamParser parser;
  RecordingEvents events;
  feed_all(parser, stream, events);

  ASSERT_EQ(events.payloads.size(), 1u);
  EXPECT_EQ(reporting::decode(events.payloads[0]).interval, 1u);
  EXPECT_GE(events.resyncs.size(), 1u);
}

TEST(FrameStream, ResetDropsBufferedPartialFrame) {
  const std::vector<std::uint8_t> frame = report_frame(0, 3);
  FrameStreamParser parser;
  RecordingEvents events;
  // A connection dying mid-frame leaves a prefix buffered.
  parser.feed({frame.data(), frame.size() / 2}, events);
  EXPECT_TRUE(events.payloads.empty());
  EXPECT_GT(parser.buffered(), 0u);
  EXPECT_EQ(parser.reset(), frame.size() / 2);
  EXPECT_EQ(parser.buffered(), 0u);

  // The parser is clean again: a fresh copy of the frame delivers.
  feed_all(parser, frame, events);
  EXPECT_EQ(events.payloads.size(), 1u);
  EXPECT_TRUE(events.resyncs.empty());
}

TEST(FrameStream, HardwareCrcFramesParseUnderEveryDispatchTier) {
  // A frame encoded with the hardware CRC kernel must verify (and a
  // corrupted one must resync) no matter which tier the *parser's*
  // process runs — the wire format cannot depend on the sender's CPU.
  const common::SimdLevel tiers[] = {common::SimdLevel::kAvx2,
                                     common::SimdLevel::kNeon,
                                     common::SimdLevel::kScalar};
  std::vector<std::uint8_t> hw_frame1, hw_frame2;
  {
    common::ScopedSimdLevel forced(common::SimdLevel::kAvx2);
    // 600 flows: the payload is far past the 64-byte hardware-kernel
    // threshold, so the frame CRC really comes from the wide path.
    hw_frame1 = report_frame(0, 600);
    hw_frame2 = report_frame(1, 600);
  }
  for (const common::SimdLevel tier : tiers) {
    common::ScopedSimdLevel forced(tier);
    std::vector<std::uint8_t> stream = hw_frame1;
    std::vector<std::uint8_t> bad = hw_frame1;
    bad[bad.size() / 2] ^= 0x40;  // mid-payload flip
    stream.insert(stream.end(), bad.begin(), bad.end());
    stream.insert(stream.end(), hw_frame2.begin(), hw_frame2.end());

    FrameStreamParser parser;
    RecordingEvents events;
    feed_all(parser, stream, events);

    ASSERT_EQ(events.payloads.size(), 2u)
        << "parser tier=" << common::simd_name(forced.applied());
    EXPECT_EQ(reporting::decode(events.payloads[0]).interval, 0u);
    EXPECT_EQ(reporting::decode(events.payloads[1]).interval, 1u);
    EXPECT_GE(events.resyncs.size(), 1u);
  }
}

TEST(FrameStream, InterleavedControlAndDataAcrossSplitBoundary) {
  // Split exactly inside the hello magic to force the
  // could-be-a-magic-still-arriving buffering path.
  std::vector<std::uint8_t> stream = encode_hello(Hello{1, 0});
  const std::vector<std::uint8_t> frame = report_frame(0, 1);
  stream.insert(stream.end(), frame.begin(), frame.end());

  FrameStreamParser parser;
  RecordingEvents events;
  parser.feed({stream.data(), 2}, events);
  EXPECT_TRUE(events.hellos.empty());
  parser.feed({stream.data() + 2, stream.size() - 2}, events);
  EXPECT_EQ(events.hellos.size(), 1u);
  EXPECT_EQ(events.payloads.size(), 1u);
  EXPECT_TRUE(events.resyncs.empty());
}

}  // namespace
}  // namespace nd::net
