// Stream-framing fuzz tables, extending the decoder-hardening suite
// (tests/robustness/decode_hardening_test.cpp) to the wire: every
// truncation prefix of a frame, every single-byte flip of a short
// frame, and every byte-flip of the control frames. The invariants are
// the collector's survival rules — the parser never throws, a damaged
// frame is never delivered as a report, and after the damage is cut off
// (connection close + reset) a pristine frame always delivers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/device.hpp"
#include "net/frame_stream.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"

namespace nd::net {
namespace {

struct CountingEvents final : FrameStreamParser::Events {
  std::size_t hellos{0};
  std::size_t byes{0};
  std::size_t reports{0};
  std::size_t resyncs{0};

  void on_hello(const Hello&) override { ++hellos; }
  void on_bye(const Bye&) override { ++byes; }
  void on_report_frame(std::span<const std::uint8_t>) override {
    ++reports;
  }
  void on_resync(std::size_t) override { ++resyncs; }
};

std::vector<std::uint8_t> short_frame() {
  core::Report report;
  report.interval = 2;
  report.threshold = 10'000;
  core::ReportedFlow flow;
  flow.key = packet::FlowKey::five_tuple(0x0A000001, 0x0A0000FF, 1234,
                                         80, packet::IpProtocol::kTcp);
  flow.estimated_bytes = 50'000;
  report.flows.push_back(flow);
  return reporting::encode_framed(report,
                                  packet::FlowKeyKind::kFiveTuple);
}

TEST(FrameStreamFuzz, EveryTruncationPrefixIsSafe) {
  const std::vector<std::uint8_t> frame = short_frame();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameStreamParser parser;
    CountingEvents events;
    ASSERT_NO_THROW(parser.feed({frame.data(), len}, events))
        << "prefix " << len;
    // A strict prefix never completes the frame (covers the truncated
    // length prefix: fewer than 8 header bytes leaves the length
    // unreadable and the parser waiting, not guessing).
    EXPECT_EQ(events.reports, 0u) << "prefix " << len;
    // Close the connection mid-frame: buffered bytes are dropped and a
    // full retransmit then delivers exactly once.
    (void)parser.reset();
    ASSERT_NO_THROW(parser.feed(frame, events)) << "prefix " << len;
    EXPECT_EQ(events.reports, 1u) << "prefix " << len;
  }
}

TEST(FrameStreamFuzz, EveryByteFlipIsRejectedAndRecoverable) {
  const std::vector<std::uint8_t> frame = short_frame();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (const std::uint8_t mask :
         {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> mutated = frame;
      mutated[i] ^= mask;
      FrameStreamParser parser;
      CountingEvents events;
      ASSERT_NO_THROW(parser.feed(mutated, events))
          << "flip at " << i << " mask " << int(mask);
      // CRC32 detects every single-byte error; header damage (magic,
      // length, CRC field) is caught by magic/length/CRC checks. The
      // damaged frame must never surface as a report.
      EXPECT_EQ(events.reports, 0u)
          << "flip at " << i << " mask " << int(mask);
      // The stream recovers once the damage ends: connection close,
      // reset, retransmit.
      (void)parser.reset();
      ASSERT_NO_THROW(parser.feed(frame, events));
      EXPECT_EQ(events.reports, 1u)
          << "flip at " << i << " mask " << int(mask);
    }
  }
}

TEST(FrameStreamFuzz, InStreamByteFlipNeverKillsFollowingTraffic) {
  // The live-stream variant: damaged frame and pristine frame on ONE
  // connection, with the stream still flowing afterwards. Wherever the
  // flip lands, the parser must stay sane; flips that corrupt the
  // length prefix may legitimately swallow the adjacent frame while
  // waiting for phantom bytes, so the hard guarantees are no-throw,
  // no damaged report, and bounded buffering — and whenever a report
  // does surface it is the pristine one, bit-exact (the CRC already
  // proved it).
  const std::vector<std::uint8_t> frame = short_frame();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> stream = frame;
    stream[i] ^= 0x40;
    stream.insert(stream.end(), frame.begin(), frame.end());
    FrameStreamParser parser;
    CountingEvents events;
    ASSERT_NO_THROW(parser.feed(stream, events)) << "flip at " << i;
    EXPECT_LE(events.reports, 1u) << "flip at " << i;
    EXPECT_LE(parser.buffered(), stream.size()) << "flip at " << i;
    if (events.reports == 0) {
      // The pristine frame was consumed by a corrupted length prefix
      // or still sits buffered — either way a resync or pending bytes
      // must account for it.
      EXPECT_TRUE(events.resyncs > 0 || parser.buffered() > 0)
          << "flip at " << i;
    }
  }
}

TEST(FrameStreamFuzz, ControlFrameByteFlipsAreSafe) {
  for (const bool hello : {true, false}) {
    const std::vector<std::uint8_t> control =
        hello ? encode_hello(Hello{3, 1}) : encode_bye(Bye{3, 7});
    for (std::size_t i = 0; i < control.size(); ++i) {
      std::vector<std::uint8_t> stream = control;
      stream[i] ^= 0x10;
      const std::vector<std::uint8_t> frame = short_frame();
      stream.insert(stream.end(), frame.begin(), frame.end());
      FrameStreamParser parser;
      CountingEvents events;
      ASSERT_NO_THROW(parser.feed(stream, events))
          << (hello ? "hello" : "bye") << " flip at " << i;
      // A flipped magic resyncs; a flipped body field just changes the
      // announced value (control frames are 16 fixed bytes, no CRC —
      // the collector treats device identity as advisory). Either way
      // the data frame behind it must deliver.
      EXPECT_EQ(events.reports, 1u)
          << (hello ? "hello" : "bye") << " flip at " << i;
    }
  }
}

TEST(FrameStreamFuzz, DeterministicChunkShreddingDeliversAll) {
  // Feed a multi-frame stream in pseudo-random chunk sizes (fixed
  // pattern, so failures replay): framing must be chunk-agnostic.
  std::vector<std::uint8_t> stream = encode_hello(Hello{1, 0});
  const std::vector<std::uint8_t> frame = short_frame();
  for (int i = 0; i < 8; ++i) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  const std::vector<std::uint8_t> bye = encode_bye(Bye{1, 8});
  stream.insert(stream.end(), bye.begin(), bye.end());

  for (std::uint64_t salt = 1; salt <= 16; ++salt) {
    FrameStreamParser parser;
    CountingEvents events;
    std::size_t pos = 0;
    std::uint64_t state = salt * 0x9E3779B97F4A7C15ULL;
    while (pos < stream.size()) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      const std::size_t chunk = std::min<std::size_t>(
          1 + static_cast<std::size_t>(state % 23),
          stream.size() - pos);
      parser.feed({stream.data() + pos, chunk}, events);
      pos += chunk;
    }
    EXPECT_EQ(events.hellos, 1u) << "salt " << salt;
    EXPECT_EQ(events.reports, 8u) << "salt " << salt;
    EXPECT_EQ(events.byes, 1u) << "salt " << salt;
    EXPECT_EQ(events.resyncs, 0u) << "salt " << salt;
    EXPECT_EQ(parser.buffered(), 0u) << "salt " << salt;
  }
}

}  // namespace
}  // namespace nd::net
