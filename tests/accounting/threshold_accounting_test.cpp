#include "accounting/threshold_accounting.hpp"

#include <gtest/gtest.h>

#include "baseline/sampled_netflow.hpp"
#include "core/sample_and_hold.hpp"

namespace nd::accounting {
namespace {

packet::FlowKey customer(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

core::Report report_with(
    std::initializer_list<std::pair<std::uint32_t, common::ByteCount>>
        flows) {
  core::Report report;
  for (const auto& [id, bytes] : flows) {
    report.flows.push_back(core::ReportedFlow{customer(id), bytes, false});
  }
  return report;
}

Tariff default_tariff() {
  Tariff tariff;
  tariff.usage_threshold_fraction = 0.001;  // z = 0.1%
  tariff.price_per_megabyte = 0.05;
  tariff.duration_fee = 1.0;
  return tariff;
}

TEST(ThresholdAccountant, SplitsUsageAndDuration) {
  // Capacity 100 MB -> usage threshold 100 KB.
  ThresholdAccountant accountant(default_tariff(), 100'000'000);
  EXPECT_EQ(accountant.usage_threshold_bytes(), 100'000u);

  const auto bill = accountant.bill(
      report_with({{1, 2'000'000}, {2, 50'000}}), /*total_customers=*/10);
  EXPECT_EQ(bill.usage_customers, 1u);
  EXPECT_EQ(bill.duration_customers, 9u);
  EXPECT_DOUBLE_EQ(bill.usage_revenue, 2.0 * 0.05);
  EXPECT_DOUBLE_EQ(bill.duration_revenue, 9.0);
  EXPECT_DOUBLE_EQ(bill.total_revenue(), 9.1);
}

TEST(ThresholdAccountant, ZZeroIsPureUsagePricingForReported) {
  Tariff tariff = default_tariff();
  tariff.usage_threshold_fraction = 0.0;
  ThresholdAccountant accountant(tariff, 100'000'000);
  const auto bill =
      accountant.bill(report_with({{1, 1'000}, {2, 10}}), 2);
  EXPECT_EQ(bill.usage_customers, 2u);
  EXPECT_EQ(bill.duration_customers, 0u);
}

TEST(ThresholdAccountant, ZOneHundredIsPureDurationPricing) {
  Tariff tariff = default_tariff();
  tariff.usage_threshold_fraction = 1.0;  // nothing exceeds the link
  ThresholdAccountant accountant(tariff, 100'000'000);
  const auto bill =
      accountant.bill(report_with({{1, 50'000'000}}), 5);
  EXPECT_EQ(bill.usage_customers, 0u);
  EXPECT_DOUBLE_EQ(bill.total_revenue(), 5.0);
}

TEST(ThresholdAccountant, InvoiceAmounts) {
  ThresholdAccountant accountant(default_tariff(), 100'000'000);
  const auto bill = accountant.bill(report_with({{7, 3'000'000}}), 1);
  ASSERT_EQ(bill.invoices.size(), 1u);
  EXPECT_EQ(bill.invoices[0].customer, customer(7));
  EXPECT_TRUE(bill.invoices[0].usage_billed);
  EXPECT_DOUBLE_EQ(bill.invoices[0].amount, 3.0 * 0.05);
}

TEST(Overcharge, ZeroForLowerBoundEstimates) {
  ThresholdAccountant accountant(default_tariff(), 100'000'000);
  const auto bill = accountant.bill(report_with({{1, 900'000}}), 1);
  std::unordered_map<packet::FlowKey, common::ByteCount,
                     packet::FlowKeyHasher>
      truth;
  truth[customer(1)] = 1'000'000;  // estimate below actual
  EXPECT_EQ(overcharged_bytes(bill, truth), 0u);
}

TEST(Overcharge, DetectedForOverestimates) {
  ThresholdAccountant accountant(default_tariff(), 100'000'000);
  const auto bill = accountant.bill(report_with({{1, 1'200'000}}), 1);
  std::unordered_map<packet::FlowKey, common::ByteCount,
                     packet::FlowKeyHasher>
      truth;
  truth[customer(1)] = 1'000'000;  // NetFlow-style overshoot
  EXPECT_EQ(overcharged_bytes(bill, truth), 200'000u);
}

TEST(Overcharge, SampleAndHoldNeverOvercharges) {
  // Property over seeds: billing from sample-and-hold reports never
  // exceeds actual usage (Section 5.2 iii).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    core::SampleAndHoldConfig config;
    config.flow_memory_entries = 256;
    config.threshold = 100'000;
    config.oversampling = 10.0;
    config.seed = seed;
    core::SampleAndHold device(config);

    std::unordered_map<packet::FlowKey, common::ByteCount,
                       packet::FlowKeyHasher>
        truth;
    for (std::uint32_t c = 0; c < 20; ++c) {
      const common::ByteCount bytes = 50'000 + 37'000ULL * c;
      truth[customer(c)] = bytes;
      common::ByteCount remaining = bytes;
      while (remaining > 0) {
        const auto size = static_cast<std::uint32_t>(
            std::min<common::ByteCount>(1000, remaining));
        device.observe(customer(c), size);
        remaining -= size;
      }
    }
    ThresholdAccountant accountant(default_tariff(), 100'000'000);
    const auto bill = accountant.bill(device.end_interval(), 20);
    EXPECT_EQ(overcharged_bytes(bill, truth), 0u) << "seed " << seed;
  }
}

TEST(BillingLedger, AccumulatesRevenueAndError) {
  BillingLedger ledger;
  IntervalBill bill;
  bill.usage_revenue = 8.0;
  bill.duration_revenue = 2.0;
  ledger.observe(bill, /*exact_revenue=*/11.0);
  ledger.observe(bill, /*exact_revenue=*/9.0);
  EXPECT_DOUBLE_EQ(ledger.total_revenue(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.total_exact_revenue(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.revenue_error(), 2.0 / 20.0);
  EXPECT_EQ(ledger.intervals(), 2u);
}

TEST(BillingLedger, EmptyLedger) {
  BillingLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.revenue_error(), 0.0);
  EXPECT_EQ(ledger.intervals(), 0u);
}

}  // namespace
}  // namespace nd::accounting
