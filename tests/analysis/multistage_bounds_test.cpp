// Pins the Section 3.2 / 4.2 worked examples: 100 Mbyte/s link, 100,000
// flows, T = 1 MB (1%), 4 stages of 1,000 buckets, stage strength k = 10.
#include "analysis/multistage_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nd::analysis {
namespace {

MultistageParams paper_example() {
  MultistageParams params;
  params.buckets = 1000;
  params.depth = 4;
  params.flows = 100'000;
  params.capacity = 100'000'000;
  params.threshold = 1'000'000;
  params.max_packet = 1500;
  return params;
}

TEST(MultistageBounds, StageStrengthTen) {
  // "The stage strength k is 10 because each stage memory has 10 times
  // more buckets than the maximum number of flows (100) that can cross
  // the threshold of 1%."
  EXPECT_DOUBLE_EQ(stage_strength(paper_example()), 10.0);
}

TEST(MultistageBounds, Lemma1PaperExample) {
  // Section 3.2: a 100 KB flow passes one stage with probability at most
  // 11.1%, and all 4 stages with at most 1.52 * 10^-4.
  const double p = pass_probability_bound(paper_example(), 100'000);
  EXPECT_NEAR(p, 1.524e-4, 0.01e-4);
}

TEST(MultistageBounds, Lemma1SingleStage) {
  MultistageParams params = paper_example();
  params.depth = 1;
  EXPECT_NEAR(pass_probability_bound(params, 100'000), 0.1111, 0.0002);
}

TEST(MultistageBounds, Lemma1OutOfRangeIsOne) {
  // The lemma applies only for s < T(1 - 1/k) = 900 KB.
  EXPECT_DOUBLE_EQ(pass_probability_bound(paper_example(), 950'000), 1.0);
  EXPECT_DOUBLE_EQ(pass_probability_bound(paper_example(), 1'000'000), 1.0);
}

TEST(MultistageBounds, Lemma1MonotoneInSize) {
  // Larger flows are (weakly) more likely to pass.
  double last = 0.0;
  for (common::ByteCount s = 0; s < 900'000; s += 50'000) {
    const double p = pass_probability_bound(paper_example(), s);
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(MultistageBounds, Theorem3PaperExamples) {
  // "Theorem 3 gives a bound of 121.2 flows. Using 3 stages would have
  // resulted in a bound of 200.6 and using 5 would give 112.1."
  EXPECT_NEAR(expected_flows_passing(paper_example()), 121.2, 0.5);

  MultistageParams five = paper_example();
  five.depth = 5;
  EXPECT_NEAR(expected_flows_passing(five), 112.1, 0.5);

  // Our reconstruction of Theorem 3 reproduces d=4 and d=5 exactly; the
  // paper's d=3 value (200.6) comes from a tighter case analysis in the
  // tech report — ours is the (valid, slightly looser) 211.4.
  MultistageParams three = paper_example();
  three.depth = 3;
  const double b3 = expected_flows_passing(three);
  EXPECT_GT(b3, 200.0);
  EXPECT_LT(b3, 215.0);
}

TEST(MultistageBounds, Theorem3DegeneratesToAllFlows) {
  MultistageParams weak = paper_example();
  weak.threshold = 1000;  // k = 0.01 <= 1: bound gives n
  EXPECT_DOUBLE_EQ(expected_flows_passing(weak), weak.flows);
}

TEST(MultistageBounds, HighProbabilityBoundAboveMean) {
  const double mean = expected_flows_passing(paper_example());
  const double hp = flows_passing_bound(paper_example(), 0.001);
  EXPECT_GT(hp, mean);
  EXPECT_LT(hp, mean + 5.0 * std::sqrt(mean));
}

TEST(MultistageBounds, Theorem2UndetectedBytes) {
  // Strong stages: a large flow goes undetected for nearly T bytes.
  const double lower = expected_undetected_lower_bound(paper_example());
  EXPECT_GT(lower, 0.8e6);
  EXPECT_LT(lower, 1.0e6);
}

TEST(MultistageBounds, Theorem2SingleStageIsZero) {
  MultistageParams params = paper_example();
  params.depth = 1;
  EXPECT_DOUBLE_EQ(expected_undetected_lower_bound(params), 0.0);
}

TEST(MultistageBounds, ShieldingStrengthensStages) {
  // Section 4.2.3: reducing traffic alpha times raises k to alpha*k.
  const MultistageParams shielded_params = shielded(paper_example(), 2.0);
  EXPECT_DOUBLE_EQ(stage_strength(shielded_params), 20.0);
  EXPECT_LT(expected_flows_passing(shielded_params),
            expected_flows_passing(paper_example()));
}

TEST(MultistageBounds, ShieldingBelowOneIsClamped) {
  const MultistageParams same = shielded(paper_example(), 0.5);
  EXPECT_DOUBLE_EQ(stage_strength(same), stage_strength(paper_example()));
}

class DepthSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DepthSweep, PassBoundDecaysExponentially) {
  MultistageParams params = paper_example();
  params.depth = GetParam();
  const double p1 = pass_probability_bound(
      MultistageParams{params.buckets, 1, params.flows, params.capacity,
                       params.threshold, params.max_packet},
      100'000);
  EXPECT_NEAR(pass_probability_bound(params, 100'000),
              std::pow(p1, GetParam()),
              std::pow(p1, GetParam()) * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace nd::analysis
