#include "analysis/zipf_bounds.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace nd::analysis {
namespace {

TEST(ZipfFlowSizes, MatchesShape) {
  const auto sizes = zipf_flow_sizes(1000, 1.0, 10'000'000);
  ASSERT_EQ(sizes.size(), 1000u);
  EXPECT_GE(sizes[0], sizes[999]);
  const auto total = std::accumulate(sizes.begin(), sizes.end(),
                                     common::ByteCount{0});
  EXPECT_NEAR(static_cast<double>(total), 1e7, 1e7 * 0.02);
}

TEST(ZipfSampleHoldEntries, BelowGeneralBound) {
  // Table 4's ordering: the Zipf bound is tighter than the general one.
  SampleHoldParams params;
  params.oversampling = 4.0;
  params.capacity = 1'555'000'000;                     // OC-48 x 5 s
  params.threshold = params.capacity / 4000;           // ~0.025%
  const auto sizes = zipf_flow_sizes(100'000, 1.0, 264'700'000);

  const double general = entries_bound(params, 0.001);
  const double zipf =
      sample_hold_entries_zipf(params, sizes, false, 0.001);
  EXPECT_LT(zipf, general);
  EXPECT_GT(zipf, 0.0);
}

TEST(ZipfSampleHoldEntries, PreservedDoubles) {
  SampleHoldParams params;
  params.oversampling = 4.0;
  params.threshold = 100'000;
  params.capacity = 100'000'000;
  const auto sizes = zipf_flow_sizes(10'000, 1.0, 20'000'000);
  const double once = sample_hold_entries_zipf(params, sizes, false, 0.5);
  const double twice = sample_hold_entries_zipf(params, sizes, true, 0.5);
  // overflow_probability 0.5 makes the slack term ~0, exposing the 2x.
  EXPECT_NEAR(twice, 2.0 * once, once * 0.02);
}

TEST(ZipfMultistageFalsePositives, BelowGeneralBound) {
  // Figure 7's ordering: Zipf bound under the general (Theorem 3) bound.
  MultistageParams params;
  params.buckets = 1000;
  params.depth = 3;
  params.flows = 20'000;
  params.capacity = 60'000'000;
  params.threshold = params.capacity / 4096 * 3;  // k = 3 x max-traffic
  const auto sizes =
      zipf_flow_sizes(static_cast<std::size_t>(params.flows), 1.0,
                      params.capacity);
  const double general = expected_flows_passing(params);
  const double zipf = multistage_false_positives_zipf(params, sizes);
  EXPECT_LT(zipf, general);
}

TEST(ZipfMultistageFalsePositives, DecaysWithDepth) {
  MultistageParams params;
  params.buckets = 500;
  params.flows = 10'000;
  params.capacity = 30'000'000;
  params.threshold = 200'000;
  const auto sizes = zipf_flow_sizes(10'000, 1.0, 30'000'000);
  double last = 1e18;
  for (std::uint32_t d = 1; d <= 4; ++d) {
    params.depth = d;
    const double fp = multistage_false_positives_zipf(params, sizes);
    EXPECT_LT(fp, last);
    last = fp;
  }
}

TEST(ZipfMultistageFalsePositives, LargeFlowsExcluded) {
  // Only flows below T can be false positives; with all flows above T
  // the expected FP count is zero.
  MultistageParams params;
  params.buckets = 100;
  params.depth = 2;
  params.flows = 10;
  params.capacity = 1'000'000;
  params.threshold = 5;  // everything is "large"
  const std::vector<common::ByteCount> sizes(10, 100'000);
  EXPECT_DOUBLE_EQ(multistage_false_positives_zipf(params, sizes), 0.0);
  EXPECT_DOUBLE_EQ(
      multistage_false_positive_percentage_zipf(params, sizes), 0.0);
}

TEST(ZipfMultistagePercentage, NormalizedBySmallFlows) {
  MultistageParams params;
  params.buckets = 1000;
  params.depth = 1;
  params.flows = 100;
  params.capacity = 1'000'000;
  params.threshold = 1'000'000;  // nothing is large
  const std::vector<common::ByteCount> sizes(100, 1'000);
  const double count = multistage_false_positives_zipf(params, sizes);
  const double pct =
      multistage_false_positive_percentage_zipf(params, sizes);
  EXPECT_NEAR(pct, 100.0 * count / 100.0, 1e-9);
}

}  // namespace
}  // namespace nd::analysis
