#include "analysis/core_comparison.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nd::analysis {
namespace {

TEST(Table1, RowsAndFormulas) {
  Table1Params params;
  params.memory_entries = 10'000;
  params.flow_fraction = 0.01;
  params.flows = 100'000;
  const auto rows = table1(params);
  ASSERT_EQ(rows.size(), 3u);

  const double mz = 100.0;
  EXPECT_EQ(rows[0].algorithm, "sample and hold");
  EXPECT_NEAR(rows[0].relative_error, std::sqrt(2.0) / mz, 1e-12);
  EXPECT_DOUBLE_EQ(rows[0].memory_accesses, 1.0);

  EXPECT_EQ(rows[1].algorithm, "multistage filters");
  EXPECT_NEAR(rows[1].relative_error, (1.0 + 1.0 * 5.0) / mz, 1e-12);
  EXPECT_DOUBLE_EQ(rows[1].memory_accesses, 1.0 + 5.0);

  EXPECT_EQ(rows[2].algorithm, "ordinary sampling");
  EXPECT_NEAR(rows[2].relative_error, 1.0 / std::sqrt(mz), 1e-12);
  EXPECT_DOUBLE_EQ(rows[2].memory_accesses, 1.0 / 16.0);
}

TEST(Table1, OurAlgorithmsScaleBetterThanSampling) {
  // The central claim: error ~ 1/M for ours vs 1/sqrt(M) for sampling.
  Table1Params small;
  small.memory_entries = 1'000;
  Table1Params large;
  large.memory_entries = 100'000;

  const auto rs = table1(small);
  const auto rl = table1(large);
  // 100x memory: our error shrinks 100x, sampling only 10x.
  EXPECT_NEAR(rs[0].relative_error / rl[0].relative_error, 100.0, 1e-6);
  EXPECT_NEAR(rs[2].relative_error / rl[2].relative_error, 10.0, 1e-6);
}

TEST(Table1, SamplingBeatenAtRealisticMemory) {
  // For Mz >= ~10 both new algorithms are strictly more accurate.
  Table1Params params;
  params.memory_entries = 10'000;
  params.flow_fraction = 0.01;
  const auto rows = table1(params);
  EXPECT_LT(rows[0].relative_error, rows[2].relative_error);
  EXPECT_LT(rows[1].relative_error, rows[2].relative_error);
}

TEST(Table2, RowsMatchFormulas) {
  Table2Params params;
  params.oversampling = 4.0;
  params.flow_fraction = 0.001;
  params.threshold_ratio = 5.0;
  params.interval_seconds = 5.0;
  params.flows = 100'000;
  params.long_lived_fraction = 0.7;
  const auto rows = table2(params);
  ASSERT_EQ(rows.size(), 3u);

  // Sample and hold.
  EXPECT_DOUBLE_EQ(rows[0].exact_measurement_fraction, 0.7);
  EXPECT_NEAR(rows[0].relative_error, 1.41 / 4.0, 1e-12);
  EXPECT_NEAR(rows[0].memory_bound_entries, 2.0 * 4.0 / 0.001, 1e-9);
  EXPECT_DOUBLE_EQ(rows[0].memory_accesses, 1.0);

  // Multistage filters.
  EXPECT_DOUBLE_EQ(rows[1].exact_measurement_fraction, 0.7);
  EXPECT_NEAR(rows[1].relative_error, 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(rows[1].memory_bound_entries, 2000.0 + 5000.0, 1e-9);
  EXPECT_DOUBLE_EQ(rows[1].memory_accesses, 6.0);

  // Sampled NetFlow.
  EXPECT_DOUBLE_EQ(rows[2].exact_measurement_fraction, 0.0);
  EXPECT_NEAR(rows[2].relative_error, 0.0088 / std::sqrt(0.001 * 5.0),
              1e-12);
  EXPECT_DOUBLE_EQ(rows[2].memory_bound_entries, 100'000.0);
  EXPECT_DOUBLE_EQ(rows[2].memory_accesses, 1.0 / 16.0);
}

TEST(Table2, NetFlowMemoryCappedByAccessRate) {
  Table2Params params;
  params.flows = 10'000'000;  // more flows than DRAM lookups in t
  params.interval_seconds = 1.0;
  const auto rows = table2(params);
  EXPECT_DOUBLE_EQ(rows[2].memory_bound_entries, 486'000.0);
}

TEST(Table2, NetFlowErrorImprovesWithInterval) {
  Table2Params fast;
  fast.interval_seconds = 1.0;
  Table2Params slow;
  slow.interval_seconds = 100.0;
  EXPECT_GT(table2(fast)[2].relative_error,
            table2(slow)[2].relative_error);
}

TEST(Table2, OurDevicesMoreAccurateAtSmallIntervals) {
  // Section 5.2's conclusion: for small t our devices win — because O
  // and u can be raised by adding SRAM, while NetFlow's error is pinned
  // by the DRAM/SRAM speed ratio. With t = 5 s, z = 0.001, O = 20 and
  // u = 10 (both modest SRAM budgets):
  Table2Params params;
  params.oversampling = 20.0;
  params.threshold_ratio = 10.0;
  const auto rows = table2(params);
  EXPECT_LT(rows[0].relative_error, rows[2].relative_error);
  EXPECT_LT(rows[1].relative_error, rows[2].relative_error);
}

TEST(Table2, NetFlowErrorFloorIndependentOfMemory) {
  // Our devices reduce error by adding memory (O, u); NetFlow's formula
  // has no memory term at all — its floor depends only on z and t.
  Table2Params a;
  a.oversampling = 4.0;
  Table2Params b;
  b.oversampling = 400.0;
  EXPECT_DOUBLE_EQ(table2(a)[2].relative_error,
                   table2(b)[2].relative_error);
  EXPECT_LT(table2(b)[0].relative_error, table2(a)[0].relative_error);
}

TEST(NetFlowMinimumDivisor, DramSramRatio) {
  // "x must at least be as large as the ratio of DRAM speed (~60 ns) to
  // SRAM speed (~5 ns)."
  EXPECT_DOUBLE_EQ(netflow_minimum_divisor(), 12.0);
  EXPECT_DOUBLE_EQ(netflow_minimum_divisor(100.0, 10.0), 10.0);
}

}  // namespace
}  // namespace nd::analysis
