#include "analysis/dimensioning.hpp"

#include <gtest/gtest.h>

#include "eval/driver.hpp"
#include "trace/presets.hpp"

namespace nd::analysis {
namespace {

DimensioningInput paper_input() {
  DimensioningInput input;
  input.total_entries = 4096;
  input.expected_flows = 100'000;
  input.traffic_per_interval = 256'000'000;
  return input;
}

TEST(Dimensioning, SampleAndHoldUsesWholeBudget) {
  const auto config = dimension_sample_and_hold(paper_input());
  EXPECT_EQ(config.flow_memory_entries, 4096u);
  EXPECT_GT(config.threshold, 0u);
  EXPECT_EQ(config.preserve, flowmem::PreservePolicy::kEarlyRemoval);
}

TEST(Dimensioning, InitialThresholdMatchesUsageFormula) {
  const auto input = paper_input();
  // 2*O*C / (0.9*M) = 2*4*256e6 / (0.9*4096) ~ 555,555.
  EXPECT_NEAR(static_cast<double>(initial_threshold(input, 4096, 4.0)),
              2.0 * 4.0 * 256e6 / (0.9 * 4096), 2.0);
}

TEST(Dimensioning, MultistagePaperLikeSplit) {
  const auto config = dimension_multistage(paper_input());
  // Section 7.2's 5-tuple configuration: 2,539 entries + 4 x 3,114
  // counters out of 4,096. Our heuristic should land in the same
  // region.
  EXPECT_EQ(config.depth, 4u);
  EXPECT_NEAR(static_cast<double>(config.flow_memory_entries), 2539.0,
              600.0);
  EXPECT_NEAR(static_cast<double>(config.buckets_per_stage), 3114.0,
              700.0);
  EXPECT_TRUE(config.conservative_update);
  EXPECT_TRUE(config.shielding);
}

TEST(Dimensioning, BudgetAccountingAddsUp) {
  const auto input = paper_input();
  const auto config = dimension_multistage(input);
  const double spent =
      static_cast<double>(config.flow_memory_entries) +
      static_cast<double>(config.buckets_per_stage) * config.depth *
          input.counter_cost_ratio;
  EXPECT_LE(spent, static_cast<double>(input.total_entries) * 1.02);
  EXPECT_GE(spent, static_cast<double>(input.total_entries) * 0.9);
}

TEST(Dimensioning, StageCountFollowsFlowScale) {
  auto input = paper_input();
  input.max_stages = 8;
  input.expected_flows = 100'000;
  EXPECT_EQ(dimension_multistage(input).depth, 4u);
  input.expected_flows = 1'000'000;
  EXPECT_EQ(dimension_multistage(input).depth, 5u);
  input.expected_flows = 100;
  EXPECT_EQ(dimension_multistage(input).depth, 2u);  // floor
}

TEST(Dimensioning, MaxStagesClamps) {
  auto input = paper_input();
  input.expected_flows = 1e9;
  input.max_stages = 4;
  EXPECT_EQ(dimension_multistage(input).depth, 4u);
}

TEST(Dimensioning, MoreMemoryLowersThreshold) {
  auto small = paper_input();
  small.total_entries = 1024;
  auto large = paper_input();
  large.total_entries = 16'384;
  EXPECT_GT(dimension_sample_and_hold(small).threshold,
            dimension_sample_and_hold(large).threshold);
}

TEST(Dimensioning, DimensionedDevicesWorkEndToEnd) {
  // The heuristics must produce devices whose adaptors settle without
  // overflowing on the matching trace.
  auto config = trace::scaled(trace::Presets::mag(), 0.04);
  config.num_intervals = 8;

  DimensioningInput input;
  input.total_entries = 512;
  input.expected_flows = config.flow_count;
  input.traffic_per_interval = config.bytes_per_interval;

  auto sh_config = dimension_sample_and_hold(input);
  sh_config.seed = 3;
  core::SampleAndHold sh(sh_config);
  eval::DriverOptions options;
  options.warmup_intervals = 4;
  const auto result = eval::run_single(
      sh, config, packet::FlowDefinition::five_tuple(), options);
  EXPECT_LE(result.max_entries_used, input.total_entries);
  EXPECT_GT(result.entries_used.value(), 0.0);

  auto msf_config = dimension_multistage(input);
  msf_config.seed = 4;
  core::MultistageFilter msf(msf_config);
  const auto msf_result = eval::run_single(
      msf, config, packet::FlowDefinition::five_tuple(), options);
  EXPECT_LE(msf_result.max_entries_used, msf_config.flow_memory_entries);
  EXPECT_DOUBLE_EQ(msf_result.false_negative_fraction.value(), 0.0);
}

}  // namespace
}  // namespace nd::analysis
