#include "analysis/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nd::analysis {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(normal_cdf(2.33), 0.99010, 1e-4);
}

TEST(NormalQuantile, PaperQuantiles) {
  // Section 4.1.2: "with probability 99% the actual number will be at
  // most 2.33 standard deviations above the expected value; with
  // probability 99.9% at most 3.08".
  EXPECT_NEAR(normal_quantile(0.99), 2.3263, 1e-3);
  EXPECT_NEAR(normal_quantile(0.999), 3.0902, 1e-3);
}

TEST(NormalQuantile, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << p;
  }
}

TEST(NormalQuantile, Symmetry) {
  EXPECT_NEAR(normal_quantile(0.25), -normal_quantile(0.75), 1e-9);
}

TEST(NormalQuantile, EdgeCases) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_GT(normal_quantile(1.0), 0.0);
}

TEST(PoissonTail, KnownValues) {
  // P[Poisson(1) > 0] = 1 - e^-1.
  EXPECT_NEAR(poisson_tail(1.0, 0.0), 1.0 - std::exp(-1.0), 1e-9);
  // P[Poisson(2) > 2] = 1 - e^-2 (1 + 2 + 2) = 1 - 5 e^-2.
  EXPECT_NEAR(poisson_tail(2.0, 2.0), 1.0 - 5.0 * std::exp(-2.0), 1e-9);
}

TEST(PoissonTail, DegenerateMean) {
  EXPECT_DOUBLE_EQ(poisson_tail(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_tail(-1.0, 5.0), 0.0);
}

TEST(PoissonTail, MonotoneDecreasingInK) {
  double last = 1.0;
  for (double k = 0; k < 30; k += 1.0) {
    const double tail = poisson_tail(10.0, k);
    EXPECT_LE(tail, last + 1e-12);
    last = tail;
  }
}

TEST(PoissonTail, LargeMeanStaysFinite) {
  const double tail = poisson_tail(120.0, 185.0);
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 1e-6);  // far in the upper tail
}

}  // namespace
}  // namespace nd::analysis
