// Pins the Section 4.1 worked examples: a 100 Mbyte/s link, T = 1% of
// capacity (1 MB), oversampling 20.
#include "analysis/sample_hold_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nd::analysis {
namespace {

SampleHoldParams paper_example() {
  SampleHoldParams params;
  params.oversampling = 20.0;
  params.threshold = 1'000'000;
  params.capacity = 100'000'000;
  return params;
}

TEST(SampleHoldBounds, SamplingProbabilityIsOneIn50000) {
  // "p must be 1 in 50,000 bytes for an oversampling of 20."
  EXPECT_NEAR(byte_sampling_probability(paper_example()), 1.0 / 50'000,
              1e-12);
}

TEST(SampleHoldBounds, MissProbabilityAtThreshold) {
  // "An oversampling factor of 20 results in a probability of missing
  // flows at the threshold of 2 * 10^-9."
  const double miss = miss_probability(paper_example(), 1'000'000);
  EXPECT_NEAR(miss, std::exp(-20.0), std::exp(-20.0) * 0.01);
  EXPECT_LT(miss, 2.1e-9);
  EXPECT_GT(miss, 1.9e-9);
}

TEST(SampleHoldBounds, FlowIn5PercentDetected) {
  // "the probability that flow F is in the flow memory after sending 5%
  // of its traffic is 1 - e^-5 > 99%" — i.e. the probability NO byte of
  // the first 50,000 is sampled is e^-1... (T=1MB flow, 5% = 50 KB,
  // p = 1/50,000 -> miss = e^-1). The paper phrases it with oversampling
  // 100; rerun with those numbers.
  SampleHoldParams params;
  params.oversampling = 100.0;
  params.threshold = 1'000'000;
  params.capacity = 1'000'000'000;
  const double miss_after_5pct = miss_probability(params, 50'000);
  EXPECT_NEAR(miss_after_5pct, std::exp(-5.0), 1e-4);
  EXPECT_LT(miss_after_5pct, 0.01);
}

TEST(SampleHoldBounds, RelativeErrorSevenPercent) {
  // "with an oversampling factor O of 20, the relative error for a flow
  // at the threshold is 7%" (sqrt(2-p)/O).
  EXPECT_NEAR(relative_error_at_threshold(paper_example()), 0.0707, 0.0005);
}

TEST(SampleHoldBounds, ExpectedUndercountIsInverseP) {
  EXPECT_NEAR(expected_undercount(paper_example()), 50'000.0, 1e-6);
}

TEST(SampleHoldBounds, ExpectedEntries2000) {
  // "Using an oversampling of 20 requires 2,000 entries on average."
  EXPECT_NEAR(expected_entries(paper_example()), 2'000.0, 1e-9);
}

TEST(SampleHoldBounds, HighProbabilityBoundNear2147) {
  // "For an oversampling of 20 and an overflow probability of 0.1% we
  // need at most 2,147 entries." Our normal-curve version gives ~2,138;
  // accept the small difference in quantile convention.
  const double bound = entries_bound(paper_example(), 0.001);
  EXPECT_GT(bound, 2'100.0);
  EXPECT_LT(bound, 2'160.0);
}

TEST(SampleHoldBounds, PreservedBoundNear4207) {
  // Section 4.1.3: "the flow memory has to have at most 4,207 entries to
  // preserve entries."
  const double bound = entries_bound_preserved(paper_example(), 0.001);
  EXPECT_GT(bound, 4'150.0);
  EXPECT_LT(bound, 4'260.0);
}

TEST(SampleHoldBounds, EarlyRemovalBoundNear2647) {
  // Section 4.1.4: R = 0.2 T with overflow probability 0.1% requires
  // 2,647 memory entries.
  const double bound =
      entries_bound_early_removal(paper_example(), 200'000, 0.001);
  EXPECT_GT(bound, 2'590.0);
  EXPECT_LT(bound, 2'700.0);
}

TEST(SampleHoldBounds, EarlyRemovalRaisesMissProbability) {
  // "an early removal threshold of R = 0.2T increases the probability of
  // missing a large flow from 2e-9 to 1.1e-7 with an oversampling of 20."
  const double miss =
      miss_probability_early_removal(paper_example(), 200'000);
  EXPECT_NEAR(miss, std::exp(-16.0), std::exp(-16.0) * 0.01);
  EXPECT_GT(miss, 1.0e-7);
  EXPECT_LT(miss, 1.2e-7);
}

TEST(SampleHoldBounds, ProbabilityCappedAtOne) {
  SampleHoldParams params;
  params.oversampling = 10.0;
  params.threshold = 5;
  EXPECT_DOUBLE_EQ(byte_sampling_probability(params), 1.0);
  EXPECT_DOUBLE_EQ(miss_probability(params, 100), 0.0);
}

TEST(SampleHoldBounds, ErrorDeviationFormula) {
  const double p = byte_sampling_probability(paper_example());
  EXPECT_NEAR(error_deviation(paper_example()), std::sqrt(2.0 - p) / p,
              1e-6);
}

class OversamplingSweep : public ::testing::TestWithParam<double> {};

TEST_P(OversamplingSweep, ErrorInverseInO) {
  SampleHoldParams params = paper_example();
  params.oversampling = GetParam();
  // relative error ~ sqrt(2)/O.
  EXPECT_NEAR(relative_error_at_threshold(params),
              std::sqrt(2.0) / GetParam(), 0.01 / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Os, OversamplingSweep,
                         ::testing::Values(1.0, 4.0, 10.0, 20.0, 100.0));

}  // namespace
}  // namespace nd::analysis
