// Monte-Carlo validation that the paper's closed forms are genuine
// upper bounds (and that the exact expectations match simulation).
#include "analysis/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "analysis/zipf_bounds.hpp"

namespace nd::analysis {
namespace {

TEST(MonteCarloLemma1, BoundHoldsOnAdversarialMix) {
  // The mix that makes Lemma 1 nearly tight: many flows of size T-s
  // (Section 4.2 notes the bound is "almost exact" for it).
  MultistageParams params;
  params.buckets = 100;
  params.depth = 2;
  params.capacity = 10'000'000;
  params.threshold = 1'000'000;
  const common::ByteCount s = 100'000;

  // floor((C - s)/(T - s)) flows of size T-s.
  const std::size_t count =
      static_cast<std::size_t>((params.capacity - s) /
                               (params.threshold - s));
  const std::vector<common::ByteCount> background(
      count, params.threshold - s);

  const auto sim =
      simulate_pass_probability(params, s, background, 20'000, 7);
  const double bound = pass_probability_bound(params, s);
  EXPECT_LE(sim.estimate, bound + 3.0 * sim.standard_error);
  // And nearly tight: simulation within a small factor of the bound.
  EXPECT_GT(sim.estimate, bound / 4.0);
}

TEST(MonteCarloLemma1, BoundVeryLooseOnZipfMix) {
  // Section 7.1.2: "for realistic traffic mixes this is a very
  // conservative bound."
  MultistageParams params;
  params.buckets = 500;
  params.depth = 3;
  params.capacity = 20'000'000;
  params.threshold = 400'000;
  const auto background = zipf_flow_sizes(5'000, 1.0, 20'000'000);

  const common::ByteCount s = 40'000;
  const auto sim =
      simulate_pass_probability(params, s, background, 5'000, 11);
  const double bound = pass_probability_bound(params, s);
  EXPECT_LE(sim.estimate, bound + 3.0 * sim.standard_error);
  EXPECT_LT(sim.estimate, bound / 2.0);  // visibly loose
}

TEST(MonteCarloTheorem3, ExpectedPassingBelowBound) {
  MultistageParams params;
  params.buckets = 200;
  params.depth = 3;
  params.flows = 2'000;
  params.capacity = 20'000'000;
  params.threshold = 1'000'000;  // k = 10
  const auto sizes = zipf_flow_sizes(2'000, 1.0, 20'000'000);

  const auto sim = simulate_flows_passing(params, sizes, 300, 13);
  const double bound = expected_flows_passing(params);
  EXPECT_LE(sim.estimate, bound + 3.0 * sim.standard_error);
}

TEST(MonteCarloTheorem3, DeeperFiltersPassFewer) {
  MultistageParams params;
  params.buckets = 200;
  params.flows = 2'000;
  params.capacity = 20'000'000;
  params.threshold = 500'000;
  const auto sizes = zipf_flow_sizes(2'000, 1.0, 20'000'000);

  params.depth = 1;
  const auto one = simulate_flows_passing(params, sizes, 200, 17);
  params.depth = 3;
  const auto three = simulate_flows_passing(params, sizes, 200, 17);
  EXPECT_LT(three.estimate, one.estimate);
}

TEST(MonteCarloSampleHold, UndercountMatchesInverseP) {
  // E[s - c] = 1/p for flows much larger than 1/p; packetization only
  // helps (the sampled packet's leading bytes are counted), so the
  // simulated mean sits at or below 1/p.
  SampleHoldParams params;
  params.oversampling = 20.0;
  params.threshold = 1'000'000;  // p = 2e-5, 1/p = 50 KB
  const auto sim = simulate_sample_hold_undercount(
      params, 2'000'000, 1'000, 20'000, 19);
  const double expected = expected_undercount(params);
  EXPECT_LT(sim.estimate, expected);
  EXPECT_GT(sim.estimate, expected * 0.9);
  EXPECT_LT(sim.standard_error, expected * 0.02);
}

TEST(MonteCarloSampleHold, SmallPacketsApproachByteModel) {
  // With 40-byte packets the packetization bonus shrinks toward the
  // pure byte model's 1/p.
  SampleHoldParams params;
  params.oversampling = 10.0;
  params.threshold = 100'000;  // 1/p = 10 KB
  const auto coarse = simulate_sample_hold_undercount(
      params, 500'000, 1'500, 20'000, 23);
  const auto fine = simulate_sample_hold_undercount(
      params, 500'000, 40, 20'000, 23);
  EXPECT_LT(coarse.estimate, fine.estimate);
  EXPECT_NEAR(fine.estimate, expected_undercount(params),
              expected_undercount(params) * 0.05);
}

TEST(MonteCarloSampleHold, MissProbabilityMatchesClosedForm) {
  SampleHoldParams params;
  params.oversampling = 2.0;  // e^-2 ~ 13.5%: measurable in few trials
  params.threshold = 100'000;
  const auto sim =
      simulate_miss_probability(params, 100'000, 500, 50'000, 29);
  const double expected = miss_probability(params, 100'000);
  EXPECT_NEAR(sim.estimate, expected, 4.0 * sim.standard_error + 1e-4);
}

TEST(MonteCarloSampleHold, LargerFlowsMissedLess) {
  SampleHoldParams params;
  params.oversampling = 1.0;
  params.threshold = 100'000;
  const auto at_threshold =
      simulate_miss_probability(params, 100'000, 500, 20'000, 31);
  const auto triple =
      simulate_miss_probability(params, 300'000, 500, 20'000, 31);
  EXPECT_LT(triple.estimate, at_threshold.estimate / 2.0);
}

TEST(MonteCarloResultShape, ErrorsShrinkWithTrials) {
  SampleHoldParams params;
  params.oversampling = 5.0;
  params.threshold = 100'000;
  const auto few =
      simulate_miss_probability(params, 100'000, 500, 1'000, 37);
  const auto many =
      simulate_miss_probability(params, 100'000, 500, 100'000, 37);
  EXPECT_LT(many.standard_error, few.standard_error);
  EXPECT_EQ(many.trials, 100'000u);
}

}  // namespace
}  // namespace nd::analysis
