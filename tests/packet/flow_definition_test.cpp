#include "packet/flow_definition.hpp"

#include <gtest/gtest.h>

namespace nd::packet {
namespace {

PacketRecord tcp_packet() {
  PacketRecord p;
  p.src_ip = 0x0A000001;
  p.dst_ip = 0x0A000102;
  p.src_port = 1234;
  p.dst_port = 80;
  p.protocol = IpProtocol::kTcp;
  p.size_bytes = 500;
  return p;
}

TEST(FlowDefinition, FiveTupleExtractsAllFields) {
  const auto def = FlowDefinition::five_tuple();
  const auto key = def.classify(tcp_packet());
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->kind(), FlowKeyKind::kFiveTuple);
  EXPECT_EQ(key->src_ip(), 0x0A000001u);
  EXPECT_EQ(key->dst_ip(), 0x0A000102u);
  EXPECT_EQ(key->src_port(), 1234);
  EXPECT_EQ(key->dst_port(), 80);
}

TEST(FlowDefinition, DestinationIpIgnoresPorts) {
  const auto def = FlowDefinition::destination_ip();
  auto p1 = tcp_packet();
  auto p2 = tcp_packet();
  p2.src_port = 999;
  p2.src_ip = 0x0B000001;
  const auto k1 = def.classify(p1);
  const auto k2 = def.classify(p2);
  ASSERT_TRUE(k1 && k2);
  EXPECT_EQ(*k1, *k2);  // same destination => same flow
}

TEST(FlowDefinition, PatternFiltersProtocol) {
  // The paper's DoS example: focus on TCP packets only.
  PacketPattern tcp_only;
  tcp_only.protocol = IpProtocol::kTcp;
  const auto def = FlowDefinition::destination_ip(tcp_only);

  auto packet = tcp_packet();
  EXPECT_TRUE(def.classify(packet).has_value());
  packet.protocol = IpProtocol::kUdp;
  EXPECT_FALSE(def.classify(packet).has_value());
}

TEST(FlowDefinition, PatternFiltersDstPort) {
  PacketPattern web;
  web.dst_port = 80;
  const auto def = FlowDefinition::five_tuple(web);
  auto packet = tcp_packet();
  EXPECT_TRUE(def.classify(packet).has_value());
  packet.dst_port = 443;
  EXPECT_FALSE(def.classify(packet).has_value());
}

TEST(FlowDefinition, AsPairUsesResolver) {
  common::Rng rng(1);
  const auto resolver = AsResolver::synthetic(10, rng, 64512, 3);
  const auto def = FlowDefinition::as_pair(resolver);

  auto packet = tcp_packet();
  packet.src_ip = (10u << 24) | (0 << 8) | 1;   // AS 1000
  packet.dst_ip = (10u << 24) | (4 << 8) | 1;   // AS 1001
  const auto key = def.classify(packet);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->kind(), FlowKeyKind::kAsPair);
  EXPECT_EQ(key->src_as(), 1000u);
  EXPECT_EQ(key->dst_as(), 1001u);
}

TEST(FlowDefinition, AsPairUnresolvableFails) {
  AsResolver resolver;  // no routes at all
  const auto def = FlowDefinition::as_pair(resolver);
  EXPECT_FALSE(def.classify(tcp_packet()).has_value());
}

TEST(FlowDefinition, NetworkPairMasksAddresses) {
  const auto def = FlowDefinition::network_pair(24);
  auto p1 = tcp_packet();            // 10.0.0.1 -> 10.0.1.2
  auto p2 = tcp_packet();
  p2.src_ip = 0x0A0000FF;            // same /24s, different hosts
  p2.dst_ip = 0x0A000101;
  const auto k1 = def.classify(p1);
  const auto k2 = def.classify(p2);
  ASSERT_TRUE(k1 && k2);
  EXPECT_EQ(*k1, *k2);
  EXPECT_EQ(k1->src_network(), 0x0A000000u);
  EXPECT_EQ(k1->dst_network(), 0x0A000100u);
}

TEST(FlowDefinition, NetworkPairDifferentNetworksDiffer) {
  const auto def = FlowDefinition::network_pair(24);
  auto p1 = tcp_packet();
  auto p2 = tcp_packet();
  p2.dst_ip = 0x0A000201;  // different destination /24
  ASSERT_TRUE(def.classify(p1) && def.classify(p2));
  EXPECT_FALSE(*def.classify(p1) == *def.classify(p2));
}

TEST(FlowDefinition, NetworkPairPrefixZeroCollapsesEverything) {
  const auto def = FlowDefinition::network_pair(0);
  auto p1 = tcp_packet();
  auto p2 = tcp_packet();
  p2.src_ip = 0x01020304;
  p2.dst_ip = 0xFFFFFFFE;
  EXPECT_EQ(*def.classify(p1), *def.classify(p2));
}

TEST(FlowDefinition, NetworkPairPrefixClampedTo32) {
  const auto def = FlowDefinition::network_pair(64);
  const auto key = def.classify(tcp_packet());
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->prefix_len(), 32);
  EXPECT_EQ(key->src_network(), tcp_packet().src_ip);
}

TEST(FlowDefinition, SameEndpointsDifferentDefinitionsDiffer) {
  common::Rng rng(2);
  const auto resolver = AsResolver::synthetic(10, rng);
  const auto packet = tcp_packet();
  const auto k5 = FlowDefinition::five_tuple().classify(packet);
  const auto kd = FlowDefinition::destination_ip().classify(packet);
  ASSERT_TRUE(k5 && kd);
  EXPECT_FALSE(*k5 == *kd);
}

}  // namespace
}  // namespace nd::packet
