#include "packet/flow_key.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace nd::packet {
namespace {

TEST(FlowKey, FiveTupleEquality) {
  const auto a = FlowKey::five_tuple(1, 2, 3, 4, IpProtocol::kTcp);
  const auto b = FlowKey::five_tuple(1, 2, 3, 4, IpProtocol::kTcp);
  const auto c = FlowKey::five_tuple(1, 2, 3, 5, IpProtocol::kTcp);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FlowKey, ProtocolDistinguishes) {
  const auto tcp = FlowKey::five_tuple(1, 2, 3, 4, IpProtocol::kTcp);
  const auto udp = FlowKey::five_tuple(1, 2, 3, 4, IpProtocol::kUdp);
  EXPECT_FALSE(tcp == udp);
  EXPECT_NE(tcp.fingerprint(), udp.fingerprint());
}

TEST(FlowKey, KindDistinguishesSameFields) {
  // A dst-IP key and an AS-pair key with identical numeric fields must
  // not collide.
  const auto dst = FlowKey::destination_ip(42);
  const auto as = FlowKey::as_pair(0, 42);
  EXPECT_FALSE(dst == as);
  EXPECT_NE(dst.fingerprint(), as.fingerprint());
}

TEST(FlowKey, FingerprintDeterministic) {
  const auto a = FlowKey::five_tuple(10, 20, 30, 40, IpProtocol::kUdp);
  const auto b = FlowKey::five_tuple(10, 20, 30, 40, IpProtocol::kUdp);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(FlowKey, FingerprintsCollisionFree) {
  // 100k random-ish distinct keys should produce distinct fingerprints.
  std::unordered_set<std::uint64_t> fingerprints;
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    fingerprints.insert(FlowKey::five_tuple(i, i * 7 + 1,
                                            static_cast<std::uint16_t>(i),
                                            static_cast<std::uint16_t>(i >> 3),
                                            IpProtocol::kTcp)
                            .fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), 100'000u);
}

TEST(FlowKey, AccessorsRoundTrip) {
  const auto key =
      FlowKey::five_tuple(0x0A000001, 0x0A000002, 1234, 80, IpProtocol::kTcp);
  EXPECT_EQ(key.src_ip(), 0x0A000001u);
  EXPECT_EQ(key.dst_ip(), 0x0A000002u);
  EXPECT_EQ(key.src_port(), 1234);
  EXPECT_EQ(key.dst_port(), 80);
  EXPECT_EQ(key.protocol(), IpProtocol::kTcp);
  EXPECT_EQ(key.kind(), FlowKeyKind::kFiveTuple);
}

TEST(FlowKey, AsPairAccessors) {
  const auto key = FlowKey::as_pair(64512, 1000);
  EXPECT_EQ(key.src_as(), 64512u);
  EXPECT_EQ(key.dst_as(), 1000u);
  EXPECT_EQ(key.kind(), FlowKeyKind::kAsPair);
}

TEST(FlowKey, ToStringRenders) {
  const auto five =
      FlowKey::five_tuple(0x0A000001, 0x0A000002, 1234, 80, IpProtocol::kTcp);
  EXPECT_EQ(five.to_string(), "10.0.0.1:1234 -> 10.0.0.2:80 tcp");
  EXPECT_EQ(FlowKey::destination_ip(0x0A0000FF).to_string(),
            "dst 10.0.0.255");
  EXPECT_EQ(FlowKey::as_pair(1, 2).to_string(), "AS1 -> AS2");
}

TEST(FlowKey, KindNames) {
  EXPECT_STREQ(to_string(FlowKeyKind::kFiveTuple), "5-tuple");
  EXPECT_STREQ(to_string(FlowKeyKind::kDestinationIp), "destination IP");
  EXPECT_STREQ(to_string(FlowKeyKind::kAsPair), "AS pair");
}

TEST(FlowKey, NetworkPairAccessors) {
  const auto key = FlowKey::network_pair(0x0A010200, 0x0A020300, 24);
  EXPECT_EQ(key.kind(), FlowKeyKind::kNetworkPair);
  EXPECT_EQ(key.src_network(), 0x0A010200u);
  EXPECT_EQ(key.dst_network(), 0x0A020300u);
  EXPECT_EQ(key.prefix_len(), 24);
  EXPECT_EQ(key.to_string(), "10.1.2.0/24 -> 10.2.3.0/24");
  EXPECT_STREQ(to_string(FlowKeyKind::kNetworkPair), "network pair");
}

TEST(FlowKey, NetworkPairPrefixLenDistinguishes) {
  const auto a = FlowKey::network_pair(0x0A000000, 0x0B000000, 8);
  const auto b = FlowKey::network_pair(0x0A000000, 0x0B000000, 16);
  EXPECT_FALSE(a == b);
}

TEST(FlowKeyHasher, UsableInUnorderedContainers) {
  std::unordered_set<FlowKey, FlowKeyHasher> set;
  set.insert(FlowKey::destination_ip(1));
  set.insert(FlowKey::destination_ip(1));
  set.insert(FlowKey::destination_ip(2));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace nd::packet
