#include "packet/as_resolver.hpp"

#include <gtest/gtest.h>

namespace nd::packet {
namespace {

TEST(AsResolver, EmptyHasNoAnswer) {
  AsResolver resolver;
  EXPECT_FALSE(resolver.resolve(0x0A000001).has_value());
}

TEST(AsResolver, DefaultRouteCatchesAll) {
  AsResolver resolver;
  resolver.add_route(PrefixRoute{0, 0, 64512});
  EXPECT_EQ(resolver.resolve(0x01020304).value(), 64512u);
  EXPECT_EQ(resolver.resolve(0xFFFFFFFF).value(), 64512u);
}

TEST(AsResolver, LongestPrefixWins) {
  AsResolver resolver;
  resolver.add_route(PrefixRoute{0, 0, 1});                    // /0
  resolver.add_route(PrefixRoute{0x0A000000, 8, 2});           // 10/8
  resolver.add_route(PrefixRoute{0x0A010000, 16, 3});          // 10.1/16
  resolver.add_route(PrefixRoute{0x0A010200, 24, 4});          // 10.1.2/24

  EXPECT_EQ(resolver.resolve(0x0B000001).value(), 1u);   // only default
  EXPECT_EQ(resolver.resolve(0x0A630001).value(), 2u);   // 10.99.0.1
  EXPECT_EQ(resolver.resolve(0x0A010001).value(), 3u);   // 10.1.0.1
  EXPECT_EQ(resolver.resolve(0x0A010203).value(), 4u);   // 10.1.2.3
}

TEST(AsResolver, ExactDuplicateOverwrites) {
  AsResolver resolver;
  resolver.add_route(PrefixRoute{0x0A000000, 8, 7});
  resolver.add_route(PrefixRoute{0x0A000000, 8, 9});
  EXPECT_EQ(resolver.resolve(0x0A123456).value(), 9u);
  EXPECT_EQ(resolver.route_count(), 1u);
}

TEST(AsResolver, HostRouteMatchesOnlyItself) {
  AsResolver resolver;
  resolver.add_route(PrefixRoute{0x0A000001, 32, 5});
  EXPECT_EQ(resolver.resolve(0x0A000001).value(), 5u);
  EXPECT_FALSE(resolver.resolve(0x0A000002).has_value());
}

TEST(AsResolver, RouteCountTracksInserts) {
  AsResolver resolver;
  EXPECT_EQ(resolver.route_count(), 0u);
  resolver.add_route(PrefixRoute{0, 0, 1});
  resolver.add_route(PrefixRoute{0x0A000000, 8, 2});
  EXPECT_EQ(resolver.route_count(), 2u);
}

TEST(AsResolver, SyntheticCoversWholeSpace) {
  common::Rng rng(1);
  const auto resolver = AsResolver::synthetic(50, rng, 64512, 4);
  // Any address resolves thanks to the default route.
  EXPECT_TRUE(resolver.resolve(0xC0A80101).has_value());
  // Addresses inside the dealt 10/8 space resolve to synthetic ASes.
  const auto as = resolver.resolve(0x0A000001);
  ASSERT_TRUE(as.has_value());
  EXPECT_GE(*as, 1000u);
  EXPECT_LT(*as, 1050u);
}

TEST(AsResolver, SyntheticDealsConsecutiveRuns) {
  common::Rng rng(2);
  const auto resolver = AsResolver::synthetic(10, rng, 64512, 3);
  // /24 index k belongs to AS 1000 + k/3.
  EXPECT_EQ(resolver.resolve((10u << 24) | (0 << 8) | 1).value(), 1000u);
  EXPECT_EQ(resolver.resolve((10u << 24) | (2 << 8) | 1).value(), 1000u);
  EXPECT_EQ(resolver.resolve((10u << 24) | (3 << 8) | 1).value(), 1001u);
  EXPECT_EQ(resolver.resolve((10u << 24) | (29 << 8) | 1).value(), 1009u);
  // Past the dealt space: default AS.
  EXPECT_EQ(resolver.resolve((10u << 24) | (30 << 8) | 1).value(), 64512u);
}

TEST(AsResolver, SyntheticSlash24CountCapped) {
  EXPECT_EQ(AsResolver::synthetic_slash24_count(10, 3), 30u);
  EXPECT_EQ(AsResolver::synthetic_slash24_count(1'000'000, 1000), 65'536u);
  EXPECT_EQ(AsResolver::synthetic_slash24_count(5, 0), 5u);  // min 1 each
}

TEST(AsResolver, MoveSemantics) {
  common::Rng rng(3);
  AsResolver a = AsResolver::synthetic(5, rng, 64512, 2);
  const AsResolver b = std::move(a);
  EXPECT_TRUE(b.resolve(0x0A000001).has_value());
}

}  // namespace
}  // namespace nd::packet
