#include "packet/headers.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nd::packet {
namespace {

TEST(Checksum, Rfc1071KnownVector) {
  // Classic example from RFC 1071 discussions:
  // 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> data = {0x01};
  // Sum = 0x0100, checksum = ~0x0100.
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0x0100));
}

TEST(Checksum, AllZerosIsAllOnes) {
  const std::vector<std::uint8_t> data(20, 0);
  EXPECT_EQ(internet_checksum(data), 0xFFFF);
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.total_length = 1500;
  h.identification = 0xBEEF;
  h.ttl = 17;
  h.protocol = static_cast<std::uint8_t>(IpProtocol::kUdp);
  h.src_ip = 0x0A000001;
  h.dst_ip = 0x0A630405;

  std::vector<std::uint8_t> bytes;
  serialize(h, bytes);
  ASSERT_EQ(bytes.size(), 20u);

  const auto parsed = parse_ipv4(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_length, 1500);
  EXPECT_EQ(parsed->identification, 0xBEEF);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->protocol, static_cast<std::uint8_t>(IpProtocol::kUdp));
  EXPECT_EQ(parsed->src_ip, 0x0A000001u);
  EXPECT_EQ(parsed->dst_ip, 0x0A630405u);
}

TEST(Ipv4Header, SerializedChecksumValidates) {
  Ipv4Header h;
  h.total_length = 100;
  h.src_ip = 1;
  h.dst_ip = 2;
  std::vector<std::uint8_t> bytes;
  serialize(h, bytes);
  // Checksum over a header including its checksum field must be 0.
  EXPECT_EQ(internet_checksum(bytes), 0);
}

TEST(Ipv4Header, RejectsTruncated) {
  const std::vector<std::uint8_t> bytes(19, 0);
  EXPECT_FALSE(parse_ipv4(bytes).has_value());
}

TEST(Ipv4Header, RejectsNonV4) {
  std::vector<std::uint8_t> bytes(20, 0);
  bytes[0] = 0x65;  // version 6
  EXPECT_FALSE(parse_ipv4(bytes).has_value());
}

TEST(Ipv4Header, RejectsBadIhl) {
  std::vector<std::uint8_t> bytes(20, 0);
  bytes[0] = 0x42;  // version 4, ihl 2 (< 5)
  EXPECT_FALSE(parse_ipv4(bytes).has_value());
}

TEST(TcpHeader, SerializeParseRoundTrip) {
  TcpHeader h;
  h.src_port = 443;
  h.dst_port = 51234;
  h.seq = 0xDEADBEEF;
  h.ack = 0x01020304;
  h.flags = 0x18;  // PSH|ACK
  std::vector<std::uint8_t> bytes;
  serialize(h, bytes);
  ASSERT_EQ(bytes.size(), 20u);
  const auto parsed = parse_tcp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 443);
  EXPECT_EQ(parsed->dst_port, 51234);
  EXPECT_EQ(parsed->seq, 0xDEADBEEFu);
  EXPECT_EQ(parsed->ack, 0x01020304u);
  EXPECT_EQ(parsed->flags, 0x18);
}

TEST(UdpHeader, SerializeParseRoundTrip) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 5353;
  h.length = 120;
  std::vector<std::uint8_t> bytes;
  serialize(h, bytes);
  ASSERT_EQ(bytes.size(), 8u);
  const auto parsed = parse_udp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->dst_port, 5353);
  EXPECT_EQ(parsed->length, 120);
}

TEST(Ethernet, SerializeParseRoundTrip) {
  EthernetHeader h;
  h.src_mac = {1, 2, 3, 4, 5, 6};
  h.dst_mac = {7, 8, 9, 10, 11, 12};
  std::vector<std::uint8_t> bytes;
  serialize(h, bytes);
  ASSERT_EQ(bytes.size(), kEthernetHeaderSize);
  const auto parsed = parse_ethernet(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_mac, h.src_mac);
  EXPECT_EQ(parsed->dst_mac, h.dst_mac);
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
}

PacketRecord sample_record(IpProtocol protocol, std::uint32_t size) {
  PacketRecord r;
  r.timestamp_ns = 123'456'789;
  r.src_ip = 0x0A010203;
  r.dst_ip = 0x0AFF0102;
  r.src_port = 12345;
  r.dst_port = 80;
  r.protocol = protocol;
  r.size_bytes = size;
  return r;
}

TEST(Frame, BuildParseRoundTripTcp) {
  const auto record = sample_record(IpProtocol::kTcp, 1500);
  const auto frame = build_frame(record);
  EXPECT_EQ(frame.size(), kEthernetHeaderSize + 1500);
  const auto parsed = parse_frame(frame, record.timestamp_ns);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, record);
}

TEST(Frame, BuildParseRoundTripUdp) {
  const auto record = sample_record(IpProtocol::kUdp, 200);
  const auto parsed = parse_frame(build_frame(record), record.timestamp_ns);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, record);
}

TEST(Frame, RuntPacketClampedToHeaders) {
  // A 10-byte "packet" cannot hold IPv4+TCP headers; the frame builder
  // clamps to the minimum and the parsed size reflects the clamp.
  const auto record = sample_record(IpProtocol::kTcp, 10);
  const auto parsed = parse_frame(build_frame(record), record.timestamp_ns);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size_bytes, 40u);
}

TEST(Frame, TruncatedCaptureStillParsesViaIpLength) {
  // Snaplen-style truncation: only the first 60 bytes captured, but the
  // IP total length carries the true size.
  const auto record = sample_record(IpProtocol::kTcp, 1400);
  auto frame = build_frame(record);
  frame.resize(60);
  const auto parsed = parse_frame(frame, record.timestamp_ns);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size_bytes, 1400u);
}

TEST(Frame, NonIpv4Rejected) {
  const auto record = sample_record(IpProtocol::kTcp, 100);
  auto frame = build_frame(record);
  frame[12] = 0x86;  // EtherType IPv6
  frame[13] = 0xDD;
  EXPECT_FALSE(parse_frame(frame, 0).has_value());
}

TEST(Frame, TooShortRejected) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(parse_frame(tiny, 0).has_value());
}

}  // namespace
}  // namespace nd::packet
