#include "eval/metrics.hpp"

#include <gtest/gtest.h>

namespace nd::eval {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

core::Report make_report(
    std::initializer_list<std::pair<std::uint32_t, common::ByteCount>>
        flows) {
  core::Report report;
  for (const auto& [id, bytes] : flows) {
    report.flows.push_back(core::ReportedFlow{key(id), bytes, false});
  }
  return report;
}

TruthMap make_truth(
    std::initializer_list<std::pair<std::uint32_t, common::ByteCount>>
        flows) {
  TruthMap truth;
  for (const auto& [id, bytes] : flows) {
    truth[key(id)] = bytes;
  }
  return truth;
}

TEST(ThresholdMetrics, PerfectReport) {
  const auto truth = make_truth({{1, 2000}, {2, 500}});
  const auto report = make_report({{1, 2000}});
  const auto m = threshold_metrics(report, truth, 1000);
  EXPECT_EQ(m.true_large_flows, 1u);
  EXPECT_EQ(m.identified_large_flows, 1u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_DOUBLE_EQ(m.false_negative_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_error_large, 0.0);
}

TEST(ThresholdMetrics, MissedLargeFlowCountsFullSize) {
  const auto truth = make_truth({{1, 2000}, {2, 4000}});
  const auto report = make_report({{1, 1800}});
  const auto m = threshold_metrics(report, truth, 1000);
  EXPECT_EQ(m.true_large_flows, 2u);
  EXPECT_EQ(m.identified_large_flows, 1u);
  EXPECT_DOUBLE_EQ(m.false_negative_fraction(), 0.5);
  // Errors: |2000-1800| + 4000 (missed) over 2 flows.
  EXPECT_DOUBLE_EQ(m.avg_error_large, (200.0 + 4000.0) / 2.0);
  EXPECT_DOUBLE_EQ(m.avg_error_over_threshold, 2100.0 / 1000.0);
}

TEST(ThresholdMetrics, FalsePositivesCountedAgainstSmallFlows) {
  const auto truth = make_truth({{1, 5000}, {2, 10}, {3, 20}, {4, 30}});
  const auto report = make_report({{1, 5000}, {2, 10}, {9, 99}});
  const auto m = threshold_metrics(report, truth, 1000);
  // key(2) is a reported small flow; key(9) is not even in the truth
  // (treated as size 0, also a false positive).
  EXPECT_EQ(m.false_positives, 2u);
  EXPECT_NEAR(m.false_positive_percentage, 100.0 * 2.0 / 3.0, 1e-9);
}

TEST(ThresholdMetrics, EmptyTruth) {
  const auto m = threshold_metrics(make_report({}), TruthMap{}, 1000);
  EXPECT_EQ(m.true_large_flows, 0u);
  EXPECT_DOUBLE_EQ(m.false_negative_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.false_positive_percentage, 0.0);
}

TEST(ThresholdMetrics, OverestimateCountsAsError) {
  const auto truth = make_truth({{1, 2000}});
  const auto report = make_report({{1, 2600}});  // NetFlow-style overshoot
  const auto m = threshold_metrics(report, truth, 1000);
  EXPECT_DOUBLE_EQ(m.avg_error_large, 600.0);
}

TEST(PaperGroups, ThreeGroupsWithPaperBoundaries) {
  const auto groups = paper_groups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_DOUBLE_EQ(groups[0].lower_fraction, 0.001);
  EXPECT_DOUBLE_EQ(groups[1].lower_fraction, 0.0001);
  EXPECT_DOUBLE_EQ(groups[1].upper_fraction, 0.001);
  EXPECT_DOUBLE_EQ(groups[2].lower_fraction, 0.00001);
}

TEST(GroupAccuracy, ClassifiesByCapacityFraction) {
  // Capacity 1,000,000: groups are >1000, 100..1000, 10..100 bytes.
  GroupAccuracyAccumulator acc(paper_groups(), 1'000'000);
  const auto truth = make_truth({{1, 5000}, {2, 500}, {3, 50}});
  const auto report = make_report({{1, 4800}, {2, 400}});
  acc.observe(report, truth);
  const auto results = acc.results();
  ASSERT_EQ(results.size(), 3u);

  EXPECT_EQ(results[0].true_flows, 1u);
  EXPECT_DOUBLE_EQ(results[0].unidentified_fraction, 0.0);
  EXPECT_DOUBLE_EQ(results[0].relative_avg_error, 200.0 / 5000.0);

  EXPECT_EQ(results[1].true_flows, 1u);
  EXPECT_DOUBLE_EQ(results[1].relative_avg_error, 100.0 / 500.0);

  EXPECT_EQ(results[2].true_flows, 1u);
  EXPECT_DOUBLE_EQ(results[2].unidentified_fraction, 1.0);
  EXPECT_DOUBLE_EQ(results[2].relative_avg_error, 1.0);  // full size
}

TEST(GroupAccuracy, AggregatesAcrossIntervals) {
  GroupAccuracyAccumulator acc(paper_groups(), 1'000'000);
  acc.observe(make_report({{1, 5000}}), make_truth({{1, 5000}}));
  acc.observe(make_report({}), make_truth({{1, 5000}}));
  const auto results = acc.results();
  EXPECT_EQ(results[0].true_flows, 2u);
  EXPECT_EQ(results[0].unidentified_flows, 1u);
  EXPECT_DOUBLE_EQ(results[0].unidentified_fraction, 0.5);
  EXPECT_DOUBLE_EQ(results[0].relative_avg_error, 5000.0 / 10000.0);
}

TEST(GroupAccuracy, BoundariesAreHalfOpen) {
  GroupAccuracyAccumulator acc(paper_groups(), 1'000'000);
  // Exactly 0.1% of capacity = 1000 bytes: belongs to the TOP group
  // (lower bound inclusive).
  acc.observe(make_report({}), make_truth({{1, 1000}}));
  const auto results = acc.results();
  EXPECT_EQ(results[0].true_flows, 1u);
  EXPECT_EQ(results[1].true_flows, 0u);
}

TEST(GroupAccuracy, FlowsBelowAllGroupsIgnored) {
  GroupAccuracyAccumulator acc(paper_groups(), 1'000'000);
  acc.observe(make_report({}), make_truth({{1, 5}}));  // < 0.001%
  for (const auto& r : acc.results()) {
    EXPECT_EQ(r.true_flows, 0u);
  }
}

TEST(Mean, Accumulates) {
  Mean mean;
  EXPECT_DOUBLE_EQ(mean.value(), 0.0);
  mean.observe(1.0);
  mean.observe(3.0);
  EXPECT_DOUBLE_EQ(mean.value(), 2.0);
}

TEST(ShardUsage, SummarizesAnnotatedReport) {
  core::Report report;
  report.shards.push_back(core::ShardStatus{60'000, 54'000, 0.92, 118, 128});
  report.shards.push_back(core::ShardStatus{40'000, 40'000, 0.84, 107, 128});
  report.shards.push_back(core::ShardStatus{50'000, 55'000, 0.88, 112, 128});
  const ShardUsageSummary summary = summarize_shards(report);
  EXPECT_EQ(summary.shard_count, 3u);
  EXPECT_DOUBLE_EQ(summary.min_usage, 0.84);
  EXPECT_DOUBLE_EQ(summary.max_usage, 0.92);
  EXPECT_DOUBLE_EQ(summary.mean_usage, (0.92 + 0.84 + 0.88) / 3.0);
  EXPECT_EQ(summary.min_threshold, 40'000u);
  EXPECT_EQ(summary.max_threshold, 60'000u);
  EXPECT_TRUE(summary.within_band(0.80, 0.95));
  EXPECT_FALSE(summary.within_band(0.85, 0.95));
  EXPECT_FALSE(summary.within_band(0.80, 0.90));
}

TEST(ShardUsage, UnshardedReportYieldsEmptySummary) {
  const ShardUsageSummary summary = summarize_shards(core::Report{});
  EXPECT_EQ(summary.shard_count, 0u);
  EXPECT_FALSE(summary.within_band(0.0, 1.0));
}

}  // namespace
}  // namespace nd::eval
