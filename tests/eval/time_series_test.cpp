#include "eval/time_series.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/exact_oracle.hpp"
#include "eval/driver.hpp"
#include "trace/presets.hpp"

namespace nd::eval {
namespace {

TimePoint point(common::IntervalIndex i, common::ByteCount threshold) {
  TimePoint p;
  p.interval = i;
  p.threshold = threshold;
  p.entries_used = 10 * i;
  p.avg_error_over_threshold = 0.5;
  return p;
}

TEST(TimeSeries, CsvHasHeaderAndRows) {
  TimeSeries series("device-a");
  series.record(point(0, 1000));
  series.record(point(1, 2000));
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("interval,threshold,entries_used"),
            std::string::npos);
  EXPECT_NE(csv.find("0,1000,0,"), std::string::npos);
  EXPECT_NE(csv.find("1,2000,10,"), std::string::npos);
  // header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(TimeSeries, LongCsvCombinesSeries) {
  TimeSeries a("a");
  a.record(point(0, 1));
  TimeSeries b("b");
  b.record(point(0, 2));
  const std::string csv = to_long_csv({a, b});
  EXPECT_NE(csv.find("label,interval"), std::string::npos);
  EXPECT_NE(csv.find("a,0,1,"), std::string::npos);
  EXPECT_NE(csv.find("b,0,2,"), std::string::npos);
}

TEST(TimeSeries, DriverRecordsWhenEnabled) {
  baseline::ExactOracle oracle;
  auto config = trace::scaled(trace::Presets::cos(), 0.1);
  config.num_intervals = 4;
  DriverOptions options;
  options.metric_threshold = 10'000;
  options.record_time_series = true;
  options.warmup_intervals = 1;
  const auto result = run_single(oracle, config,
                                 packet::FlowDefinition::five_tuple(),
                                 options);
  ASSERT_EQ(result.time_series.size(), 3u);  // 4 intervals - 1 warmup
  EXPECT_EQ(result.time_series[0].interval, 1u);
  for (const auto& p : result.time_series) {
    EXPECT_GT(p.entries_used, 0u);
    EXPECT_DOUBLE_EQ(p.false_negative_fraction, 0.0);  // oracle
  }
}

TEST(TimeSeries, DriverSkipsWhenDisabled) {
  baseline::ExactOracle oracle;
  auto config = trace::scaled(trace::Presets::cos(), 0.1);
  config.num_intervals = 2;
  const auto result = run_single(oracle, config,
                                 packet::FlowDefinition::five_tuple(),
                                 DriverOptions{});
  EXPECT_TRUE(result.time_series.empty());
}

}  // namespace
}  // namespace nd::eval
