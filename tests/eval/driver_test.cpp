#include "eval/driver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baseline/exact_oracle.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "core/sharded_device.hpp"
#include "trace/presets.hpp"

namespace nd::eval {
namespace {

trace::TraceConfig tiny_trace(std::uint64_t seed = 3) {
  auto config = trace::scaled(trace::Presets::cos(), 0.2);
  config.num_intervals = 5;
  config.seed = seed;
  return config;
}

TEST(Driver, OracleHasZeroError) {
  baseline::ExactOracle oracle;
  DriverOptions options;
  options.metric_threshold = 10'000;
  const auto result = run_single(oracle, tiny_trace(),
                                 packet::FlowDefinition::five_tuple(),
                                 options);
  EXPECT_DOUBLE_EQ(result.false_negative_fraction.value(), 0.0);
  EXPECT_DOUBLE_EQ(result.avg_error_over_threshold.value(), 0.0);
  EXPECT_GT(result.packets, 0u);
}

TEST(Driver, WarmupIntervalsExcluded) {
  baseline::ExactOracle oracle;
  DriverOptions options;
  options.metric_threshold = 10'000;
  options.warmup_intervals = 3;
  const auto result = run_single(oracle, tiny_trace(),
                                 packet::FlowDefinition::five_tuple(),
                                 options);
  // 5 intervals minus 3 warmup = 2 evaluated.
  EXPECT_EQ(result.entries_used.count, 2u);
}

TEST(Driver, MultipleDevicesSeeSamePackets) {
  baseline::ExactOracle a;
  baseline::ExactOracle b;
  Driver driver(packet::FlowDefinition::five_tuple(), DriverOptions{});
  driver.add_device("a", a);
  driver.add_device("b", b);
  trace::TraceSynthesizer synth(tiny_trace());
  driver.run(synth);
  const auto results = driver.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].packets, results[1].packets);
  EXPECT_EQ(results[0].label, "a");
}

TEST(Driver, GroupMetricsProducedWhenConfigured) {
  baseline::ExactOracle oracle;
  const auto config = tiny_trace();
  DriverOptions options;
  options.link_capacity = config.link_capacity_per_interval;
  options.groups = paper_groups();
  const auto result = run_single(oracle, config,
                                 packet::FlowDefinition::five_tuple(),
                                 options);
  ASSERT_EQ(result.groups.size(), 3u);
  // The oracle identifies everything with zero error.
  for (const auto& group : result.groups) {
    EXPECT_DOUBLE_EQ(group.unidentified_fraction, 0.0);
    EXPECT_DOUBLE_EQ(group.relative_avg_error, 0.0);
  }
  EXPECT_GT(result.groups[0].true_flows + result.groups[1].true_flows +
                result.groups[2].true_flows,
            0u);
}

TEST(Driver, DeviceThresholdUsedWhenMetricThresholdZero) {
  core::SampleAndHoldConfig config;
  config.threshold = 50'000;
  config.oversampling = 20;
  config.flow_memory_entries = 5000;
  core::SampleAndHold device(config);

  DriverOptions options;  // metric_threshold = 0 => device threshold
  const auto result = run_single(device, tiny_trace(),
                                 packet::FlowDefinition::five_tuple(),
                                 options);
  EXPECT_EQ(result.final_threshold, 50'000u);
}

TEST(Driver, TracksMaxEntries) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 64;
  config.threshold = 1;  // everything passes: memory fills instantly
  config.depth = 1;
  config.buckets_per_stage = 8;
  core::MultistageFilter device(config);
  const auto result = run_single(device, tiny_trace(),
                                 packet::FlowDefinition::five_tuple(),
                                 DriverOptions{});
  EXPECT_EQ(result.max_entries_used, 64u);
}

TEST(Driver, ShardTableRendersPerShardColumnsWithImbalance) {
  core::ShardedDeviceConfig config;
  config.shards = 2;
  core::ShardedDevice device(
      config, [](std::uint32_t, std::uint64_t seed) {
        core::MultistageFilterConfig inner;
        inner.flow_memory_entries = 64;
        inner.depth = 2;
        inner.buckets_per_stage = 64;
        inner.threshold = 20'000;
        inner.seed = seed;
        return std::make_unique<core::MultistageFilter>(inner);
      });
  DriverOptions options;
  options.metric_threshold = 10'000;
  const auto result = run_single(device, tiny_trace(),
                                 packet::FlowDefinition::five_tuple(),
                                 options);
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_GT(result.shards[0].packets + result.shards[1].packets, 0u);
  const std::string table = shard_table(result);
  EXPECT_NE(table.find("Shard"), std::string::npos);
  EXPECT_NE(table.find("load imbalance"), std::string::npos);

  // Devices without ShardStatus annotations render nothing.
  baseline::ExactOracle oracle;
  EXPECT_TRUE(shard_table(run_single(oracle, tiny_trace(),
                                     packet::FlowDefinition::five_tuple(),
                                     options))
                  .empty());
}

TEST(Driver, AsPairDefinitionWorksEndToEnd) {
  const auto config = tiny_trace();
  trace::TraceSynthesizer synth(config);
  baseline::ExactOracle oracle;
  DriverOptions options;
  options.metric_threshold = 10'000;
  Driver driver(packet::FlowDefinition::as_pair(synth.as_resolver()),
                options);
  driver.add_device("oracle", oracle);
  driver.run(synth);
  const auto results = driver.results();
  EXPECT_GT(results[0].packets, 0u);
  EXPECT_DOUBLE_EQ(results[0].false_negative_fraction.value(), 0.0);
}

}  // namespace
}  // namespace nd::eval
