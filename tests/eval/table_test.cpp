#include "eval/table.hpp"

#include <gtest/gtest.h>

namespace nd::eval {
namespace {

TEST(TextTable, RendersAligned) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "10000"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("|-------|-------|"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable table({"k", "v"});
  table.add_row({"x,y", "1"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\",1"), std::string::npos);
  EXPECT_EQ(csv.find('|'), std::string::npos);
}

TEST(TextTable, CsvHeaderFirst) {
  TextTable table({"h1", "h2"});
  table.add_row({"r1", "r2"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv.substr(0, 6), "h1,h2\n");
}

TEST(TextTable, EmptyTableStillRendersHeader) {
  TextTable table({"x"});
  EXPECT_NE(table.to_string().find("| x |"), std::string::npos);
}

}  // namespace
}  // namespace nd::eval
