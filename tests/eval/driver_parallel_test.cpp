// The parallel driver path (device fan-out + double-buffered synthesis)
// must be a pure throughput knob: results with a ThreadPool attached are
// bit-identical to the sequential driver.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "core/sharded_device.hpp"
#include "eval/driver.hpp"

namespace nd::eval {
namespace {

trace::TraceConfig small_trace() {
  trace::TraceConfig config;
  config.flow_count = 500;
  config.bytes_per_interval = 2'500'000;
  config.num_intervals = 4;
  config.seed = 31;
  return config;
}

/// Fresh devices + driver run over the trace; pool == nullptr gives the
/// sequential reference.
std::vector<DeviceResult> run_driver(common::ThreadPool* pool) {
  core::SampleAndHoldConfig sah;
  sah.flow_memory_entries = 256;
  sah.threshold = 30'000;
  sah.seed = 5;
  core::SampleAndHold sample_and_hold(sah);

  core::MultistageFilterConfig msf;
  msf.flow_memory_entries = 256;
  msf.depth = 3;
  msf.buckets_per_stage = 128;
  msf.threshold = 30'000;
  msf.seed = 5;
  core::MultistageFilter multistage(msf);

  core::MultistageFilterConfig serial = msf;
  serial.serial = true;
  core::MultistageFilter serial_multistage(serial);

  DriverOptions options;
  options.metric_threshold = 30'000;
  options.record_time_series = true;
  options.pool = pool;
  Driver driver(packet::FlowDefinition::five_tuple(), options);
  driver.add_device("sah", sample_and_hold);
  driver.add_device("msf", multistage);
  driver.add_device("serial", serial_multistage);

  trace::TraceSynthesizer synthesizer(small_trace());
  driver.run(synthesizer);
  return driver.results();
}

void expect_results_equal(const std::vector<DeviceResult>& a,
                          const std::vector<DeviceResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].packets, b[i].packets);
    EXPECT_EQ(a[i].memory_accesses, b[i].memory_accesses);
    EXPECT_EQ(a[i].max_entries_used, b[i].max_entries_used);
    EXPECT_EQ(a[i].final_threshold, b[i].final_threshold);
    // Means must match exactly, not approximately: the parallel path may
    // not change accumulation order within a device.
    EXPECT_EQ(a[i].false_negative_fraction.value(),
              b[i].false_negative_fraction.value());
    EXPECT_EQ(a[i].false_positive_percentage.value(),
              b[i].false_positive_percentage.value());
    EXPECT_EQ(a[i].avg_error_over_threshold.value(),
              b[i].avg_error_over_threshold.value());
    EXPECT_EQ(a[i].entries_used.value(), b[i].entries_used.value());
    ASSERT_EQ(a[i].time_series.size(), b[i].time_series.size());
    for (std::size_t t = 0; t < a[i].time_series.size(); ++t) {
      EXPECT_EQ(a[i].time_series[t].entries_used,
                b[i].time_series[t].entries_used);
      EXPECT_EQ(a[i].time_series[t].threshold, b[i].time_series[t].threshold);
    }
  }
}

TEST(DriverParallel, PoolProducesIdenticalResults) {
  const auto sequential = run_driver(nullptr);
  common::ThreadPool pool(3);
  const auto parallel = run_driver(&pool);
  expect_results_equal(sequential, parallel);
}

TEST(DriverParallel, SingleWorkerPoolProducesIdenticalResults) {
  // Degenerate pool: double buffering still engages, fan-out still takes
  // the parallel code path with one worker.
  const auto sequential = run_driver(nullptr);
  common::ThreadPool pool(1);
  const auto parallel = run_driver(&pool);
  expect_results_equal(sequential, parallel);
}

TEST(DriverParallel, RepeatedParallelRunsAreDeterministic) {
  common::ThreadPool pool(4);
  const auto first = run_driver(&pool);
  const auto second = run_driver(&pool);
  expect_results_equal(first, second);
}

TEST(DriverParallel, ShardedDeviceUnderParallelDriver) {
  // The full pipeline: sharded device inside the parallel driver, both
  // sharing one pool — results still bit-identical to the serial run.
  auto factory = [](std::uint32_t, std::uint64_t seed) {
    core::MultistageFilterConfig config;
    config.flow_memory_entries = 64;
    config.depth = 3;
    config.buckets_per_stage = 64;
    config.threshold = 30'000;
    config.seed = seed;
    return std::make_unique<core::MultistageFilter>(config);
  };
  auto run = [&factory](common::ThreadPool* pool) {
    core::ShardedDeviceConfig config;
    config.shards = 4;
    config.seed = 8;
    config.pool = pool;
    core::ShardedDevice sharded(config, factory);
    DriverOptions options;
    options.metric_threshold = 30'000;
    options.pool = pool;
    Driver driver(packet::FlowDefinition::five_tuple(), options);
    driver.add_device("sharded", sharded);
    trace::TraceSynthesizer synthesizer(small_trace());
    driver.run(synthesizer);
    return driver.results();
  };
  const auto serial = run(nullptr);
  common::ThreadPool pool(4);
  const auto parallel = run(&pool);
  expect_results_equal(serial, parallel);
}

TEST(DriverParallel, ObserveIntervalMatchesRunPath) {
  // Hand-feeding intervals through observe_interval must agree with
  // run(): run() is just observe_interval plus double buffering.
  auto make_device = [] {
    core::SampleAndHoldConfig config;
    config.flow_memory_entries = 256;
    config.threshold = 30'000;
    config.seed = 7;
    return std::make_unique<core::SampleAndHold>(config);
  };
  auto by_hand = make_device();
  DriverOptions options;
  options.metric_threshold = 30'000;
  Driver manual(packet::FlowDefinition::five_tuple(), options);
  manual.add_device("sah", *by_hand);
  trace::TraceSynthesizer synthesizer(small_trace());
  for (;;) {
    const auto packets = synthesizer.next_interval();
    if (packets.empty()) break;
    manual.observe_interval(packets);
  }

  auto by_run = make_device();
  Driver automatic(packet::FlowDefinition::five_tuple(), options);
  automatic.add_device("sah", *by_run);
  trace::TraceSynthesizer synthesizer2(small_trace());
  automatic.run(synthesizer2);

  expect_results_equal(manual.results(), automatic.results());
}

}  // namespace
}  // namespace nd::eval
