#include "baseline/ordinary_sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_and_hold.hpp"

namespace nd::baseline {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

void feed(core::MeasurementDevice& device, const packet::FlowKey& k,
          common::ByteCount total, std::uint32_t packet_size = 1000) {
  while (total > 0) {
    const auto size = static_cast<std::uint32_t>(
        std::min<common::ByteCount>(packet_size, total));
    device.observe(k, size);
    total -= size;
  }
}

TEST(OrdinarySampling, EstimateRoughlyUnbiased) {
  OrdinarySamplingConfig config;
  config.byte_sampling_probability = 1e-3;
  double sum = 0.0;
  constexpr int kRuns = 200;
  constexpr common::ByteCount kTruth = 1'000'000;
  for (int run = 0; run < kRuns; ++run) {
    config.seed = static_cast<std::uint64_t>(run) + 1;
    OrdinarySampling device(config);
    feed(device, key(1), kTruth);
    const auto report = device.end_interval();
    const auto* flow = core::find_flow(report, key(1));
    sum += flow ? static_cast<double>(flow->estimated_bytes) : 0.0;
  }
  EXPECT_NEAR(sum / kRuns, static_cast<double>(kTruth), kTruth * 0.05);
}

TEST(OrdinarySampling, RespectsMemoryBound) {
  OrdinarySamplingConfig config;
  config.flow_memory_entries = 8;
  config.byte_sampling_probability = 1.0;  // sample everything
  OrdinarySampling device(config);
  for (std::uint32_t f = 0; f < 100; ++f) {
    device.observe(key(f), 1000);
  }
  const auto report = device.end_interval();
  EXPECT_EQ(report.flows.size(), 8u);
}

TEST(OrdinarySampling, WorseThanSampleAndHoldAtEqualMemory) {
  // The paper's core quantitative claim (Table 1): with the same memory
  // budget, sample and hold's error ~ 1/M beats sampling's ~ 1/sqrt(M).
  // Measure RMS relative error of a 1 MB flow in 10 MB of traffic with
  // matched expected memory.
  constexpr common::ByteCount kCapacity = 10'000'000;
  constexpr common::ByteCount kFlow = 1'000'000;
  constexpr double kMemory = 500.0;  // expected entries
  const double p = kMemory / static_cast<double>(kCapacity);

  double sh_sq = 0.0;
  double os_sq = 0.0;
  constexpr int kRuns = 150;
  for (int run = 0; run < kRuns; ++run) {
    const auto seed = static_cast<std::uint64_t>(run) * 7 + 1;

    core::SampleAndHoldConfig sh_config;
    sh_config.flow_memory_entries = 4 * static_cast<std::size_t>(kMemory);
    // p = O/T: choose T = kFlow and O = p * kFlow.
    sh_config.threshold = kFlow;
    sh_config.oversampling = p * static_cast<double>(kFlow);
    sh_config.seed = seed;
    core::SampleAndHold sh(sh_config);

    OrdinarySamplingConfig os_config;
    os_config.flow_memory_entries = 4 * static_cast<std::size_t>(kMemory);
    os_config.byte_sampling_probability = p;
    os_config.seed = seed;
    OrdinarySampling os(os_config);

    // The large flow plus background traffic.
    feed(sh, key(1), kFlow);
    feed(os, key(1), kFlow);
    for (std::uint32_t f = 2; f < 2 + 9'000; ++f) {
      sh.observe(key(f), 1000);
      os.observe(key(f), 1000);
    }

    const auto shr = sh.end_interval();
    const auto osr = os.end_interval();
    const auto* shf = core::find_flow(shr, key(1));
    const auto* osf = core::find_flow(osr, key(1));
    const double sh_err =
        (static_cast<double>(kFlow) -
         (shf ? static_cast<double>(shf->estimated_bytes) : 0.0)) /
        static_cast<double>(kFlow);
    const double os_err =
        (static_cast<double>(kFlow) -
         (osf ? static_cast<double>(osf->estimated_bytes) : 0.0)) /
        static_cast<double>(kFlow);
    sh_sq += sh_err * sh_err;
    os_sq += os_err * os_err;
  }
  const double sh_rms = std::sqrt(sh_sq / kRuns);
  const double os_rms = std::sqrt(os_sq / kRuns);
  // Theory: sh ~ sqrt(2)/(Mz) = 0.028, sampling ~ 1/sqrt(Mz) = 0.14.
  EXPECT_LT(sh_rms, os_rms / 2.0);
}

TEST(OrdinarySampling, MultipleSamplesPerPacketCounted) {
  OrdinarySamplingConfig config;
  config.byte_sampling_probability = 0.5;
  config.seed = 3;
  OrdinarySampling device(config);
  device.observe(key(1), 10'000);
  const auto report = device.end_interval();
  const auto* flow = core::find_flow(report, key(1));
  ASSERT_NE(flow, nullptr);
  // ~5000 sampled bytes scaled by 2 => ~10'000.
  EXPECT_NEAR(static_cast<double>(flow->estimated_bytes), 10'000.0, 600.0);
}

TEST(OrdinarySampling, NameAndCounters) {
  OrdinarySamplingConfig config;
  OrdinarySampling device(config);
  EXPECT_EQ(device.name(), "ordinary-sampling");
  device.observe(key(1), 100);
  EXPECT_EQ(device.packets_processed(), 1u);
}

TEST(OrdinarySampling, IntervalClearsState) {
  OrdinarySamplingConfig config;
  config.byte_sampling_probability = 1.0;
  OrdinarySampling device(config);
  device.observe(key(1), 100);
  (void)device.end_interval();
  const auto second = device.end_interval();
  EXPECT_TRUE(second.flows.empty());
}

}  // namespace
}  // namespace nd::baseline
