#include "baseline/sampled_netflow.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nd::baseline {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

TEST(SampledNetFlow, DeterministicSamplesEveryXth) {
  SampledNetFlowConfig config;
  config.sampling_divisor = 4;
  config.deterministic = true;
  SampledNetFlow device(config);
  for (int i = 0; i < 16; ++i) {
    device.observe(key(1), 100);
  }
  const auto report = device.end_interval();
  ASSERT_EQ(report.flows.size(), 1u);
  // 4 of 16 packets sampled, each 100 bytes, scaled by 4 = 1600.
  EXPECT_EQ(report.flows[0].estimated_bytes, 1600u);
}

TEST(SampledNetFlow, EstimateUnbiasedOverRuns) {
  SampledNetFlowConfig config;
  config.sampling_divisor = 16;
  double sum = 0.0;
  constexpr int kRuns = 300;
  constexpr std::uint64_t kTruth = 100 * 1000;  // 100 packets x 1000 B
  for (int run = 0; run < kRuns; ++run) {
    config.seed = static_cast<std::uint64_t>(run) + 1;
    SampledNetFlow device(config);
    for (int i = 0; i < 100; ++i) {
      device.observe(key(1), 1000);
    }
    const auto report = device.end_interval();
    if (!report.flows.empty()) {
      sum += static_cast<double>(report.flows[0].estimated_bytes);
    }
  }
  EXPECT_NEAR(sum / kRuns, static_cast<double>(kTruth), kTruth * 0.10);
}

TEST(SampledNetFlow, CanOverestimate) {
  // Unlike sample and hold, NetFlow estimates are not lower bounds —
  // the paper's argument against using it for billing. Find a seed
  // where the estimate exceeds the truth.
  bool overestimated = false;
  for (std::uint64_t seed = 1; seed <= 50 && !overestimated; ++seed) {
    SampledNetFlowConfig config;
    config.sampling_divisor = 16;
    config.seed = seed;
    SampledNetFlow device(config);
    for (int i = 0; i < 64; ++i) {
      device.observe(key(1), 1000);
    }
    const auto report = device.end_interval();
    if (!report.flows.empty() &&
        report.flows[0].estimated_bytes > 64'000) {
      overestimated = true;
    }
  }
  EXPECT_TRUE(overestimated);
}

TEST(SampledNetFlow, SmallFlowsOftenMissed) {
  // 1-packet flows survive only with probability 1/16.
  SampledNetFlowConfig config;
  config.sampling_divisor = 16;
  config.seed = 99;
  SampledNetFlow device(config);
  for (std::uint32_t f = 0; f < 1600; ++f) {
    device.observe(key(f), 40);
  }
  const auto report = device.end_interval();
  EXPECT_NEAR(static_cast<double>(report.flows.size()), 100.0, 40.0);
}

TEST(SampledNetFlow, ReportClearsPerInterval) {
  SampledNetFlowConfig config;
  config.deterministic = true;
  config.sampling_divisor = 1;
  SampledNetFlow device(config);
  device.observe(key(1), 100);
  (void)device.end_interval();
  const auto second = device.end_interval();
  EXPECT_TRUE(second.flows.empty());
}

TEST(SampledNetFlow, DivisorOneIsExact) {
  SampledNetFlowConfig config;
  config.sampling_divisor = 1;
  SampledNetFlow device(config);
  for (int i = 0; i < 10; ++i) device.observe(key(1), 123);
  const auto report = device.end_interval();
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_EQ(report.flows[0].estimated_bytes, 1230u);
}

TEST(SampledNetFlow, UnboundedMemoryAndName) {
  SampledNetFlowConfig config;
  config.sampling_divisor = 16;
  SampledNetFlow device(config);
  EXPECT_EQ(device.flow_memory_capacity(), static_cast<std::size_t>(-1));
  EXPECT_EQ(device.name(), "sampled-netflow(1/16)");
  EXPECT_EQ(device.threshold(), 0u);
}

TEST(SampledNetFlow, DramAccessesOnlyForSampledPackets) {
  SampledNetFlowConfig config;
  config.sampling_divisor = 4;
  config.deterministic = true;
  SampledNetFlow device(config);
  for (int i = 0; i < 100; ++i) device.observe(key(1), 100);
  // 25 sampled packets -> 25 DRAM updates; the whole point of NetFlow's
  // sampling is < 1 memory access per packet.
  EXPECT_EQ(device.memory_accesses(), 25u);
  EXPECT_EQ(device.packets_processed(), 100u);
}

TEST(SampledNetFlow, HighWaterTracksEntries) {
  SampledNetFlowConfig config;
  config.sampling_divisor = 1;
  config.deterministic = true;
  SampledNetFlow device(config);
  for (std::uint32_t f = 0; f < 10; ++f) device.observe(key(f), 100);
  (void)device.end_interval();
  EXPECT_EQ(device.high_water_entries(), 10u);
}

}  // namespace
}  // namespace nd::baseline
