#include "baseline/smallest_counter_eviction.hpp"

#include <gtest/gtest.h>

namespace nd::baseline {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

TEST(SmallestCounterEviction, TracksWithinCapacity) {
  SmallestCounterEvictionConfig config;
  config.flow_memory_entries = 4;
  SmallestCounterEviction device(config);
  for (std::uint32_t f = 0; f < 4; ++f) {
    device.observe(key(f), 100 * (f + 1));
  }
  const auto report = device.end_interval();
  EXPECT_EQ(report.flows.size(), 4u);
  EXPECT_EQ(device.evictions(), 0u);
}

TEST(SmallestCounterEviction, EvictsTheMinimum) {
  SmallestCounterEvictionConfig config;
  config.flow_memory_entries = 2;
  SmallestCounterEviction device(config);
  device.observe(key(1), 1000);
  device.observe(key(2), 50);
  device.observe(key(3), 10);  // evicts key(2), the smallest
  const auto report = device.end_interval();
  EXPECT_NE(core::find_flow(report, key(1)), nullptr);
  EXPECT_EQ(core::find_flow(report, key(2)), nullptr);
  EXPECT_NE(core::find_flow(report, key(3)), nullptr);
  EXPECT_EQ(device.evictions(), 1u);
}

TEST(SmallestCounterEviction, UpdateMovesFlowUp) {
  SmallestCounterEvictionConfig config;
  config.flow_memory_entries = 2;
  SmallestCounterEviction device(config);
  device.observe(key(1), 100);
  device.observe(key(2), 100);
  device.observe(key(1), 500);  // key(1) now 600, key(2) is minimum
  device.observe(key(3), 10);
  const auto report = device.end_interval();
  EXPECT_NE(core::find_flow(report, key(1)), nullptr);
  EXPECT_EQ(core::find_flow(report, key(2)), nullptr);
}

TEST(SmallestCounterEviction, PaperCounterexampleStarvesElephant) {
  // Section 3's argument: "a large flow is not measured because it keeps
  // being expelled from the flow memory before its counter becomes large
  // enough". Interleave one elephant packet with a burst of fresh mice:
  // each elephant entry is the smallest when the mice arrive, so the
  // elephant is evicted over and over and its final count stays tiny
  // compared to its true traffic.
  SmallestCounterEvictionConfig config;
  config.flow_memory_entries = 8;
  SmallestCounterEviction device(config);

  const auto elephant = key(0xE1E000);  // outside the mouse id range
  common::ByteCount elephant_truth = 0;
  std::uint32_t mouse_id = 1;
  for (int round = 0; round < 1000; ++round) {
    device.observe(elephant, 40);
    elephant_truth += 40;
    // A burst of brand-new mice, each slightly bigger than the
    // elephant's fresh counter.
    for (int m = 0; m < 8; ++m) {
      device.observe(key(mouse_id++), 50);
    }
  }
  const auto report = device.end_interval();
  const auto* reported = core::find_flow(report, elephant);
  const common::ByteCount measured =
      reported ? reported->estimated_bytes : 0;
  // The elephant sent 40 KB but the strawman credits it a tiny sliver.
  EXPECT_EQ(elephant_truth, 40'000u);
  EXPECT_LT(measured, elephant_truth / 100);
  EXPECT_GT(device.evictions(), 900u);
}

TEST(SmallestCounterEviction, IntervalClears) {
  SmallestCounterEvictionConfig config;
  config.flow_memory_entries = 4;
  SmallestCounterEviction device(config);
  device.observe(key(1), 100);
  (void)device.end_interval();
  const auto second = device.end_interval();
  EXPECT_TRUE(second.flows.empty());
}

TEST(SmallestCounterEviction, NameAndCounters) {
  SmallestCounterEvictionConfig config;
  SmallestCounterEviction device(config);
  EXPECT_EQ(device.name(), "smallest-counter-eviction");
  device.observe(key(1), 10);
  EXPECT_EQ(device.packets_processed(), 1u);
  EXPECT_EQ(device.memory_accesses(), 1u);
}

}  // namespace
}  // namespace nd::baseline
