#include "baseline/exact_oracle.hpp"

#include <gtest/gtest.h>

namespace nd::baseline {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

TEST(ExactOracle, CountsExactly) {
  ExactOracle oracle;
  oracle.observe(key(1), 100);
  oracle.observe(key(1), 200);
  oracle.observe(key(2), 50);
  const auto report = oracle.end_interval();
  ASSERT_EQ(report.flows.size(), 2u);
  const auto* f1 = core::find_flow(report, key(1));
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->estimated_bytes, 300u);
  EXPECT_TRUE(f1->exact);
}

TEST(ExactOracle, CurrentSizesLiveView) {
  ExactOracle oracle;
  oracle.observe(key(7), 123);
  EXPECT_EQ(oracle.current_sizes().at(key(7)), 123u);
}

TEST(ExactOracle, IntervalsIndependent) {
  ExactOracle oracle;
  oracle.observe(key(1), 100);
  const auto first = oracle.end_interval();
  oracle.observe(key(1), 900);
  const auto second = oracle.end_interval();
  EXPECT_EQ(first.flows[0].estimated_bytes, 100u);
  EXPECT_EQ(second.flows[0].estimated_bytes, 900u);
  EXPECT_EQ(first.interval, 0u);
  EXPECT_EQ(second.interval, 1u);
}

TEST(ExactOracle, SortAndFindHelpers) {
  ExactOracle oracle;
  oracle.observe(key(1), 10);
  oracle.observe(key(2), 30);
  oracle.observe(key(3), 20);
  auto report = oracle.end_interval();
  core::sort_by_size(report);
  EXPECT_EQ(report.flows[0].estimated_bytes, 30u);
  EXPECT_EQ(report.flows[2].estimated_bytes, 10u);
  EXPECT_EQ(core::find_flow(report, key(9)), nullptr);
}

}  // namespace
}  // namespace nd::baseline
