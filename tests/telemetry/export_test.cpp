// Exporter round-trip tests: the JSON-lines format parses back to an
// identical snapshot (the property the record codec's v3 metrics
// trailer relies on), and the Prometheus rendering follows the
// exposition grammar with no duplicate series.
#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace nd::telemetry {
namespace {

/// A registry exercising every instrument kind, labels with characters
/// that need JSON/Prometheus escaping, and an empty histogram.
MetricsRegistry& populated_registry(MetricsRegistry& registry) {
  registry.counter("nd_device_packets_total", {{"shard", "0"}}).add(1234);
  registry.counter("nd_device_packets_total", {{"shard", "1"}}).add(56);
  registry.gauge("nd_flowmem_occupancy").set(0.913);
  registry.gauge("nd_device_threshold", {{"device", "s&h \"quoted\"\n"}})
      .set(50'000.0);
  Histogram& latency = registry.histogram("nd_pool_task_ns");
  latency.record(0);
  latency.record(700);
  latency.record(1500);
  (void)registry.histogram("nd_empty_ns");
  return registry;
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.interval, b.interval);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& x = a.samples[i];
    const auto& y = b.samples[i];
    EXPECT_EQ(x.name, y.name) << i;
    EXPECT_EQ(x.labels, y.labels) << i;
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.counter_value, y.counter_value) << i;
    EXPECT_DOUBLE_EQ(x.gauge_value, y.gauge_value) << i;
    EXPECT_EQ(x.histogram.count, y.histogram.count) << i;
    EXPECT_EQ(x.histogram.sum, y.histogram.sum) << i;
    EXPECT_EQ(x.histogram.buckets, y.histogram.buckets) << i;
  }
}

TEST(JsonLines, RoundTripsEveryKind) {
  MetricsRegistry registry;
  const Snapshot snapshot = populated_registry(registry).snapshot(4);
  const std::string line = to_json_line(snapshot);
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "escaped newlines must not break the one-line framing";
  expect_snapshots_equal(from_json_line(line), snapshot);
}

TEST(JsonLines, RoundTripsEmptySnapshot) {
  MetricsRegistry registry;
  const Snapshot snapshot = registry.snapshot(0);
  expect_snapshots_equal(from_json_line(to_json_line(snapshot)), snapshot);
}

TEST(JsonLines, ParserIsStrict) {
  MetricsRegistry registry;
  const std::string line =
      to_json_line(populated_registry(registry).snapshot(4));
  EXPECT_THROW((void)from_json_line(""), std::invalid_argument);
  EXPECT_THROW((void)from_json_line("not json"), std::invalid_argument);
  EXPECT_THROW((void)from_json_line("{}"), std::invalid_argument);
  EXPECT_THROW((void)from_json_line(line + "x"), std::invalid_argument);
  EXPECT_THROW((void)from_json_line(line.substr(0, line.size() - 1)),
               std::invalid_argument);
}

TEST(JsonLinesExporter, WritesOneLinePerSnapshot) {
  MetricsRegistry registry;
  registry.counter("nd_device_packets_total").add(7);
  std::ostringstream out;
  JsonLinesExporter exporter(out);
  const Snapshot first = exporter.write(registry, 1);
  registry.counter("nd_device_packets_total").add(3);
  (void)exporter.write(registry, 2);
  EXPECT_EQ(exporter.lines_written(), 2u);
  EXPECT_EQ(first.interval, 1u);

  std::istringstream in(out.str());
  std::string line;
  std::vector<Snapshot> parsed;
  while (std::getline(in, line)) {
    parsed.push_back(from_json_line(line));
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].find("nd_device_packets_total")->counter_value, 7u);
  EXPECT_EQ(parsed[1].find("nd_device_packets_total")->counter_value, 10u);
}

TEST(Prometheus, FollowsTheExpositionGrammar) {
  MetricsRegistry registry;
  const std::string text =
      to_prometheus(populated_registry(registry).snapshot(4));
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // One `# TYPE` per series name, emitted before any sample of that
  // name, and no sample line duplicated.
  std::set<std::string> typed_names;
  std::set<std::string> seen_lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank lines are not emitted";
    EXPECT_TRUE(seen_lines.insert(line).second) << "duplicate: " << line;
    if (line.starts_with("# TYPE ")) {
      const std::string rest = line.substr(7);
      const std::string name = rest.substr(0, rest.find(' '));
      EXPECT_TRUE(typed_names.insert(name).second)
          << "duplicate # TYPE for " << name;
      continue;
    }
    ASSERT_FALSE(line.starts_with("#")) << "unexpected comment: " << line;
    // Sample lines are `name{...} value` or `name value`; the name must
    // have been typed already (histograms sample under suffixed names).
    std::string name = line.substr(0, line.find_first_of("{ "));
    for (const std::string suffix : {"_bucket", "_sum", "_count"}) {
      if (name.ends_with(suffix) &&
          typed_names.count(name.substr(0, name.size() - suffix.size()))) {
        name = name.substr(0, name.size() - suffix.size());
        break;
      }
    }
    EXPECT_TRUE(typed_names.count(name)) << "untyped sample: " << line;
  }
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("nd_ns");
  histogram.record(1);    // bucket le="1"
  histogram.record(2);    // bucket le="3"
  histogram.record(3);    // bucket le="3"
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("nd_ns_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("nd_ns_bucket{le=\"3\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("nd_ns_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("nd_ns_sum 6"), std::string::npos) << text;
  EXPECT_NE(text.find("nd_ns_count 3"), std::string::npos) << text;
}

}  // namespace
}  // namespace nd::telemetry
