// MetricsRegistry unit tests: instrument semantics, series dedup by
// (name, labels), registration-time validation, and multi-writer
// safety of the relaxed hot path.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nd::telemetry {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(0.913);
  gauge.set(-2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.5);
}

TEST(Histogram, BucketsByBitWidth) {
  // Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  Histogram histogram;
  histogram.record(0);
  histogram.record(1);
  histogram.record(2);
  histogram.record(3);
  histogram.record(4);
  EXPECT_EQ(histogram.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(histogram.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(histogram.bucket_count(2), 2u);  // {2, 3}
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // {4..7}
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 10u);
}

TEST(Histogram, UpperBoundsCoverTheFullRange) {
  EXPECT_EQ(Histogram::upper_bound(0), 0u);
  EXPECT_EQ(Histogram::upper_bound(1), 1u);
  EXPECT_EQ(Histogram::upper_bound(2), 3u);
  EXPECT_EQ(Histogram::upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::upper_bound(64), ~std::uint64_t{0});
  // The largest value lands in the last bucket, not out of range.
  Histogram histogram;
  histogram.record(~std::uint64_t{0});
  EXPECT_EQ(histogram.bucket_count(Histogram::kBuckets - 1), 1u);
}

TEST(ScopedTimer, RecordsElapsedIntoHistogram) {
  Histogram histogram;
  { const ScopedTimer timer(&histogram); }
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(ScopedTimer, NullHistogramIsANoOp) {
  // The disabled path must not crash and must not touch a clock; all we
  // can assert from here is that it is well-formed.
  const ScopedTimer timer(nullptr);
}

TEST(MetricsRegistry, DeduplicatesByNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("nd_test_total", {{"shard", "0"}});
  Counter& b = registry.counter("nd_test_total", {{"shard", "0"}});
  Counter& c = registry.counter("nd_test_total", {{"shard", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.size(), 2u);
  // Replicas sharing a series share one atomic: per-shard aggregation.
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Counter& a =
      registry.counter("nd_test_total", {{"b", "2"}, {"a", "1"}});
  Counter& b =
      registry.counter("nd_test_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, RejectsInvalidNames) {
  MetricsRegistry registry;
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("0starts_with_digit"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW((void)registry.gauge("ok", {{"bad-label", "v"}}),
               std::invalid_argument);
  // The Prometheus grammar allows colons and underscores.
  EXPECT_NO_THROW((void)registry.counter("nd:sub_system:total"));
}

TEST(MetricsRegistry, RejectsKindMismatch) {
  MetricsRegistry registry;
  (void)registry.counter("nd_test_total");
  EXPECT_THROW((void)registry.gauge("nd_test_total"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("nd_test_total"),
               std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotIsOrderedAndSearchable) {
  MetricsRegistry registry;
  registry.counter("nd_b_total").add(2);
  registry.gauge("nd_a_gauge").set(1.5);
  registry.histogram("nd_c_ns").record(9);

  const Snapshot snapshot = registry.snapshot(12);
  EXPECT_EQ(snapshot.interval, 12u);
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "nd_a_gauge");
  EXPECT_EQ(snapshot.samples[1].name, "nd_b_total");
  EXPECT_EQ(snapshot.samples[2].name, "nd_c_ns");

  const Snapshot::Sample* counter = snapshot.find("nd_b_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, MetricKind::kCounter);
  EXPECT_EQ(counter->counter_value, 2u);
  const Snapshot::Sample* histogram = snapshot.find("nd_c_ns");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->histogram.count, 1u);
  EXPECT_EQ(histogram->histogram.sum, 9u);
  EXPECT_EQ(snapshot.find("nd_missing"), nullptr);
  EXPECT_EQ(snapshot.find("nd_b_total", {{"shard", "0"}}), nullptr);
}

TEST(MetricsRegistry, ConcurrentWritersNeverLoseIncrements) {
  // The hot-path contract: many threads hammering shared series through
  // relaxed atomics lose nothing. Run under ND_SANITIZE=thread this is
  // also the data-race check for the whole registry surface.
  MetricsRegistry registry;
  Counter& counter = registry.counter("nd_race_total");
  Histogram& histogram = registry.histogram("nd_race_ns");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.increment();
        histogram.record(i);
      }
    });
  }
  // Snapshot concurrently with the writers: must be torn-free.
  for (int i = 0; i < 50; ++i) {
    (void)registry.snapshot();
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace nd::telemetry
