// Pipeline instrumentation tests: the counters the devices export match
// observable device behavior, per-shard tallies agree with the
// ShardStatus annotations, interval-aligned snapshots land once per
// interval, and — the contract the differential suite depends on —
// telemetry never changes a single reported byte.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../support/report_testing.hpp"
#include "baseline/exact_oracle.hpp"
#include "common/thread_pool.hpp"
#include "core/measurement_session.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "core/sharded_device.hpp"
#include "eval/driver.hpp"
#include "eval/metrics.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "trace/presets.hpp"

namespace nd::telemetry {
namespace {

using nd::testing::classify_trace;
using nd::testing::expect_reports_equal;

trace::TraceConfig small_trace(std::uint64_t seed = 11) {
  trace::TraceConfig config;
  config.flow_count = 400;
  config.bytes_per_interval = 2'000'000;
  config.num_intervals = 4;
  config.seed = seed;
  return config;
}

core::SampleAndHoldConfig sah_config(MetricsRegistry* metrics = nullptr) {
  core::SampleAndHoldConfig config;
  config.flow_memory_entries = 256;
  config.threshold = 40'000;
  config.oversampling = 5.0;
  config.seed = 7;
  config.metrics = metrics;
  return config;
}

core::MultistageFilterConfig filter_config(
    MetricsRegistry* metrics = nullptr) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 128;
  config.depth = 3;
  config.buckets_per_stage = 64;
  config.threshold = 40'000;
  config.seed = 9;
  config.metrics = metrics;
  return config;
}

TEST(DeviceInstruments, SampleAndHoldCountersMatchBehavior) {
  MetricsRegistry registry;
  core::SampleAndHold device(sah_config(&registry));

  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  for (const auto& interval :
       classify_trace(small_trace(), packet::FlowDefinition::five_tuple())) {
    for (const auto& packet : interval) {
      device.observe(packet.key, packet.bytes);
      ++packets;
      bytes += packet.bytes;
    }
    (void)device.end_interval();
  }

  const Snapshot snapshot = registry.snapshot();
  const Labels device_label{{"device", "sample-and-hold"}};
  const auto* packet_sample =
      snapshot.find("nd_device_packets_total", device_label);
  ASSERT_NE(packet_sample, nullptr);
  EXPECT_EQ(packet_sample->counter_value, packets);
  EXPECT_EQ(snapshot.find("nd_device_bytes_total", device_label)
                ->counter_value,
            bytes);
  EXPECT_EQ(snapshot.find("nd_device_intervals_total", device_label)
                ->counter_value,
            4u);
  // The packet-size histogram saw every packet.
  EXPECT_EQ(snapshot.find("nd_device_packet_size_bytes", device_label)
                ->histogram.count,
            packets);
  EXPECT_EQ(snapshot.find("nd_device_packet_size_bytes", device_label)
                ->histogram.sum,
            bytes);
  // Every flow in flow memory got there via a counted insert, and the
  // occupancy gauge reflects the post-interval state.
  EXPECT_GT(snapshot.find("nd_flowmem_inserts_total", device_label)
                ->counter_value,
            0u);
  const double occupancy =
      snapshot.find("nd_flowmem_occupancy", device_label)->gauge_value;
  EXPECT_GE(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0);
  EXPECT_DOUBLE_EQ(
      snapshot.find("nd_device_threshold", device_label)->gauge_value,
      40'000.0);
}

TEST(DeviceInstruments, MultistageStagePassCountsAreMonotone) {
  MetricsRegistry registry;
  core::MultistageFilter device(filter_config(&registry));
  for (const auto& interval :
       classify_trace(small_trace(), packet::FlowDefinition::five_tuple())) {
    device.observe_batch(interval);
    (void)device.end_interval();
  }

  const Snapshot snapshot = registry.snapshot();
  // Parallel multistage: later stages only matter for packets that pass
  // earlier ones in the serial variant, but stage-pass events are
  // counted per stage here; every stage must have seen some passes and
  // the counters must exist for the configured depth only.
  std::uint64_t passes = 0;
  for (std::uint32_t d = 0; d < 3; ++d) {
    const auto* sample = snapshot.find(
        "nd_filter_stage_pass_total",
        {{"device", "multistage-filter"}, {"stage", std::to_string(d)}});
    ASSERT_NE(sample, nullptr) << "stage " << d;
    passes += sample->counter_value;
  }
  EXPECT_GT(passes, 0u);
  EXPECT_EQ(snapshot.find(
                "nd_filter_stage_pass_total",
                {{"device", "multistage-filter"}, {"stage", "3"}}),
            nullptr);
  ASSERT_NE(snapshot.find("nd_filter_shielded_total",
                          {{"device", "multistage-filter"}}),
            nullptr);
}

TEST(DeviceInstruments, TelemetryNeverChangesReports) {
  // The differential contract: telemetry only observes. Instrumented
  // and bare devices built from identical configs must report
  // bit-identically — including the RNG-driven sample-and-hold.
  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());

  MetricsRegistry registry;
  core::SampleAndHold sah_on(sah_config(&registry));
  core::SampleAndHold sah_off(sah_config());
  core::MultistageFilter filter_on(filter_config(&registry));
  core::MultistageFilter filter_off(filter_config());
  auto serial_on = filter_config(&registry);
  serial_on.serial = true;
  auto serial_off = filter_config();
  serial_off.serial = true;
  core::MultistageFilter sfilter_on(serial_on);
  core::MultistageFilter sfilter_off(serial_off);

  for (const auto& interval : intervals) {
    sah_on.observe_batch(interval);
    sah_off.observe_batch(interval);
    expect_reports_equal(sah_on.end_interval(), sah_off.end_interval());
    filter_on.observe_batch(interval);
    filter_off.observe_batch(interval);
    expect_reports_equal(filter_on.end_interval(),
                         filter_off.end_interval());
    sfilter_on.observe_batch(interval);
    sfilter_off.observe_batch(interval);
    expect_reports_equal(sfilter_on.end_interval(),
                         sfilter_off.end_interval());
  }
}

TEST(ShardedInstruments, PerShardTalliesMatchShardStatus) {
  MetricsRegistry registry;
  core::ShardedDeviceConfig config;
  config.shards = 4;
  config.metrics = &registry;
  core::ShardedDevice device(
      config, [&registry](std::uint32_t shard, std::uint64_t seed) {
        auto inner = filter_config(&registry);
        inner.seed = seed;
        inner.metric_labels = {{"shard", std::to_string(shard)}};
        return std::make_unique<core::MultistageFilter>(inner);
      });

  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  core::Report last;
  for (const auto& interval :
       classify_trace(small_trace(), packet::FlowDefinition::five_tuple())) {
    device.observe_batch(interval);
    total_packets += interval.size();
    for (const auto& packet : interval) {
      total_bytes += packet.bytes;
    }
    last = device.end_interval();
  }

  // The ShardStatus annotations carry the last interval's tallies; the
  // telemetry counters carry the lifetime sums; both partition the
  // totals exactly.
  ASSERT_EQ(last.shards.size(), 4u);
  const Snapshot snapshot = registry.snapshot();
  std::uint64_t counted_packets = 0;
  std::uint64_t counted_bytes = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const Labels shard_label{{"shard", std::to_string(s)}};
    counted_packets +=
        snapshot.find("nd_shard_packets_total", shard_label)->counter_value;
    counted_bytes +=
        snapshot.find("nd_shard_bytes_total", shard_label)->counter_value;
  }
  EXPECT_EQ(counted_packets, total_packets);
  EXPECT_EQ(counted_bytes, total_bytes);
  std::uint64_t status_packets = 0;
  for (const auto& status : last.shards) {
    status_packets += status.packets;
  }
  // 4 intervals of identical synthesis mean the last interval carries
  // roughly a quarter of the traffic; exactness is per interval.
  EXPECT_GT(status_packets, 0u);
  EXPECT_LE(status_packets, total_packets);

  EXPECT_EQ(snapshot.find("nd_sharded_intervals_total")->counter_value, 4u);
  EXPECT_DOUBLE_EQ(snapshot.find("nd_sharded_effective_threshold")
                       ->gauge_value,
                   static_cast<double>(core::effective_threshold(last)));
  EXPECT_EQ(snapshot.find("nd_shard_merge_ns")->histogram.count, 4u);

  // And the eval-layer imbalance summary is consistent with the tallies.
  const eval::ShardUsageSummary summary = eval::summarize_shards(last);
  EXPECT_EQ(summary.total_packets, status_packets);
  EXPECT_GE(summary.packet_imbalance, 1.0);
  EXPECT_LT(summary.packet_imbalance, 4.0 + 1e-9);
  EXPECT_GE(summary.byte_imbalance, 1.0);
}

TEST(ShardedInstruments, TelemetryNeverChangesShardedReports) {
  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  MetricsRegistry registry;
  common::ThreadPool pool(2);
  pool.attach_telemetry(&registry);

  core::ShardedDeviceConfig on;
  on.shards = 4;
  on.metrics = &registry;
  on.pool = &pool;
  core::ShardedDeviceConfig off;
  off.shards = 4;
  core::ShardedDevice device_on(
      on, [&registry](std::uint32_t shard, std::uint64_t seed) {
        auto inner = filter_config(&registry);
        inner.seed = seed;
        inner.metric_labels = {{"shard", std::to_string(shard)}};
        return std::make_unique<core::MultistageFilter>(inner);
      });
  core::ShardedDevice device_off(off,
                                 [](std::uint32_t, std::uint64_t seed) {
                                   auto inner = filter_config();
                                   inner.seed = seed;
                                   return std::make_unique<
                                       core::MultistageFilter>(inner);
                                 });
  for (const auto& interval : intervals) {
    device_on.observe_batch(interval);
    device_off.observe_batch(interval);
    expect_reports_equal(device_on.end_interval(),
                         device_off.end_interval());
  }
  // The pool carried the fan-out and said so.
  EXPECT_GT(registry.snapshot().find("nd_pool_tasks_total")->counter_value,
            0u);
}

TEST(SessionInstruments, OneSnapshotLinePerClosedInterval) {
  constexpr common::TimestampNs kSecond = 1'000'000'000ULL;
  MetricsRegistry registry;
  std::ostringstream out;
  JsonLinesExporter exporter(out);

  core::MeasurementSession session(
      std::make_unique<baseline::ExactOracle>(),
      packet::FlowDefinition::destination_ip(),
      std::chrono::seconds(5));
  session.attach_telemetry(&registry, &exporter);

  packet::PacketRecord packet;
  packet.src_ip = 1;
  packet.dst_ip = 7;
  packet.protocol = packet::IpProtocol::kUdp;
  packet.size_bytes = 100;
  for (const std::uint64_t second : {1u, 2u, 6u, 11u, 12u}) {
    packet.timestamp_ns = second * kSecond;
    session.observe(packet);
  }
  (void)session.finish();

  // Intervals [0,5) [5,10) [10,15): three closes, three JSON lines.
  EXPECT_EQ(session.intervals_closed(), 3u);
  EXPECT_EQ(exporter.lines_written(), 3u);
  std::istringstream in(out.str());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    const Snapshot snapshot = from_json_line(line);
    ++lines;
    EXPECT_EQ(snapshot.find("nd_session_intervals_total")->counter_value,
              lines);
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(registry.snapshot().find("nd_session_packets_total")
                ->counter_value,
            5u);
}

TEST(DriverInstruments, SnapshotSinkFiresOncePerInterval) {
  baseline::ExactOracle oracle;
  MetricsRegistry registry;
  std::vector<Snapshot> snapshots;

  eval::DriverOptions options;
  options.metric_threshold = 10'000;
  options.metrics = &registry;
  options.snapshot_sink = [&snapshots](const Snapshot& snapshot) {
    snapshots.push_back(snapshot);
  };
  eval::Driver driver(packet::FlowDefinition::five_tuple(), options);
  driver.add_device("oracle", oracle);
  trace::TraceSynthesizer synth(small_trace());
  driver.run(synth);

  ASSERT_EQ(snapshots.size(), 4u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i]
                  .find("nd_driver_intervals_total")
                  ->counter_value,
              i + 1);
  }
  EXPECT_EQ(snapshots.back().find("nd_driver_packets_total")->counter_value,
            driver.results()[0].packets);
  // The interval timer closes after the sink fires, so the Nth snapshot
  // carries N-1 latency records; the registry ends with all 4.
  EXPECT_EQ(snapshots.back().find("nd_driver_interval_ns")->histogram.count,
            3u);
  EXPECT_EQ(registry.snapshot().find("nd_driver_interval_ns")
                ->histogram.count,
            4u);
}

}  // namespace
}  // namespace nd::telemetry
