#include "profiling/instruction_profiler.hpp"

#include <gtest/gtest.h>

namespace nd::profiling {
namespace {

SyntheticProgramConfig small_program(std::uint64_t seed = 5) {
  SyntheticProgramConfig config;
  config.basic_blocks = 2000;
  config.heat_alpha = 1.1;
  config.seed = seed;
  return config;
}

TEST(SyntheticProgram, DeterministicPerSeed) {
  SyntheticProgram a(small_program(7));
  SyntheticProgram b(small_program(7));
  for (int i = 0; i < 100; ++i) {
    const auto ea = a.next();
    const auto eb = b.next();
    EXPECT_EQ(ea.block_address, eb.block_address);
    EXPECT_EQ(ea.instructions, eb.instructions);
  }
}

TEST(SyntheticProgram, BlockSizesWithinConfiguredRange) {
  SyntheticProgram program(small_program());
  for (int i = 0; i < 1000; ++i) {
    const auto execution = program.next();
    EXPECT_GE(execution.instructions, 3u);
    EXPECT_LE(execution.instructions, 40u);
  }
}

TEST(SyntheticProgram, ExactCountsTrackTotal) {
  SyntheticProgram program(small_program());
  std::uint64_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    total += program.next().instructions;
  }
  EXPECT_EQ(program.total_instructions(), total);
  std::uint64_t sum = 0;
  for (const auto& [pc, count] : program.exact_counts()) {
    sum += count;
  }
  EXPECT_EQ(sum, total);
}

TEST(SyntheticProgram, HeatIsSkewed) {
  SyntheticProgram program(small_program());
  for (int i = 0; i < 100'000; ++i) {
    (void)program.next();
  }
  // The hottest block should dwarf the median: find max and count of
  // blocks with at least one execution.
  std::uint64_t max_count = 0;
  for (const auto& [pc, count] : program.exact_counts()) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, program.total_instructions() / 50);
}

class ProfilerComparison : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfilerComparison, FilterBeatsSamplingOnHotBlocks) {
  // The Section 9 claim: multistage filters with conservative update
  // improve on the [19] sampled-profile strategy. Profiles are
  // collected over several epochs; the filter's preserved entries make
  // hot-block counts *exact* from the second epoch on, while 1-in-x
  // sampled counts keep their sampling noise forever.
  const std::uint64_t seed = GetParam();
  SyntheticProgram program(small_program(seed));

  ProfilerConfig config;
  config.filter_depth = 4;
  config.filter_buckets = 1024;
  config.table_entries = 256;
  // Well below the top-20 blocks' per-epoch counts (~20k instructions)
  // so the whole top-20 is identified and preserved.
  config.hot_threshold = 8'000;
  config.seed = seed;
  HotSpotProfiler filter_profiler(config);
  SampledProfiler sampled_profiler(/*sampling_divisor=*/1000, seed);

  constexpr int kEpochs = 3;
  constexpr int kStepsPerEpoch = 150'000;
  std::vector<HotSpot> filter_profile;
  std::vector<HotSpot> sampled_profile;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    program.clear_counts();
    for (int i = 0; i < kStepsPerEpoch; ++i) {
      const auto execution = program.next();
      filter_profiler.observe(execution);
      sampled_profiler.observe(execution);
    }
    filter_profile = filter_profiler.end_epoch();
    sampled_profile = sampled_profiler.end_epoch();
  }

  // Evaluate the final epoch's profile against that epoch's truth.
  const auto filter_quality =
      evaluate_profile(filter_profile, program.exact_counts(), 20);
  const auto sampled_quality =
      evaluate_profile(sampled_profile, program.exact_counts(), 20);

  EXPECT_GE(filter_quality.top_n_recall, 0.95);
  EXPECT_LT(filter_quality.relative_error,
            sampled_quality.relative_error);
  // The hot-block counts themselves are exact (preserved entries).
  EXPECT_LT(filter_quality.relative_error, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfilerComparison,
                         ::testing::Values(1, 2, 3));

TEST(HotSpotProfiler, EpochClearsState) {
  ProfilerConfig config;
  config.hot_threshold = 10;
  config.table_entries = 64;
  HotSpotProfiler profiler(config);
  profiler.observe(BlockExecution{0x400000, 100});
  const auto first = profiler.end_epoch();
  EXPECT_EQ(first.size(), 1u);
  // Preserved entries report exactly in the next epoch (0 bytes counted
  // entries are skipped).
  const auto second = profiler.end_epoch();
  EXPECT_TRUE(second.empty());
}

TEST(SampledProfiler, EstimatesScaleByDivisor) {
  SampledProfiler profiler(10, /*seed=*/3);
  for (int i = 0; i < 1000; ++i) {
    profiler.observe(BlockExecution{0x400000, 100});
  }
  const auto profile = profiler.end_epoch();
  ASSERT_EQ(profile.size(), 1u);
  // 100,000 instructions; estimate = samples * 10 ~ 100,000 +- noise.
  EXPECT_NEAR(static_cast<double>(profile[0].instructions), 100'000.0,
              5'000.0);
}

TEST(EvaluateProfile, PerfectProfileScoresPerfect) {
  std::unordered_map<std::uint32_t, std::uint64_t> exact{
      {1, 1000}, {2, 500}, {3, 10}};
  std::vector<HotSpot> profile{{1, 1000, true}, {2, 500, true}};
  const auto quality = evaluate_profile(profile, exact, 2);
  EXPECT_DOUBLE_EQ(quality.top_n_recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.relative_error, 0.0);
}

TEST(EvaluateProfile, MissingBlockCountsFullError) {
  std::unordered_map<std::uint32_t, std::uint64_t> exact{{1, 1000},
                                                         {2, 1000}};
  std::vector<HotSpot> profile{{1, 1000, true}};
  const auto quality = evaluate_profile(profile, exact, 2);
  EXPECT_DOUBLE_EQ(quality.top_n_recall, 0.5);
  EXPECT_DOUBLE_EQ(quality.relative_error, 0.5);
}

TEST(EvaluateProfile, EmptyTruth) {
  const auto quality = evaluate_profile({}, {}, 5);
  EXPECT_DOUBLE_EQ(quality.top_n_recall, 0.0);
}

}  // namespace
}  // namespace nd::profiling
