#include "hwmodel/chip_model.hpp"

#include <gtest/gtest.h>

namespace nd::hwmodel {
namespace {

TEST(ChipModel, PaperDesignSramBudget) {
  // Section 8 / [12]: 4 stages x 4K counters + 3,584-entry flow memory.
  const auto chip = paper_oc192_design();
  const auto result = analyze(chip, LinkConfig{});
  // 4 x 4096 x 32 bits = 512 Kbit of stage counters.
  EXPECT_EQ(result.stage_sram_bits, 4ull * 4096 * 32);
  // 3584 x 256 bits = 896 Kbit of flow memory.
  EXPECT_EQ(result.flow_memory_sram_bits, 3584ull * 256);
  EXPECT_EQ(result.total_sram_bits,
            result.stage_sram_bits + result.flow_memory_sram_bits);
}

TEST(ChipModel, PaperDesignFeasibleAtOc192) {
  LinkConfig link;
  link.line_rate_bps = kOc192Bps;
  link.min_packet_bytes = 40;
  const auto result = analyze(paper_oc192_design(), link);
  // 40-byte packets at OC-192 arrive every ~32 ns; with parallel stage
  // banks the critical path is 3 accesses x 5 ns = 15 ns.
  EXPECT_NEAR(result.packet_arrival_ns, 32.15, 0.2);
  EXPECT_EQ(result.critical_path_accesses, 3u);
  EXPECT_NEAR(result.packet_processing_ns, 15.0, 1e-9);
  EXPECT_TRUE(result.feasible);
}

TEST(ChipModel, SerialBanksInfeasibleAtOc192) {
  // Without parallel banks the critical path is 2d+1 = 9 accesses =
  // 45 ns > 32 ns: the Section 3.2 parallel-access note is load-bearing.
  ChipConfig chip = paper_oc192_design();
  chip.parallel_stage_banks = false;
  LinkConfig link;
  link.line_rate_bps = kOc192Bps;
  const auto result = analyze(chip, link);
  EXPECT_EQ(result.critical_path_accesses, 9u);
  EXPECT_FALSE(result.feasible);
  // But the same serial design still keeps up at OC-48.
  link.line_rate_bps = kOc48Bps;
  EXPECT_TRUE(analyze(chip, link).feasible);
}

TEST(ChipModel, MaxLineRateConsistent) {
  const auto result = analyze(paper_oc192_design(), LinkConfig{});
  // The design is feasible exactly up to its reported max line rate.
  LinkConfig at_max;
  at_max.line_rate_bps = result.max_line_rate_bps * 0.999;
  EXPECT_TRUE(analyze(paper_oc192_design(), at_max).feasible);
  at_max.line_rate_bps = result.max_line_rate_bps * 1.01;
  EXPECT_FALSE(analyze(paper_oc192_design(), at_max).feasible);
}

TEST(ChipModel, TotalAccessesCountBandwidth) {
  const auto result = analyze(paper_oc192_design(), LinkConfig{});
  // 2 per stage + 1 flow memory = 9, regardless of banking.
  EXPECT_EQ(result.total_accesses, 9u);
}

TEST(ChipModel, LargerPacketsRelaxTheBudget) {
  ChipConfig chip = paper_oc192_design();
  chip.parallel_stage_banks = false;  // infeasible at 40 B
  LinkConfig link;
  link.line_rate_bps = kOc192Bps;
  link.min_packet_bytes = 1500;
  EXPECT_TRUE(analyze(chip, link).feasible);
}

TEST(ChipModel, StagesForFlowCountLogScaling) {
  // Section 3.2: "If the number of flows increases to 1 million, we
  // simply add a fifth hash stage" — log10 scaling at k = 10.
  EXPECT_EQ(stages_for_flow_count(100'000, 10.0, 16.0), 4u);
  EXPECT_EQ(stages_for_flow_count(1'000'000, 10.0, 16.0), 5u);
  EXPECT_EQ(stages_for_flow_count(10'000'000, 10.0, 16.0), 6u);
}

TEST(ChipModel, StagesForFlowCountEdgeCases) {
  EXPECT_EQ(stages_for_flow_count(0.0, 10.0, 1.0), 1u);
  EXPECT_EQ(stages_for_flow_count(1000.0, 1.0, 1.0), 1u);  // k<=1 degenerate
  EXPECT_GE(stages_for_flow_count(1000.0, 2.0, 1.0), 10u);
}

}  // namespace
}  // namespace nd::hwmodel
