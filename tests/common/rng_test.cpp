#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nd::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.word(), b.word());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.word() == b.word()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    ++hits[rng.uniform(10)];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  // E[failures before success] = (1-p)/p.
  Rng rng(17);
  const double p = 0.01;
  double sum = 0.0;
  const int trials = 200'000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  const double mean = sum / trials;
  EXPECT_NEAR(mean, (1.0 - p) / p, 2.0);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.geometric(1.0), 0u);
  }
}

TEST(Rng, GeometricTinyProbabilityDoesNotOverflow) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.geometric(1e-15);
    EXPECT_LE(v, static_cast<std::uint64_t>(9.1e18));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0.0;
  double sq = 0.0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sq / trials, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child and parent must not mirror each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.word() == child.word()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ca.word(), cb.word());
  }
}

}  // namespace
}  // namespace nd::common
