#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nd::common {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&done] { ++done; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  bool ran = false;
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);  // no data race: inline mode never leaves the caller
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  for (int wave = 0; wave < 10; ++wave) {
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(sum.load(), 28);
  }
}

TEST(ThreadPool, TaskResultsJoinableInSubmissionOrder) {
  // The fork/join pattern every pipeline user relies on: disjoint output
  // slots, futures joined in order, merge afterwards.
  ThreadPool pool(3);
  std::vector<int> out(16, 0);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&out, i] { out[static_cast<std::size_t>(i)] = i * i; }));
  }
  for (auto& future : futures) future.get();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, ExceptionsSurfaceThroughTheFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  std::atomic<bool> ok{false};
  pool.submit([&ok] { ok = true; }).get();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
    // Futures intentionally dropped; the destructor joins the workers.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolPinning, UnpinnedByDefault) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.pinned());
  EXPECT_EQ(pool.worker_core(0), -1);
  EXPECT_EQ(pool.worker_core(1), -1);
}

TEST(ThreadPoolPinning, PinnedPoolRunsTasksAndExposesCoreMap) {
  // Pinning is best-effort (a constrained affinity mask just leaves the
  // worker unpinned), so the portable assertions are: the core map is
  // fixed and in range, and tasks still run to completion.
  ThreadPoolConfig config;
  config.threads = 2;
  config.pin = true;
  ThreadPool pool(config);
  EXPECT_TRUE(pool.pinned());
  const std::size_t hw = ThreadPool::default_thread_count();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_GE(pool.worker_core(i), 0);
    EXPECT_LT(static_cast<std::size_t>(pool.worker_core(i)), hw);
  }
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&done] { ++done; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolPinning, ExplicitTopologyIsAppliedModuloSize) {
  ThreadPoolConfig config;
  config.threads = 3;
  config.pin = true;
  config.topology = {0, 0};  // worker i -> topology[i % 2]
  ThreadPool pool(config);
  EXPECT_EQ(pool.worker_core(0), 0);
  EXPECT_EQ(pool.worker_core(1), 0);
  EXPECT_EQ(pool.worker_core(2), 0);
}

TEST(ThreadPoolPinning, SubmitOnRunsTasksInSubmissionOrderPerWorker) {
  // Private-queue FIFO is the property ShardedDevice's affinity mode
  // leans on: tasks routed to one worker never reorder.
  ThreadPool pool(2);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(
        pool.submit_on(0, [&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 32U);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolPinning, SubmitOnWrapsWorkerIndexAndDegradesInline) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit_on(7, [&done] { ++done; }).get();  // 7 % 2 == worker 1
  EXPECT_EQ(done.load(), 1);
  ThreadPool inline_pool(0);
  bool ran = false;
  inline_pool.submit_on(3, [&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolPinning, MixedSharedAndPrivateWorkAllCompletes) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(i % 3 == 0
                          ? pool.submit([&done] { ++done; })
                          : pool.submit_on(static_cast<std::size_t>(i),
                                           [&done] { ++done; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 48);
}

TEST(ThreadPoolPinning, PinnedTelemetrySplitsSeriesPerCore) {
  // With pinning on, per-task series carry a core="<cpu>" label so
  // ndtm --metrics can show per-core imbalance; the unlabelled series
  // still exists for aggregate dashboards.
  ThreadPoolConfig config;
  config.threads = 2;
  config.pin = true;
  config.topology = {0, 0};  // deterministic label on any machine
  ThreadPool pool(config);
  telemetry::MetricsRegistry registry;
  pool.attach_telemetry(&registry);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  futures.push_back(pool.submit_on(0, [] {}));
  futures.push_back(pool.submit_on(1, [] {}));
  for (auto& future : futures) future.get();
  const telemetry::Snapshot snapshot = registry.snapshot();
  const telemetry::Labels core0{{"core", "0"}};
  const auto* tasks = snapshot.find("nd_pool_tasks_total", core0);
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->counter_value, 18U);  // both workers pinned to core 0
  EXPECT_NE(snapshot.find("nd_pool_task_ns", core0), nullptr);
  EXPECT_NE(snapshot.find("nd_pool_worker_queue_depth", core0), nullptr);
}

TEST(ThreadPoolPinning, UnpinnedTelemetryHasNoCoreLabel) {
  ThreadPool pool(2);
  telemetry::MetricsRegistry registry;
  pool.attach_telemetry(&registry);
  pool.submit([] {}).get();
  const telemetry::Snapshot snapshot = registry.snapshot();
  const auto* tasks = snapshot.find("nd_pool_tasks_total");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->counter_value, 1U);
  EXPECT_EQ(snapshot.find("nd_pool_tasks_total", {{"core", "0"}}),
            nullptr);
}

}  // namespace
}  // namespace nd::common
