#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nd::common {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&done] { ++done; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  bool ran = false;
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);  // no data race: inline mode never leaves the caller
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(2);
  for (int wave = 0; wave < 10; ++wave) {
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto& future : futures) future.get();
    EXPECT_EQ(sum.load(), 28);
  }
}

TEST(ThreadPool, TaskResultsJoinableInSubmissionOrder) {
  // The fork/join pattern every pipeline user relies on: disjoint output
  // slots, futures joined in order, merge afterwards.
  ThreadPool pool(3);
  std::vector<int> out(16, 0);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&out, i] { out[static_cast<std::size_t>(i)] = i * i; }));
  }
  for (auto& future : futures) future.get();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, ExceptionsSurfaceThroughTheFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  std::atomic<bool> ok{false};
  pool.submit([&ok] { ok = true; }).get();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
    // Futures intentionally dropped; the destructor joins the workers.
  }
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace nd::common
