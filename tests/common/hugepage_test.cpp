// Unit tests for the Slab container and the process-wide hugepage mode
// switch. The differential suites (tests/simd/) pin "backing never
// changes bytes"; this file covers the container semantics themselves.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/hugepage.hpp"

namespace nd::common {
namespace {

TEST(HugepageMode, SetAndReadRoundTrips) {
  const HugePageMode previous = hugepage_mode();
  set_hugepage_mode(HugePageMode::kTransparent);
  EXPECT_EQ(hugepage_mode(), HugePageMode::kTransparent);
  set_hugepage_mode(HugePageMode::kExplicit);
  EXPECT_EQ(hugepage_mode(), HugePageMode::kExplicit);
  set_hugepage_mode(HugePageMode::kOff);
  EXPECT_EQ(hugepage_mode(), HugePageMode::kOff);
  set_hugepage_mode(previous);
}

struct Tracked {
  // Non-trivial type: Slab must value-construct and destroy correctly.
  std::uint64_t value{41};
  static int live;
  Tracked() { ++live; }
  Tracked(const Tracked&) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(Slab, ValueInitializesAndDestroysElements) {
  {
    Slab<Tracked> slab(100);
    EXPECT_EQ(Tracked::live, 100);
    EXPECT_EQ(slab.size(), 100U);
    EXPECT_FALSE(slab.empty());
    for (const Tracked& t : slab) EXPECT_EQ(t.value, 41U);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(Slab, ScalarsAreZeroed) {
  Slab<std::uint64_t> slab(4096);
  for (const std::uint64_t v : slab) ASSERT_EQ(v, 0U);
  slab[7] = 99;
  EXPECT_EQ(slab[7], 99U);
}

TEST(Slab, ResetReplacesContents) {
  Slab<std::uint64_t> slab(16);
  slab[0] = 123;
  slab.reset(32);
  EXPECT_EQ(slab.size(), 32U);
  EXPECT_EQ(slab[0], 0U) << "reset must value-initialize, not preserve";
  slab.reset(0);
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.data(), nullptr);
}

TEST(Slab, MoveTransfersOwnership) {
  Slab<std::uint64_t> source(64);
  source[5] = 777;
  const std::uint64_t* data = source.data();
  Slab<std::uint64_t> target(std::move(source));
  EXPECT_EQ(target.data(), data);
  EXPECT_EQ(target[5], 777U);
  EXPECT_EQ(source.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(source.empty());
  Slab<std::uint64_t> assigned(8);
  assigned = std::move(target);
  EXPECT_EQ(assigned.data(), data);
  EXPECT_EQ(assigned[5], 777U);
}

TEST(Slab, DefaultConstructedIsEmpty) {
  const Slab<std::uint64_t> slab;
  EXPECT_TRUE(slab.empty());
  EXPECT_EQ(slab.size(), 0U);
  EXPECT_EQ(slab.data(), nullptr);
}

TEST(Slab, BigAllocationsWorkUnderEveryMode) {
  // 4 MB crosses the huge-page floor; whatever backing the mode
  // resolves to (including silent fallback in this environment), the
  // memory must be usable end to end.
  const HugePageMode previous = hugepage_mode();
  for (const HugePageMode mode :
       {HugePageMode::kOff, HugePageMode::kTransparent,
        HugePageMode::kExplicit}) {
    set_hugepage_mode(mode);
    Slab<std::uint64_t> slab((4u << 20) / sizeof(std::uint64_t));
    ASSERT_NE(slab.data(), nullptr);
    EXPECT_EQ(slab[0], 0U);
    EXPECT_EQ(slab[slab.size() - 1], 0U);
    slab[0] = 1;
    slab[slab.size() - 1] = 2;
    EXPECT_EQ(slab[0] + slab[slab.size() - 1], 3U);
  }
  set_hugepage_mode(previous);
}

}  // namespace
}  // namespace nd::common
