// Differential suite for the dispatch-layered CRC-32 kernel.
//
// The contract under test is bit-identity: every tier (slice8, pclmul,
// armv8) must produce exactly the bytes the portable reference does,
// for every length, alignment, chunking, and forced dispatch level —
// a CRC that differs by tier would corrupt every wire frame, WAL
// record, journal record and checkpoint written on one host and read
// on another.
#include "common/crc32.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "hash/hash.hpp"
#include "telemetry/metrics.hpp"

namespace nd::common {
namespace {

/// Independent oracle: the textbook bit-at-a-time loop, sharing no code
/// (and no tables) with the implementation under test.
std::uint32_t crc32_bitwise(const std::uint8_t* data, std::size_t len,
                            std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
  }
  return ~crc;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(rng.word());
  }
  return out;
}

TEST(Crc32, KnownVector) {
  // The IEEE CRC-32 check value: CRC("123456789") = 0xCBF43926.
  const std::string_view s = "123456789";
  const std::uint32_t got =
      crc32({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  EXPECT_EQ(got, 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, MatchesLegacyHashCrc32) {
  // hash::crc32 delegates here; the seed-chaining contract must be the
  // one its callers (stage hashing, tests) always had.
  const std::vector<std::uint8_t> data = random_bytes(777, 11);
  EXPECT_EQ(hash::crc32(data), crc32(data));
  const std::uint32_t chained = crc32(
      std::span(data).subspan(300), crc32(std::span(data).first(300)));
  EXPECT_EQ(chained, crc32(data));
  EXPECT_EQ(hash::crc32(data, 0xDEADBEEFu), crc32(data, 0xDEADBEEFu));
}

// Every length 0..512 x every alignment 0..63, each forced dispatch
// level, against the bitwise oracle. This sweep crosses every kernel
// boundary: the <8-byte tail loop, the 8-byte slice8 step, the 64-byte
// pclmul threshold, and the 16-byte folding remainder.
TEST(Crc32, ExhaustiveLengthAlignmentDifferential) {
  const std::vector<std::uint8_t> pool = random_bytes(512 + 64, 42);
  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kNeon,
                              SimdLevel::kAvx2};
  for (std::size_t len = 0; len <= 512; ++len) {
    for (std::size_t align = 0; align < 64; ++align) {
      const std::uint8_t* p = pool.data() + align;
      const std::uint32_t want = crc32_bitwise(p, len, 0);
      for (const SimdLevel level : levels) {
        ScopedSimdLevel forced(level);
        ASSERT_EQ(crc32({p, len}), want)
            << "len=" << len << " align=" << align
            << " level=" << simd_name(forced.applied())
            << " impl=" << crc32_impl_name();
      }
    }
  }
}

// Chunked (seed-chained) evaluation must equal one-shot for every
// split point, under every forced level: the frame parser and WAL
// scanners chain CRCs over header + payload spans.
TEST(Crc32, ChunkedEqualsOneShot) {
  const std::vector<std::uint8_t> data = random_bytes(1024, 7);
  const std::uint32_t want = crc32(data);
  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kNeon,
                              SimdLevel::kAvx2};
  for (const SimdLevel level : levels) {
    ScopedSimdLevel forced(level);
    EXPECT_EQ(crc32(data), want) << simd_name(forced.applied());
    for (const std::size_t cut :
         {std::size_t{1}, std::size_t{7}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{128}, std::size_t{500},
          std::size_t{1023}}) {
      const std::uint32_t first = crc32(std::span(data).first(cut));
      const std::uint32_t chained =
          crc32(std::span(data).subspan(cut), first);
      ASSERT_EQ(chained, want)
          << "cut=" << cut << " level=" << simd_name(forced.applied());
    }
    // Many tiny chunks: every byte its own call.
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < 256; ++i) {
      running = crc32(std::span(data).subspan(i, 1), running);
    }
    EXPECT_EQ(running, crc32(std::span(data).first(256)))
        << simd_name(forced.applied());
  }
}

// A CRC that misses flipped bits is not a CRC: every single-byte flip
// and every truncation of a hardware-width buffer must change the sum.
TEST(Crc32, FlipAndTruncationFuzz) {
  std::vector<std::uint8_t> data = random_bytes(256, 99);
  const std::uint32_t clean = crc32(data);
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t pos = rng.word() % data.size();
    const std::uint8_t flip =
        static_cast<std::uint8_t>(1u << (rng.word() % 8));
    data[pos] ^= flip;
    EXPECT_NE(crc32(data), clean) << "pos=" << pos;
    data[pos] ^= flip;
  }
  EXPECT_EQ(crc32(data), clean);
  for (std::size_t cut = 0; cut < data.size(); ++cut) {
    ASSERT_NE(crc32(std::span(data).first(cut)), clean) << "cut=" << cut;
  }
}

TEST(Crc32, ImplNameFollowsForcedLevel) {
  {
    ScopedSimdLevel forced(SimdLevel::kScalar);
    EXPECT_STREQ(crc32_impl_name(), "slice8");
  }
#if defined(ND_HAVE_AVX2)
  {
    ScopedSimdLevel forced(SimdLevel::kAvx2);
    if (forced.applied() == SimdLevel::kAvx2 &&
        detail::crc32_clmul_supported()) {
      EXPECT_STREQ(crc32_impl_name(), "pclmul");
    } else {
      EXPECT_STREQ(crc32_impl_name(), "slice8");
    }
  }
#endif
}

#if defined(ND_HAVE_AVX2)
// Pit the folding kernel against slice8 directly in the state domain,
// over every 16-byte-multiple length the dispatcher can hand it.
TEST(Crc32, ClmulKernelMatchesSlice8Directly) {
  if (!detail::crc32_clmul_supported()) {
    GTEST_SKIP() << "host lacks PCLMULQDQ";
  }
  const std::vector<std::uint8_t> pool = random_bytes(2048 + 64, 3);
  for (std::size_t len = detail::kClmulMinBytes; len <= 2048; len += 16) {
    for (const std::size_t align : {std::size_t{0}, std::size_t{1},
                                    std::size_t{15}, std::size_t{32}}) {
      const std::uint8_t* p = pool.data() + align;
      const std::uint32_t state = 0xFFFFFFFFu ^ 0x12345678u;
      ASSERT_EQ(detail::crc32_clmul(p, len, state),
                detail::crc32_slice8(p, len, state))
          << "len=" << len << " align=" << align;
    }
  }
}
#endif

TEST(Crc32, ByteCountersAndMetricsSync) {
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < kCrc32ImplCount; ++i) {
    before += crc32_bytes_processed(i);
  }
  const std::vector<std::uint8_t> data = random_bytes(4096, 5);
  (void)crc32(data);
  std::uint64_t after = 0;
  for (std::size_t i = 0; i < kCrc32ImplCount; ++i) {
    after += crc32_bytes_processed(i);
  }
  EXPECT_EQ(after - before, data.size());

  telemetry::MetricsRegistry registry;
  sync_crc32_metrics(registry);
  std::uint64_t synced = 0;
  for (std::size_t i = 0; i < kCrc32ImplCount; ++i) {
    synced += static_cast<std::uint64_t>(
        registry.counter("nd_crc_bytes_total", {{"impl", kCrc32Impls[i]}})
            .value());
  }
  EXPECT_EQ(synced, after);
  // Delta-sync: a second pass with no new CRC work adds nothing.
  sync_crc32_metrics(registry);
  std::uint64_t resynced = 0;
  for (std::size_t i = 0; i < kCrc32ImplCount; ++i) {
    resynced += static_cast<std::uint64_t>(
        registry.counter("nd_crc_bytes_total", {{"impl", kCrc32Impls[i]}})
            .value());
  }
  EXPECT_EQ(resynced, synced);
}

}  // namespace
}  // namespace nd::common
