#include "common/format.hpp"

#include <gtest/gtest.h>

namespace nd::common {
namespace {

TEST(Format, BytesSmall) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(999), "999 B");
}

TEST(Format, BytesDecimalUnits) {
  // The paper's footnote 2: 1 Mbyte = 1,000,000 bytes.
  EXPECT_EQ(format_bytes(1'000), "1.00 KB");
  EXPECT_EQ(format_bytes(1'500'000), "1.50 MB");
  EXPECT_EQ(format_bytes(2'488'000'000ULL), "2.49 GB");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.1234), "12.34%");
  EXPECT_EQ(format_percent(0.001, 1), "0.1%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(1.5, 3), "1.500");
  EXPECT_EQ(format_fixed(-2.25, 1), "-2.2");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1'000), "1,000");
  EXPECT_EQ(format_count(1'234'567), "1,234,567");
  EXPECT_EQ(format_count(12), "12");
  EXPECT_EQ(format_count(123'456), "123,456");
}

TEST(Format, Scientific) {
  EXPECT_EQ(format_scientific(1.52e-4), "1.52e-04");
  EXPECT_EQ(format_scientific(2.06e-9), "2.06e-09");
}

TEST(Format, Ipv4) {
  EXPECT_EQ(format_ipv4(0x0A000001), "10.0.0.1");
  EXPECT_EQ(format_ipv4(0xFFFFFFFF), "255.255.255.255");
  EXPECT_EQ(format_ipv4(0), "0.0.0.0");
}

}  // namespace
}  // namespace nd::common
