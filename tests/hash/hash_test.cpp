#include "hash/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

namespace nd::hash {
namespace {

TEST(Splitmix64, DeterministicAndMixing) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  // Near inputs should produce far outputs (avalanche smoke check).
  const std::uint64_t a = splitmix64(100);
  const std::uint64_t b = splitmix64(101);
  const int bits = std::popcount(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(Fnv1a64, MatchesKnownVectors) {
  // FNV-1a 64-bit of the empty string is the offset basis.
  EXPECT_EQ(fnv1a64({}), 0xCBF29CE484222325ULL);
  const std::array<std::uint8_t, 1> a{{'a'}};
  EXPECT_EQ(fnv1a64(a), 0xAF63DC4C8601EC8CULL);
}

TEST(ReduceToRange, StaysInRange) {
  for (std::uint64_t h :
       {0ULL, 1ULL, 0x8000000000000000ULL, ~0ULL, 12345678901234ULL}) {
    EXPECT_LT(reduce_to_range(h, 1000), 1000u);
    EXPECT_LT(reduce_to_range(h, 7), 7u);
    EXPECT_EQ(reduce_to_range(h, 1), 0u);
  }
}

TEST(ReduceToRange, RoughlyUniform) {
  common::Rng rng(5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++hits[reduce_to_range(rng.word(), 10)];
  }
  for (const int h : hits) {
    EXPECT_NEAR(h, 10'000, 600);
  }
}

TEST(MultiplyShiftHash, MultiplierForcedOdd) {
  MultiplyShiftHash h(0, 0);  // even multiplier must be fixed up
  EXPECT_NE(h(1), h(2));
}

TEST(MultiplyShiftHash, DeterministicPerSeed) {
  common::Rng r1(1), r2(1);
  MultiplyShiftHash h1(r1), h2(r2);
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(h1(k), h2(k));
  }
}

double chi_square_uniform(const std::vector<int>& hits, int total) {
  const double expected =
      static_cast<double>(total) / static_cast<double>(hits.size());
  double chi = 0.0;
  for (const int h : hits) {
    const double d = h - expected;
    chi += d * d / expected;
  }
  return chi;
}

TEST(TabulationHash, UniformOverBuckets) {
  common::Rng rng(99);
  TabulationHash hash(rng);
  constexpr int kBuckets = 64;
  constexpr int kKeys = 64'000;
  std::vector<int> hits(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    // Adversarially regular keys: sequential integers.
    ++hits[reduce_to_range(hash(static_cast<std::uint64_t>(i)), kBuckets)];
  }
  // Chi-square with 63 dof: 99.99th percentile ~ 117. Allow slack.
  EXPECT_LT(chi_square_uniform(hits, kKeys), 130.0);
}

TEST(TabulationHash, DifferentSeedsDiffer) {
  common::Rng r1(1), r2(2);
  TabulationHash h1(r1), h2(r2);
  int same = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (h1(k) == h2(k)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StageHash, BucketInRange) {
  common::Rng rng(3);
  StageHash stage(HashKind::kTabulation, rng, 1013);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    EXPECT_LT(stage.bucket(k), 1013u);
  }
  EXPECT_EQ(stage.buckets(), 1013u);
}

TEST(HashFamily, StagesAreIndependent) {
  HashFamily family(42);
  StageHash s1 = family.make_stage(1000);
  StageHash s2 = family.make_stage(1000);
  // Two stages must disagree on most keys, otherwise the multistage
  // filter's independence assumption (Lemma 1) is violated.
  int agree = 0;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    if (s1.bucket(k) == s2.bucket(k)) ++agree;
  }
  // Expected agreement for independent functions: ~10000/1000 = 10.
  EXPECT_LT(agree, 40);
}

TEST(HashFamily, SameSeedReproduces) {
  HashFamily f1(7), f2(7);
  StageHash s1 = f1.make_stage(512);
  StageHash s2 = f2.make_stage(512);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(s1.bucket(k), s2.bucket(k));
  }
}

TEST(HashFamily, ScrambleIsDeterministicAndMixing) {
  HashFamily family(11);
  EXPECT_EQ(family.scramble(5), family.scramble(5));
  EXPECT_NE(family.scramble(5), family.scramble(6));
}

TEST(HashFamily, MultiplyShiftKindWorks) {
  HashFamily family(13, HashKind::kMultiplyShift);
  StageHash stage = family.make_stage(100);
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    seen.insert(stage.bucket(k));
  }
  // A 2-universal function over 1000 keys should hit most of 100 buckets.
  EXPECT_GT(seen.size(), 80u);
}

TEST(StageHashBank, TabulationBankMatchesPerStageBuckets) {
  // The interleaved table layout must be a pure re-layout: every
  // stage's bucket for every key identical to evaluating the source
  // StageHashes one by one.
  HashFamily family(97);
  std::vector<StageHash> stages;
  for (int d = 0; d < 4; ++d) {
    stages.push_back(family.make_stage(4096));
  }
  const std::vector<StageHash> reference = stages;
  StageHashBank bank(std::move(stages));
  ASSERT_EQ(bank.depth(), 4u);
  std::uint64_t out[4];
  for (std::uint64_t k = 0; k < 20'000; ++k) {
    const std::uint64_t fp = splitmix64(k);
    bank.bucket_all(fp, out);
    for (std::size_t d = 0; d < 4; ++d) {
      ASSERT_EQ(out[d], reference[d].bucket(fp)) << "stage " << d;
    }
  }
}

TEST(StageHashBank, MultiplyShiftFallbackMatchesPerStageBuckets) {
  HashFamily family(41, HashKind::kMultiplyShift);
  std::vector<StageHash> stages;
  for (int d = 0; d < 3; ++d) {
    stages.push_back(family.make_stage(1000));
  }
  const std::vector<StageHash> reference = stages;
  StageHashBank bank(std::move(stages));
  std::uint64_t out[3];
  for (std::uint64_t k = 0; k < 5'000; ++k) {
    bank.bucket_all(k, out);
    for (std::size_t d = 0; d < 3; ++d) {
      ASSERT_EQ(out[d], reference[d].bucket(k)) << "stage " << d;
    }
  }
}

TEST(StageHashBank, DeepBankFallsBackAndStillMatches) {
  // Depth past kMaxInterleavedDepth skips the interleaved layout but
  // must produce the same buckets through the per-stage path.
  HashFamily family(7);
  std::vector<StageHash> stages;
  for (std::size_t d = 0; d < StageHashBank::kMaxInterleavedDepth + 2;
       ++d) {
    stages.push_back(family.make_stage(64));
  }
  const std::vector<StageHash> reference = stages;
  StageHashBank bank(std::move(stages));
  std::vector<std::uint64_t> out(bank.depth());
  for (std::uint64_t k = 0; k < 2'000; ++k) {
    bank.bucket_all(splitmix64(k), out.data());
    for (std::size_t d = 0; d < reference.size(); ++d) {
      ASSERT_EQ(out[d], reference[d].bucket(splitmix64(k)));
    }
  }
}

class StageUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StageUniformity, ChiSquareAcrossSeeds) {
  common::Rng rng(GetParam());
  StageHash stage(HashKind::kTabulation, rng, 32);
  std::vector<int> hits(32, 0);
  for (int i = 0; i < 32'000; ++i) {
    ++hits[stage.bucket(splitmix64(static_cast<std::uint64_t>(i)))];
  }
  // 31 dof; 99.99th percentile ~ 66.6.
  EXPECT_LT(chi_square_uniform(hits, 32'000), 75.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StageUniformity,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace nd::hash
