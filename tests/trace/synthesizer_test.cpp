#include "trace/synthesizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "packet/flow_definition.hpp"
#include "trace/stats.hpp"

namespace nd::trace {
namespace {

TraceConfig small_config(std::uint64_t seed = 7) {
  TraceConfig config;
  config.flow_count = 500;
  config.bytes_per_interval = 2'000'000;
  config.link_capacity_per_interval = 10'000'000;
  config.num_intervals = 4;
  config.dst_ip_pool = 200;
  config.src_ip_pool = 400;
  config.as_count = 20;
  config.prefixes_per_as = 10;
  config.seed = seed;
  return config;
}

TEST(Synthesizer, ProducesConfiguredIntervals) {
  TraceSynthesizer synth(small_config());
  int intervals = 0;
  while (!synth.next_interval().empty()) {
    ++intervals;
  }
  EXPECT_EQ(intervals, 4);
  EXPECT_TRUE(synth.next_interval().empty());  // stays empty
}

TEST(Synthesizer, PacketsSortedByTimestamp) {
  TraceSynthesizer synth(small_config());
  const auto packets = synth.next_interval();
  ASSERT_FALSE(packets.empty());
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_LE(packets[i - 1].timestamp_ns, packets[i].timestamp_ns);
  }
}

TEST(Synthesizer, TimestampsWithinInterval) {
  auto config = small_config();
  TraceSynthesizer synth(config);
  const auto interval_ns = static_cast<common::TimestampNs>(
      config.interval_duration.count());
  (void)synth.next_interval();
  const auto second = synth.next_interval();
  for (const auto& p : second) {
    EXPECT_GE(p.timestamp_ns, interval_ns);
    EXPECT_LT(p.timestamp_ns, 2 * interval_ns);
  }
}

TEST(Synthesizer, VolumeNearTarget) {
  auto config = small_config();
  TraceSynthesizer synth(config);
  const auto packets = synth.next_interval();
  common::ByteCount total = 0;
  for (const auto& p : packets) total += p.size_bytes;
  EXPECT_NEAR(static_cast<double>(total),
              static_cast<double>(config.bytes_per_interval),
              static_cast<double>(config.bytes_per_interval) * 0.10);
}

TEST(Synthesizer, DeterministicAcrossInstances) {
  TraceSynthesizer a(small_config(11));
  TraceSynthesizer b(small_config(11));
  const auto pa = a.next_interval();
  const auto pb = b.next_interval();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(Synthesizer, DifferentSeedsDiffer) {
  TraceSynthesizer a(small_config(1));
  TraceSynthesizer b(small_config(2));
  const auto pa = a.next_interval();
  const auto pb = b.next_interval();
  // Identical streams with different seeds would be a determinism bug.
  bool all_equal = pa.size() == pb.size();
  if (all_equal) {
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (!(pa[i] == pb[i])) {
        all_equal = false;
        break;
      }
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(Synthesizer, ResetReproducesTrace) {
  TraceSynthesizer synth(small_config(13));
  const auto first = synth.next_interval();
  (void)synth.next_interval();
  synth.reset();
  const auto again = synth.next_interval();
  ASSERT_EQ(first.size(), again.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], again[i]);
  }
}

TEST(Synthesizer, FlowCountMatchesConfig) {
  auto config = small_config();
  TraceSynthesizer synth(config);
  const auto packets = synth.next_interval();
  const auto sizes = exact_flow_sizes(
      packets, packet::FlowDefinition::five_tuple());
  // Distinct 5-tuples can be slightly below flow_count (random endpoint
  // collisions) but never above it.
  EXPECT_LE(sizes.size(), config.flow_count);
  EXPECT_GT(sizes.size(), config.flow_count * 95 / 100);
}

TEST(Synthesizer, LongLivedFlowsPersist) {
  auto config = small_config();
  config.long_lived_fraction = 1.0;
  config.large_flow_survival = 1.0;
  TraceSynthesizer synth(config);
  const auto def = packet::FlowDefinition::five_tuple();
  const auto first = exact_flow_sizes(synth.next_interval(), def);
  const auto second = exact_flow_sizes(synth.next_interval(), def);
  // With survival probability 1 every flow persists.
  std::size_t shared = 0;
  for (const auto& [key, bytes] : first) {
    if (second.contains(key)) ++shared;
  }
  EXPECT_EQ(shared, first.size());
}

TEST(Synthesizer, ChurnReplacesFlows) {
  auto config = small_config();
  config.long_lived_fraction = 0.0;
  config.large_flow_survival = 0.0;
  TraceSynthesizer synth(config);
  const auto def = packet::FlowDefinition::five_tuple();
  const auto first = exact_flow_sizes(synth.next_interval(), def);
  const auto second = exact_flow_sizes(synth.next_interval(), def);
  std::size_t shared = 0;
  for (const auto& [key, bytes] : first) {
    if (second.contains(key)) ++shared;
  }
  // Random endpoint collisions allow a few accidental repeats.
  EXPECT_LT(shared, first.size() / 10);
}

TEST(Synthesizer, InjectedFlowAppearsInWindow) {
  auto config = small_config();
  TraceSynthesizer synth(config);
  InjectedFlow attack;
  attack.prototype.src_ip = 0xC0A80001;
  attack.prototype.dst_ip = 0xC0A80002;
  attack.prototype.src_port = 1;
  attack.prototype.dst_port = 2;
  attack.prototype.protocol = packet::IpProtocol::kUdp;
  attack.bytes_per_interval = 500'000;
  attack.from_interval = 1;
  attack.to_interval = 2;
  synth.inject(attack);

  const auto def = packet::FlowDefinition::five_tuple();
  const auto key = packet::FlowKey::five_tuple(
      0xC0A80001, 0xC0A80002, 1, 2, packet::IpProtocol::kUdp);

  const auto i0 = exact_flow_sizes(synth.next_interval(), def);
  EXPECT_FALSE(i0.contains(key));
  const auto i1 = exact_flow_sizes(synth.next_interval(), def);
  ASSERT_TRUE(i1.contains(key));
  EXPECT_NEAR(static_cast<double>(i1.at(key)), 500'000.0, 2000.0);
  const auto i2 = exact_flow_sizes(synth.next_interval(), def);
  EXPECT_TRUE(i2.contains(key));
  const auto i3 = exact_flow_sizes(synth.next_interval(), def);
  EXPECT_FALSE(i3.contains(key));
}

TEST(Synthesizer, AddressesResolvableToAses) {
  auto config = small_config();
  TraceSynthesizer synth(config);
  const auto packets = synth.next_interval();
  std::size_t resolved = 0;
  for (const auto& p : packets) {
    if (synth.as_resolver().resolve(p.dst_ip).has_value()) ++resolved;
  }
  EXPECT_EQ(resolved, packets.size());  // default route covers all
}

TEST(Synthesizer, BurstyModePreservesVolumeAndOrder) {
  auto config = small_config(23);
  config.arrival_model = trace::TraceConfig::ArrivalModel::kBursty;
  config.burst_mean_packets = 10.0;
  config.burst_spread = 0.02;
  TraceSynthesizer synth(config);
  const auto packets = synth.next_interval();
  ASSERT_FALSE(packets.empty());
  common::ByteCount total = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(packets[i - 1].timestamp_ns, packets[i].timestamp_ns);
    }
    EXPECT_LT(packets[i].timestamp_ns,
              static_cast<common::TimestampNs>(
                  config.interval_duration.count()));
    total += packets[i].size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(total),
              static_cast<double>(config.bytes_per_interval),
              static_cast<double>(config.bytes_per_interval) * 0.10);
}

TEST(Synthesizer, BurstyModeClumpsArrivals) {
  // In bursty mode, consecutive packets of the same flow arrive close
  // together far more often than under uniform scattering.
  auto measure_clumping = [](trace::TraceConfig config) {
    config.flow_count = 50;  // few flows, many packets each
    config.bytes_per_interval = 2'000'000;
    TraceSynthesizer synth(config);
    const auto packets = synth.next_interval();
    // Median gap between consecutive packets of the single largest flow.
    const auto def = packet::FlowDefinition::five_tuple();
    std::unordered_map<std::uint64_t, common::TimestampNs> last_seen;
    std::unordered_map<std::uint64_t, std::vector<common::TimestampNs>>
        gaps;
    for (const auto& p : packets) {
      const auto key = def.classify(p)->fingerprint();
      if (auto it = last_seen.find(key); it != last_seen.end()) {
        gaps[key].push_back(p.timestamp_ns - it->second);
      }
      last_seen[key] = p.timestamp_ns;
    }
    // Median gap of the flow with the most packets. (The mean gap is
    // invariant under clumping — the median is what bursts compress.)
    std::uint64_t best = 0;
    std::size_t best_count = 0;
    for (const auto& [k, g] : gaps) {
      if (g.size() > best_count) {
        best_count = g.size();
        best = k;
      }
    }
    auto& g = gaps[best];
    std::sort(g.begin(), g.end());
    return static_cast<double>(g[g.size() / 2]);
  };

  auto uniform_config = small_config(31);
  auto bursty_config = small_config(31);
  bursty_config.arrival_model = trace::TraceConfig::ArrivalModel::kBursty;
  bursty_config.burst_mean_packets = 50.0;
  bursty_config.burst_spread = 0.001;
  EXPECT_LT(measure_clumping(bursty_config),
            measure_clumping(uniform_config) / 2.0);
}

TEST(Synthesizer, BurstyModeDeterministic) {
  auto config = small_config(37);
  config.arrival_model = trace::TraceConfig::ArrivalModel::kBursty;
  TraceSynthesizer a(config);
  TraceSynthesizer b(config);
  const auto pa = a.next_interval();
  const auto pb = b.next_interval();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(SynthesizeAll, MatchesStreaming) {
  const auto config = small_config(17);
  const auto all = synthesize_all(config);
  ASSERT_EQ(all.size(), config.num_intervals);
  TraceSynthesizer synth(config);
  for (const auto& expected : all) {
    const auto actual = synth.next_interval();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]);
    }
  }
}

}  // namespace
}  // namespace nd::trace
