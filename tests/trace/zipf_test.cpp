#include "trace/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace nd::trace {
namespace {

TEST(ZipfSizes, EmptyCount) {
  EXPECT_TRUE(zipf_sizes(0, 1.0, 1000).empty());
}

TEST(ZipfSizes, SumsApproximatelyToTotal) {
  const auto sizes = zipf_sizes(1000, 1.0, 10'000'000);
  const auto total = std::accumulate(sizes.begin(), sizes.end(),
                                     common::ByteCount{0});
  EXPECT_NEAR(static_cast<double>(total), 1e7, 1e7 * 0.02);
}

TEST(ZipfSizes, MonotoneNonIncreasing) {
  const auto sizes = zipf_sizes(500, 1.2, 5'000'000);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i - 1], sizes[i]);
  }
}

TEST(ZipfSizes, RespectsMinimum) {
  const auto sizes = zipf_sizes(10'000, 1.5, 1'000'000, 40);
  for (const auto s : sizes) {
    EXPECT_GE(s, 40u);
  }
}

TEST(ZipfSizes, AlphaOneRatioLaw) {
  // With alpha = 1, size(1)/size(10) ~ 10.
  const auto sizes = zipf_sizes(1000, 1.0, 100'000'000);
  const double ratio = static_cast<double>(sizes[0]) /
                       static_cast<double>(sizes[9]);
  EXPECT_NEAR(ratio, 10.0, 0.2);
}

TEST(ZipfSizes, HeavyHitterConcentration) {
  // The paper's Figure 6: top 10% of flows carry >= ~85% of bytes for
  // Zipf-like traffic. With pure Zipf(1) over 10k flows the top decile
  // carries ln(1000)/ln(10000) ~ 75%+.
  const auto sizes = zipf_sizes(10'000, 1.0, 1'000'000'000);
  common::ByteCount total = 0;
  for (const auto s : sizes) total += s;
  common::ByteCount top = 0;
  for (std::size_t i = 0; i < 1000; ++i) top += sizes[i];
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.70);
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  const ZipfSampler sampler(100, 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    sum += sampler.probability(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(sampler.probability(100), 0.0);
}

TEST(ZipfSampler, ProbabilityDecreasesWithRank) {
  const ZipfSampler sampler(50, 0.8);
  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_GT(sampler.probability(i - 1), sampler.probability(i));
  }
}

TEST(ZipfSampler, SamplesInRange) {
  const ZipfSampler sampler(10, 1.0);
  common::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(sampler.sample(rng), 10u);
  }
}

TEST(ZipfSampler, EmpiricalMatchesTheoretical) {
  const ZipfSampler sampler(20, 1.0);
  common::Rng rng(2);
  std::vector<int> hits(20, 0);
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) {
    ++hits[sampler.sample(rng)];
  }
  for (std::size_t r = 0; r < 20; ++r) {
    const double expected = sampler.probability(r) * kTrials;
    EXPECT_NEAR(hits[r], expected, 5.0 * std::sqrt(expected) + 5.0)
        << "rank " << r;
  }
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const ZipfSampler sampler(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(sampler.probability(i), 0.1, 1e-12);
  }
}

class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, SizesSumAndOrder) {
  const double alpha = GetParam();
  const auto sizes = zipf_sizes(2000, alpha, 50'000'000);
  ASSERT_EQ(sizes.size(), 2000u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i - 1], sizes[i]);
  }
  const auto total = std::accumulate(sizes.begin(), sizes.end(),
                                     common::ByteCount{0});
  // min_size padding may push the sum slightly above the target.
  EXPECT_GT(total, 48'000'000u);
  EXPECT_LT(total, 60'000'000u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.5, 0.8, 1.0, 1.1, 1.3));

}  // namespace
}  // namespace nd::trace
