// Calibration tests: the presets must land near the paper's Table 3.
// These run the full-size MAG/IND/COS generators for a few intervals, so
// they are the slowest unit tests (~2 s total).
#include "trace/presets.hpp"

#include <gtest/gtest.h>

#include "packet/flow_definition.hpp"
#include "trace/stats.hpp"
#include "trace/synthesizer.hpp"

namespace nd::trace {
namespace {

struct Measured {
  double five_tuple;
  double dst_ip;
  double as_pair;
  double megabytes;
};

Measured measure(TraceConfig config, std::uint32_t intervals = 3) {
  config.num_intervals = intervals;
  TraceSynthesizer synth(config);
  TraceStats s5(packet::FlowDefinition::five_tuple());
  TraceStats sd(packet::FlowDefinition::destination_ip());
  TraceStats sa(packet::FlowDefinition::as_pair(synth.as_resolver()));
  for (;;) {
    const auto packets = synth.next_interval();
    if (packets.empty()) break;
    s5.observe_interval(packets);
    sd.observe_interval(packets);
    sa.observe_interval(packets);
  }
  return Measured{s5.flows_per_interval().avg(), sd.flows_per_interval().avg(),
                  sa.flows_per_interval().avg(),
                  s5.bytes_per_interval().avg() / 1e6};
}

void expect_near_target(double measured, double target, double tolerance,
                        const char* what) {
  EXPECT_NEAR(measured, target, target * tolerance) << what;
}

TEST(Presets, MagMatchesTable3) {
  const auto m = measure(Presets::mag());
  expect_near_target(m.five_tuple, 100'105, 0.05, "5-tuple flows");
  expect_near_target(m.dst_ip, 43'575, 0.10, "dst-IP flows");
  expect_near_target(m.as_pair, 7'408, 0.15, "AS-pair flows");
  expect_near_target(m.megabytes, 264.7, 0.05, "MB/interval");
}

TEST(Presets, IndMatchesTable3) {
  const auto m = measure(Presets::ind());
  expect_near_target(m.five_tuple, 14'349, 0.05, "5-tuple flows");
  expect_near_target(m.dst_ip, 8'933, 0.10, "dst-IP flows");
  expect_near_target(m.megabytes, 96.04, 0.05, "MB/interval");
}

TEST(Presets, CosMatchesTable3) {
  const auto m = measure(Presets::cos());
  expect_near_target(m.five_tuple, 5'497, 0.05, "5-tuple flows");
  expect_near_target(m.dst_ip, 1'146, 0.10, "dst-IP flows");
  expect_near_target(m.megabytes, 16.63, 0.05, "MB/interval");
}

TEST(Presets, MagPlusInheritsShape) {
  const auto config = Presets::mag_plus();
  EXPECT_EQ(config.num_intervals, 903u);  // 4515 s at 5 s intervals
  EXPECT_EQ(config.bytes_per_interval, 256'000'000u);
}

TEST(Presets, LinkUtilizationInPaperRange) {
  // "Our traces use only between 13% and 27% of their respective link
  // capacities."
  for (const auto& config :
       {Presets::mag(), Presets::ind(), Presets::cos()}) {
    const double utilization =
        static_cast<double>(config.bytes_per_interval) /
        static_cast<double>(config.link_capacity_per_interval);
    EXPECT_GE(utilization, 0.13) << config.name;
    EXPECT_LE(utilization, 0.27) << config.name;
  }
}

TEST(Presets, ScaledShrinksEverything) {
  const auto base = Presets::mag();
  const auto small = scaled(base, 0.1);
  EXPECT_NEAR(small.flow_count, base.flow_count / 10.0,
              base.flow_count * 0.01);
  EXPECT_NEAR(static_cast<double>(small.bytes_per_interval),
              static_cast<double>(base.bytes_per_interval) / 10.0,
              static_cast<double>(base.bytes_per_interval) * 0.01);
  EXPECT_EQ(small.num_intervals, base.num_intervals);
}

TEST(Presets, ScaledPreservesUtilization) {
  const auto base = Presets::ind();
  const auto small = scaled(base, 0.05);
  const double base_util = static_cast<double>(base.bytes_per_interval) /
                           static_cast<double>(base.link_capacity_per_interval);
  const double small_util =
      static_cast<double>(small.bytes_per_interval) /
      static_cast<double>(small.link_capacity_per_interval);
  EXPECT_NEAR(small_util, base_util, base_util * 0.02);
}

TEST(Presets, ScaledClampsFactor) {
  const auto same = scaled(Presets::cos(), 5.0);  // clamped to 1.0
  EXPECT_EQ(same.flow_count, Presets::cos().flow_count);
}

TEST(Presets, ScaledKeepsShapeOfFlowCounts) {
  // A 10% MAG still has ~10x more 5-tuple flows than dst-IP groups.
  const auto m = measure(scaled(Presets::mag(), 0.1), 2);
  EXPECT_GT(m.five_tuple, m.dst_ip * 1.8);
  EXPECT_GT(m.dst_ip, m.as_pair);
}

}  // namespace
}  // namespace nd::trace
