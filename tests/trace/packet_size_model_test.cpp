#include "trace/packet_size_model.hpp"

#include <gtest/gtest.h>

namespace nd::trace {
namespace {

TEST(PacketSizeModel, FixedAlwaysFixed) {
  const PacketSizeModel model(PacketSizePattern::kFixed, 500);
  common::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(rng, 1'000'000), 500u);
  }
}

TEST(PacketSizeModel, FixedSizeClamped) {
  const PacketSizeModel too_small(PacketSizePattern::kFixed, 1);
  const PacketSizeModel too_big(PacketSizePattern::kFixed, 9000);
  common::Rng rng(2);
  EXPECT_EQ(too_small.sample(rng, 1'000'000), kMinPacketBytes);
  EXPECT_EQ(too_big.sample(rng, 1'000'000), kMaxPacketBytes);
}

TEST(PacketSizeModel, NeverExceedsRemaining) {
  const PacketSizeModel model(PacketSizePattern::kTrimodal);
  common::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LE(model.sample(rng, 100), 100u);
  }
}

TEST(PacketSizeModel, RuntRemainderEmittedWhole) {
  const PacketSizeModel model(PacketSizePattern::kTrimodal);
  common::Rng rng(4);
  EXPECT_EQ(model.sample(rng, 13), 13u);
  EXPECT_EQ(model.sample(rng, kMinPacketBytes), kMinPacketBytes);
}

TEST(PacketSizeModel, TrimodalMeanNearModel) {
  const PacketSizeModel model(PacketSizePattern::kTrimodal);
  common::Rng rng(5);
  double sum = 0.0;
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) {
    sum += model.sample(rng, 1'000'000'000);
  }
  EXPECT_NEAR(sum / kTrials, model.mean_size(), model.mean_size() * 0.05);
}

TEST(PacketSizeModel, TrimodalWithinLimits) {
  const PacketSizeModel model(PacketSizePattern::kTrimodal);
  common::Rng rng(6);
  for (int i = 0; i < 50'000; ++i) {
    const auto s = model.sample(rng, 1'000'000);
    EXPECT_GE(s, kMinPacketBytes);
    EXPECT_LE(s, kMaxPacketBytes);
  }
}

TEST(PacketSizeModel, BulkSkewsToMtu) {
  const PacketSizeModel model(PacketSizePattern::kBulk);
  common::Rng rng(7);
  int mtu = 0;
  constexpr int kTrials = 10'000;
  for (int i = 0; i < kTrials; ++i) {
    if (model.sample(rng, 1'000'000) == kMaxPacketBytes) ++mtu;
  }
  EXPECT_GT(mtu, kTrials * 3 / 4);
}

TEST(PacketSizeModel, MeanSizeConsistency) {
  EXPECT_DOUBLE_EQ(
      PacketSizeModel(PacketSizePattern::kFixed, 777).mean_size(), 777.0);
  EXPECT_GT(PacketSizeModel(PacketSizePattern::kBulk).mean_size(), 1000.0);
}

}  // namespace
}  // namespace nd::trace
