#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "packet/flow_definition.hpp"
#include "trace/presets.hpp"
#include "trace/synthesizer.hpp"

namespace nd::trace {
namespace {

packet::PacketRecord make_packet(std::uint32_t dst, std::uint32_t size) {
  packet::PacketRecord p;
  p.src_ip = 0x0A000001;
  p.dst_ip = dst;
  p.src_port = 1;
  p.dst_port = 2;
  p.protocol = packet::IpProtocol::kTcp;
  p.size_bytes = size;
  return p;
}

TEST(MinAvgMax, TracksAll) {
  MinAvgMax m;
  m.observe(3);
  m.observe(1);
  m.observe(5);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 5.0);
  EXPECT_DOUBLE_EQ(m.avg(), 3.0);
}

TEST(MinAvgMax, EmptyAvgIsZero) {
  EXPECT_DOUBLE_EQ(MinAvgMax{}.avg(), 0.0);
}

TEST(ExactFlowSizes, AggregatesByKey) {
  std::vector<packet::PacketRecord> packets = {
      make_packet(1, 100), make_packet(1, 200), make_packet(2, 50)};
  const auto sizes =
      exact_flow_sizes(packets, packet::FlowDefinition::destination_ip());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes.at(packet::FlowKey::destination_ip(1)), 300u);
  EXPECT_EQ(sizes.at(packet::FlowKey::destination_ip(2)), 50u);
}

TEST(ExactFlowSizes, PatternFiltered) {
  packet::PacketPattern udp_only;
  udp_only.protocol = packet::IpProtocol::kUdp;
  std::vector<packet::PacketRecord> packets = {make_packet(1, 100)};
  const auto sizes = exact_flow_sizes(
      packets, packet::FlowDefinition::destination_ip(udp_only));
  EXPECT_TRUE(sizes.empty());
}

TEST(TraceStats, AccumulatesIntervals) {
  TraceStats stats(packet::FlowDefinition::destination_ip());
  stats.observe_interval(std::vector<packet::PacketRecord>{
      make_packet(1, 100), make_packet(2, 100)});
  stats.observe_interval(std::vector<packet::PacketRecord>{
      make_packet(1, 400)});
  EXPECT_DOUBLE_EQ(stats.flows_per_interval().min, 1.0);
  EXPECT_DOUBLE_EQ(stats.flows_per_interval().max, 2.0);
  EXPECT_DOUBLE_EQ(stats.bytes_per_interval().avg(), 300.0);
}

TEST(FlowSizeCdf, EmptyInput) {
  EXPECT_TRUE(flow_size_cdf({}, packet::FlowDefinition::five_tuple()).empty());
}

TEST(FlowSizeCdf, MonotoneAndEndsAtOne) {
  auto config = scaled(Presets::cos(), 0.2);
  config.num_intervals = 1;
  TraceSynthesizer synth(config);
  const auto packets = synth.next_interval();
  const auto cdf =
      flow_size_cdf(packets, packet::FlowDefinition::five_tuple(), 40);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].flow_fraction, cdf[i - 1].flow_fraction);
    EXPECT_GE(cdf[i].traffic_fraction, cdf[i - 1].traffic_fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().flow_fraction, 1.0);
  EXPECT_NEAR(cdf.back().traffic_fraction, 1.0, 1e-9);
}

TEST(FlowSizeCdf, HeavyHittersDominateSyntheticTraces) {
  // Figure 6's headline: the top 10% of flows carry >= ~85% of traffic.
  auto config = scaled(Presets::mag(), 0.05);
  config.num_intervals = 1;
  TraceSynthesizer synth(config);
  const auto packets = synth.next_interval();
  const auto cdf =
      flow_size_cdf(packets, packet::FlowDefinition::five_tuple(), 100);
  ASSERT_GE(cdf.size(), 10u);
  EXPECT_GT(cdf[9].traffic_fraction, 0.70);  // top ~10%
}

TEST(FlowSizeCdf, HandCraftedValues) {
  // Two flows: 900 bytes and 100 bytes; top 50% of flows = 90%.
  std::vector<packet::PacketRecord> packets = {make_packet(1, 900),
                                               make_packet(2, 100)};
  const auto cdf =
      flow_size_cdf(packets, packet::FlowDefinition::destination_ip(), 2);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].flow_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[0].traffic_fraction, 0.9);
  EXPECT_DOUBLE_EQ(cdf[1].traffic_fraction, 1.0);
}

}  // namespace
}  // namespace nd::trace
