// Property tests for ThresholdAdaptor (Section 6): randomized usage
// sequences checked against invariants and an independent reference
// implementation of Figure 5's update rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "core/threshold_adaptor.hpp"

namespace nd::core {
namespace {

/// Straight-line transcription of the Section 6 rule, kept independent
/// of the production class so both would have to contain the same bug
/// to agree: 3-interval moving average, power-law increase when above
/// target, patience-gated power-law decrease below it, floored at
/// min_threshold.
class ReferenceAdaptor {
 public:
  explicit ReferenceAdaptor(const ThresholdAdaptorConfig& config)
      : config_(config) {}

  common::ByteCount update(common::ByteCount threshold,
                           std::size_t entries_used, std::size_t capacity) {
    if (capacity == 0) return threshold;
    window_.push_back(static_cast<double>(entries_used) /
                      static_cast<double>(capacity));
    if (window_.size() > config_.usage_window) window_.pop_front();
    double sum = 0.0;
    for (const double u : window_) sum += u;
    smoothed_ = sum / static_cast<double>(window_.size());

    double factor = 1.0;
    if (smoothed_ > config_.target_usage) {
      factor = std::pow(smoothed_ / config_.target_usage, config_.adjust_up);
      quiet_ = 0;
    } else if (++quiet_ >= config_.patience) {
      factor = std::pow(std::max(smoothed_ / config_.target_usage, 1e-3),
                        config_.adjust_down);
    }
    return static_cast<common::ByteCount>(
        std::max(static_cast<double>(threshold) * factor,
                 static_cast<double>(config_.min_threshold)));
  }

  [[nodiscard]] double smoothed() const { return smoothed_; }

 private:
  ThresholdAdaptorConfig config_;
  std::deque<double> window_;
  int quiet_{0};
  double smoothed_{0.0};
};

struct Step {
  std::size_t entries;
  std::size_t capacity;
};

/// Random usage trajectory mixing calm stretches, overload spikes and
/// near-empty intervals, the regimes Figure 5 exercises.
std::vector<Step> random_trajectory(common::Rng& rng, std::size_t length) {
  std::vector<Step> steps;
  steps.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t capacity = 64 + rng.uniform(512);
    const double regime = rng.real();
    double usage = 0.0;
    if (regime < 0.2) {
      usage = rng.real() * 0.2;  // near-empty
    } else if (regime < 0.8) {
      usage = 0.6 + rng.real() * 0.35;  // around target
    } else {
      usage = 0.95 + rng.real() * 0.05;  // overload
    }
    steps.push_back(
        {static_cast<std::size_t>(usage * static_cast<double>(capacity)),
         capacity});
  }
  return steps;
}

TEST(ThresholdAdaptorProperty, MatchesReferenceImplementationExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    common::Rng rng(seed);
    const ThresholdAdaptorConfig config =
        seed % 2 == 0 ? multistage_adaptor() : sample_and_hold_adaptor();
    ThresholdAdaptor adaptor(config);
    ReferenceAdaptor reference(config);
    common::ByteCount threshold = 1'000'000;
    common::ByteCount reference_threshold = threshold;
    for (const Step& step : random_trajectory(rng, 200)) {
      threshold = adaptor.update(threshold, step.entries, step.capacity);
      reference_threshold =
          reference.update(reference_threshold, step.entries, step.capacity);
      ASSERT_EQ(threshold, reference_threshold);
      ASSERT_DOUBLE_EQ(adaptor.smoothed_usage(), reference.smoothed());
    }
  }
}

TEST(ThresholdAdaptorProperty, NeverDropsBelowMinThreshold) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    common::Rng rng(seed);
    ThresholdAdaptorConfig config = multistage_adaptor();
    config.min_threshold = 5'000;
    ThresholdAdaptor adaptor(config);
    common::ByteCount threshold = 6'000;
    for (const Step& step : random_trajectory(rng, 300)) {
      threshold = adaptor.update(threshold, step.entries, step.capacity);
      ASSERT_GE(threshold, config.min_threshold);
    }
  }
}

TEST(ThresholdAdaptorProperty, NoDecreaseWithinPatienceOfAnIncrease) {
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    common::Rng rng(seed);
    const ThresholdAdaptorConfig config = multistage_adaptor();
    ThresholdAdaptor adaptor(config);
    common::ByteCount threshold = 500'000;
    int since_increase = config.patience;  // no increase seen yet
    for (const Step& step : random_trajectory(rng, 300)) {
      const common::ByteCount next =
          adaptor.update(threshold, step.entries, step.capacity);
      if (next > threshold) {
        since_increase = 0;
      } else {
        ++since_increase;
        if (since_increase < config.patience) {
          // Inside the patience window the rule may only hold steady.
          ASSERT_EQ(next, threshold)
              << "decrease " << since_increase
              << " intervals after an increase";
        }
      }
      threshold = next;
    }
  }
}

TEST(ThresholdAdaptorProperty, SmoothedUsageIsWindowedMovingAverage) {
  common::Rng rng(42);
  ThresholdAdaptorConfig config;  // usage_window = 3
  ThresholdAdaptor adaptor(config);
  std::deque<double> window;
  common::ByteCount threshold = 100'000;
  for (const Step& step : random_trajectory(rng, 100)) {
    threshold = adaptor.update(threshold, step.entries, step.capacity);
    window.push_back(static_cast<double>(step.entries) /
                     static_cast<double>(step.capacity));
    if (window.size() > config.usage_window) window.pop_front();
    double sum = 0.0;
    for (const double u : window) sum += u;
    ASSERT_DOUBLE_EQ(adaptor.smoothed_usage(),
                     sum / static_cast<double>(window.size()));
    ASSERT_EQ(adaptor.usage_history().size(), window.size());
  }
}

TEST(ThresholdAdaptorProperty, ResetForgetsHistoryAndPatience) {
  ThresholdAdaptorConfig config;  // patience = 3
  ThresholdAdaptor adaptor(config);
  // Two quiet intervals put the adaptor one step from a decrease...
  (void)adaptor.update(1000, 10, 100);
  (void)adaptor.update(1000, 10, 100);
  ASSERT_EQ(adaptor.intervals_since_increase(), 2);
  // ...but a reset (operator override) restarts the patience clock and
  // the moving-average window from scratch.
  adaptor.reset();
  EXPECT_EQ(adaptor.intervals_since_increase(), 0);
  EXPECT_TRUE(adaptor.usage_history().empty());
  EXPECT_EQ(adaptor.update(1000, 10, 100), 1000u);
  EXPECT_EQ(adaptor.update(1000, 10, 100), 1000u);
  EXPECT_LT(adaptor.update(1000, 10, 100), 1000u);
}

}  // namespace
}  // namespace nd::core
