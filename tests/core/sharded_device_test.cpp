// ShardedDevice contract tests: a 1-shard device reproduces the
// unsharded device bit-for-bit, and for any fixed shard count the merged
// output is deterministic — identical across repeated runs and identical
// with or without a worker pool.
#include "core/sharded_device.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "../support/report_testing.hpp"
#include "common/thread_pool.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"

namespace nd::core {
namespace {

using nd::testing::classify_trace;
using nd::testing::expect_reports_equal;

trace::TraceConfig small_trace() {
  trace::TraceConfig config;
  config.flow_count = 600;
  config.bytes_per_interval = 3'000'000;
  config.num_intervals = 3;
  config.seed = 123;
  return config;
}

MultistageFilterConfig filter_config(std::uint64_t seed) {
  MultistageFilterConfig config;
  config.flow_memory_entries = 128;
  config.depth = 3;
  config.buckets_per_stage = 64;
  config.threshold = 40'000;
  config.seed = seed;
  return config;
}

ShardedDevice::Factory filter_factory() {
  return [](std::uint32_t, std::uint64_t seed) {
    return std::make_unique<MultistageFilter>(filter_config(seed));
  };
}

/// Run the classified trace through a device via observe_batch and
/// collect the per-interval reports.
std::vector<Report> run_batched(MeasurementDevice& device) {
  std::vector<Report> reports;
  for (const auto& interval :
       classify_trace(small_trace(), packet::FlowDefinition::five_tuple())) {
    device.observe_batch(interval);
    reports.push_back(device.end_interval());
  }
  return reports;
}

TEST(ShardedDevice, OneShardMatchesUnshardedExactly) {
  // A 1-shard factory that ignores the derived seed reproduces the
  // unsharded device: routing is trivial and merging is the identity.
  ShardedDeviceConfig config;
  config.shards = 1;
  ShardedDevice sharded(config, [](std::uint32_t, std::uint64_t) {
    return std::make_unique<MultistageFilter>(filter_config(9));
  });
  MultistageFilter unsharded(filter_config(9));

  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  for (const auto& interval : intervals) {
    sharded.observe_batch(interval);
    unsharded.observe_batch(interval);
    expect_reports_equal(sharded.end_interval(), unsharded.end_interval());
  }
  EXPECT_EQ(sharded.packets_processed(), unsharded.packets_processed());
}

TEST(ShardedDevice, OneShardObserveMatchesUnshardedToo) {
  ShardedDeviceConfig config;
  config.shards = 1;
  ShardedDevice sharded(config, [](std::uint32_t, std::uint64_t) {
    return std::make_unique<MultistageFilter>(filter_config(9));
  });
  MultistageFilter unsharded(filter_config(9));

  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  for (const auto& interval : intervals) {
    for (const auto& packet : interval) {
      sharded.observe(packet.key, packet.bytes);
      unsharded.observe(packet.key, packet.bytes);
    }
    expect_reports_equal(sharded.end_interval(), unsharded.end_interval());
  }
}

TEST(ShardedDevice, RepeatedRunsAreDeterministic) {
  auto run_once = [] {
    ShardedDeviceConfig config;
    config.shards = 8;
    config.seed = 4;
    ShardedDevice device(config, filter_factory());
    return run_batched(device);
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_reports_equal(first[i], second[i]);
  }
}

TEST(ShardedDevice, PoolDoesNotChangeOutput) {
  // The determinism contract: the worker pool changes wall clock only.
  // Compare no-pool, 1-worker, and multi-worker runs bit for bit.
  auto run_with_pool = [](common::ThreadPool* pool) {
    ShardedDeviceConfig config;
    config.shards = 5;
    config.seed = 4;
    config.pool = pool;
    ShardedDevice device(config, filter_factory());
    return run_batched(device);
  };
  const auto serial = run_with_pool(nullptr);
  common::ThreadPool one(1);
  const auto single = run_with_pool(&one);
  common::ThreadPool four(4);
  const auto parallel = run_with_pool(&four);
  ASSERT_EQ(serial.size(), single.size());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_reports_equal(serial[i], single[i]);
    expect_reports_equal(serial[i], parallel[i]);
  }
}

TEST(ShardedDevice, ObserveAndBatchAgree) {
  ShardedDeviceConfig config;
  config.shards = 4;
  config.seed = 2;
  ShardedDevice scalar(config, filter_factory());
  ShardedDevice batched(config, filter_factory());
  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  for (const auto& interval : intervals) {
    for (const auto& packet : interval) {
      scalar.observe(packet.key, packet.bytes);
    }
    batched.observe_batch(interval);
    expect_reports_equal(scalar.end_interval(), batched.end_interval());
  }
}

TEST(ShardedDevice, RoutingIsStableAndCoversAllShards) {
  ShardedDeviceConfig config;
  config.shards = 8;
  config.seed = 1;
  ShardedDevice device(config, filter_factory());
  std::set<std::uint32_t> seen;
  for (std::uint64_t fp = 1; fp <= 4096; ++fp) {
    const std::uint32_t shard = device.shard_of(fp);
    ASSERT_LT(shard, device.shard_count());
    EXPECT_EQ(shard, device.shard_of(fp));  // stable per fingerprint
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 8u);  // 4096 flows must touch every shard
}

TEST(ShardedDevice, ShardSeedsAreDistinctPerShard) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t shard = 0; shard < 64; ++shard) {
    seeds.insert(shard_seed(7, shard));
  }
  EXPECT_EQ(seeds.size(), 64u);
  EXPECT_NE(shard_seed(7, 0), shard_seed(8, 0));
}

TEST(ShardedDevice, AccessorsAggregateOverShards) {
  ShardedDeviceConfig config;
  config.shards = 4;
  ShardedDevice device(config, filter_factory());
  EXPECT_EQ(device.shard_count(), 4u);
  EXPECT_EQ(device.flow_memory_capacity(), 4u * 128u);
  EXPECT_EQ(device.name(), "sharded(multistage-filter)x4");
  EXPECT_EQ(device.threshold(), 40'000u);

  device.set_threshold(90'000);
  EXPECT_EQ(device.threshold(), 90'000u);
  for (std::uint32_t s = 0; s < device.shard_count(); ++s) {
    EXPECT_EQ(device.shard(s).threshold(), 90'000u);
  }

  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  device.observe_batch(intervals.front());
  std::uint64_t per_shard_packets = 0;
  for (std::uint32_t s = 0; s < device.shard_count(); ++s) {
    per_shard_packets += device.shard(s).packets_processed();
  }
  EXPECT_EQ(device.packets_processed(), per_shard_packets);
  EXPECT_EQ(device.packets_processed(), intervals.front().size());
}

TEST(ShardedDevice, MergedReportPartitionsTheFlowSpace) {
  // Every reported flow must live on the shard its fingerprint routes
  // to, and no flow may appear twice in the merged report.
  ShardedDeviceConfig config;
  config.shards = 8;
  config.seed = 3;
  ShardedDevice device(config, filter_factory());
  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  device.observe_batch(intervals.front());
  const Report merged = device.end_interval();
  ASSERT_FALSE(merged.flows.empty());
  std::set<std::uint64_t> fingerprints;
  for (const ReportedFlow& flow : merged.flows) {
    EXPECT_TRUE(fingerprints.insert(flow.key.fingerprint()).second)
        << "duplicate flow in merged report";
  }
}

TEST(ShardedDevice, WorksWithSampleAndHoldInner) {
  ShardedDeviceConfig config;
  config.shards = 3;
  config.seed = 6;
  auto factory = [](std::uint32_t, std::uint64_t seed) {
    SampleAndHoldConfig inner;
    inner.flow_memory_entries = 128;
    inner.threshold = 40'000;
    inner.seed = seed;
    return std::make_unique<SampleAndHold>(inner);
  };
  ShardedDevice a(config, factory);
  ShardedDevice b(config, factory);
  const auto first = run_batched(a);
  const auto second = run_batched(b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_reports_equal(first[i], second[i]);
  }
}

}  // namespace
}  // namespace nd::core
