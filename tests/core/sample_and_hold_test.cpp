#include "core/sample_and_hold.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.hpp"

namespace nd::core {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

/// Feed `total` bytes of flow `k` in `packet_size`-byte packets.
void feed(MeasurementDevice& device, const packet::FlowKey& k,
          common::ByteCount total, std::uint32_t packet_size = 500) {
  while (total > 0) {
    const auto size = static_cast<std::uint32_t>(
        std::min<common::ByteCount>(packet_size, total));
    device.observe(k, size);
    total -= size;
  }
}

SampleAndHoldConfig basic_config() {
  SampleAndHoldConfig config;
  config.flow_memory_entries = 1000;
  config.threshold = 100'000;
  config.oversampling = 20.0;
  config.seed = 42;
  return config;
}

TEST(SampleAndHold, LargeFlowDetectedWithHighOversampling) {
  // O = 20 => miss probability e^-20; a flow at the threshold is
  // essentially always found.
  SampleAndHold device(basic_config());
  feed(device, key(1), 100'000);
  const Report report = device.end_interval();
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_EQ(report.flows[0].key, key(1));
}

TEST(SampleAndHold, NeverOverestimates) {
  // Without the sampling correction the estimate is a provable lower
  // bound (Section 5.2 point iii) — the billing-safety property.
  SampleAndHoldConfig config = basic_config();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    config.seed = seed;
    SampleAndHold device(config);
    feed(device, key(1), 250'000, 1500);
    feed(device, key(2), 100'000, 40);
    const Report report = device.end_interval();
    for (const auto& flow : report.flows) {
      const common::ByteCount truth = flow.key == key(1) ? 250'000 : 100'000;
      EXPECT_LE(flow.estimated_bytes, truth) << "seed " << seed;
    }
  }
}

TEST(SampleAndHold, EstimateCloseForLargeFlows) {
  // Expected undercount is 1/p = T/O = 5,000 bytes.
  SampleAndHold device(basic_config());
  feed(device, key(1), 1'000'000);
  const Report report = device.end_interval();
  const ReportedFlow* flow = find_flow(report, key(1));
  ASSERT_NE(flow, nullptr);
  EXPECT_GT(flow->estimated_bytes, 900'000u);
}

TEST(SampleAndHold, MissProbabilityMatchesTheory) {
  // With oversampling O = 1 a flow at the threshold is missed with
  // probability ~ e^-1 = 36.8%.
  SampleAndHoldConfig config = basic_config();
  config.oversampling = 1.0;
  int missed = 0;
  constexpr int kRuns = 400;
  for (int run = 0; run < kRuns; ++run) {
    config.seed = static_cast<std::uint64_t>(run) + 1;
    SampleAndHold device(config);
    feed(device, key(7), config.threshold);
    const Report report = device.end_interval();
    if (find_flow(report, key(7)) == nullptr) ++missed;
  }
  const double miss_rate = static_cast<double>(missed) / kRuns;
  EXPECT_NEAR(miss_rate, std::exp(-1.0), 0.08);
}

TEST(SampleAndHold, SamplingProbabilityTracksThreshold) {
  SampleAndHold device(basic_config());
  EXPECT_DOUBLE_EQ(device.sampling_probability(), 20.0 / 100'000);
  device.set_threshold(200'000);
  EXPECT_DOUBLE_EQ(device.sampling_probability(), 20.0 / 200'000);
}

TEST(SampleAndHold, TinyThresholdCapsProbabilityAtOne) {
  SampleAndHoldConfig config = basic_config();
  config.threshold = 10;
  config.oversampling = 100.0;
  SampleAndHold device(config);
  EXPECT_DOUBLE_EQ(device.sampling_probability(), 1.0);
  device.observe(key(1), 100);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);  // p=1 catches everything
}

TEST(SampleAndHold, MemoryFullDropsSamples) {
  SampleAndHoldConfig config = basic_config();
  config.flow_memory_entries = 4;
  config.threshold = 1000;  // p = 0.02: lots of samples
  SampleAndHold device(config);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    device.observe(key(i), 1000);
  }
  const Report report = device.end_interval();
  EXPECT_EQ(report.flows.size(), 4u);
  EXPECT_GT(device.dropped_samples(), 0u);
}

TEST(SampleAndHold, PreserveEntriesMakesSecondIntervalExact) {
  SampleAndHoldConfig config = basic_config();
  config.preserve = flowmem::PreservePolicy::kPreserve;
  SampleAndHold device(config);

  feed(device, key(1), 500'000);
  const Report first = device.end_interval();
  const ReportedFlow* f1 = find_flow(first, key(1));
  ASSERT_NE(f1, nullptr);
  EXPECT_FALSE(f1->exact);

  feed(device, key(1), 500'000);
  const Report second = device.end_interval();
  const ReportedFlow* f2 = find_flow(second, key(1));
  ASSERT_NE(f2, nullptr);
  EXPECT_TRUE(f2->exact);
  EXPECT_EQ(f2->estimated_bytes, 500'000u);  // exact, not an estimate
}

TEST(SampleAndHold, ClearPolicyForgetsEverything) {
  SampleAndHold device(basic_config());
  feed(device, key(1), 500'000);
  (void)device.end_interval();
  const Report second = device.end_interval();
  EXPECT_TRUE(second.flows.empty());
}

TEST(SampleAndHold, EarlyRemovalPrunesSmallNewEntries) {
  SampleAndHoldConfig config = basic_config();
  config.preserve = flowmem::PreservePolicy::kEarlyRemoval;
  config.early_removal_fraction = 0.15;
  config.threshold = 100'000;
  config.oversampling = 2000.0;  // sample aggressively
  SampleAndHold device(config);

  feed(device, key(1), 1'000);    // tiny: below R = 15,000
  feed(device, key(2), 50'000);   // medium: above R, below T
  feed(device, key(3), 200'000);  // large: above T
  (void)device.end_interval();

  // Who survived into the next interval? Feed nothing and report.
  const Report second = device.end_interval();
  EXPECT_EQ(find_flow(second, key(1)), nullptr);
  EXPECT_NE(find_flow(second, key(2)), nullptr);
  EXPECT_NE(find_flow(second, key(3)), nullptr);
}

TEST(SampleAndHold, CorrectionAddsExpectedUndercount) {
  SampleAndHoldConfig config = basic_config();
  config.add_sampling_correction = true;
  SampleAndHold with(config);
  config.add_sampling_correction = false;
  config.seed = 42;
  SampleAndHold without(config);

  feed(with, key(1), 500'000);
  feed(without, key(1), 500'000);
  const auto rw = with.end_interval();
  const auto rwo = without.end_interval();
  const auto* fw = find_flow(rw, key(1));
  const auto* fwo = find_flow(rwo, key(1));
  ASSERT_TRUE(fw && fwo);
  // Same seed, same samples: corrected = uncorrected + 1/p = + 5,000.
  EXPECT_EQ(fw->estimated_bytes, fwo->estimated_bytes + 5'000);
}

TEST(SampleAndHold, ApproximateSamplingStillWorks) {
  SampleAndHoldConfig config = basic_config();
  config.byte_exact_sampling = false;  // p*s approximation
  SampleAndHold device(config);
  feed(device, key(1), 300'000);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);
}

TEST(SampleAndHold, PacketAndAccessCounters) {
  SampleAndHold device(basic_config());
  feed(device, key(1), 10'000, 500);  // 20 packets
  EXPECT_EQ(device.packets_processed(), 20u);
  EXPECT_GE(device.memory_accesses(), 20u);  // one lookup per packet
  EXPECT_EQ(device.name(), "sample-and-hold");
  EXPECT_EQ(device.flow_memory_capacity(), 1000u);
}

TEST(SampleAndHold, ReportCarriesIntervalAndThreshold) {
  SampleAndHold device(basic_config());
  const Report r0 = device.end_interval();
  const Report r1 = device.end_interval();
  EXPECT_EQ(r0.interval, 0u);
  EXPECT_EQ(r1.interval, 1u);
  EXPECT_EQ(r0.threshold, 100'000u);
}

class SampleAndHoldOversampling : public ::testing::TestWithParam<double> {};

TEST_P(SampleAndHoldOversampling, ErrorShrinksWithO) {
  // Property: average undercount for a large flow ~ T/O.
  const double oversampling = GetParam();
  SampleAndHoldConfig config = basic_config();
  config.oversampling = oversampling;
  double undercount_sum = 0.0;
  constexpr int kRuns = 60;
  constexpr common::ByteCount kFlow = 400'000;
  for (int run = 0; run < kRuns; ++run) {
    config.seed = static_cast<std::uint64_t>(run) * 31 + 1;
    SampleAndHold device(config);
    feed(device, key(1), kFlow, 100);
    const Report report = device.end_interval();
    const auto* flow = find_flow(report, key(1));
    undercount_sum += static_cast<double>(
        kFlow - (flow ? flow->estimated_bytes : 0));
  }
  const double avg_undercount = undercount_sum / kRuns;
  const double expected = static_cast<double>(config.threshold) /
                          oversampling;  // 1/p
  EXPECT_LT(avg_undercount, expected * 2.5 + 500.0);
  EXPECT_GT(avg_undercount, expected * 0.3 - 500.0);
}

INSTANTIATE_TEST_SUITE_P(Oversampling, SampleAndHoldOversampling,
                         ::testing::Values(2.0, 4.0, 10.0, 20.0, 50.0));

}  // namespace
}  // namespace nd::core
