// Shard->core affinity contract: routing every shard to a fixed pinned
// worker (and first-touch constructing the replica there) changes wall
// clock and memory locality only — the merged reports must stay
// bit-identical to the shared-queue pool, the inline (no pool) device,
// and the per-packet observe path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../support/report_testing.hpp"
#include "common/thread_pool.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "core/sharded_device.hpp"

namespace nd::core {
namespace {

using nd::testing::classify_trace;
using nd::testing::expect_reports_equal;

trace::TraceConfig affinity_trace() {
  trace::TraceConfig config;
  config.flow_count = 800;
  config.bytes_per_interval = 4'000'000;
  config.num_intervals = 3;
  config.seed = 321;
  return config;
}

ShardedDevice::Factory filter_factory() {
  return [](std::uint32_t, std::uint64_t seed) {
    MultistageFilterConfig config;
    config.flow_memory_entries = 96;
    config.depth = 3;
    config.buckets_per_stage = 64;
    config.threshold = 50'000;
    config.seed = seed;
    return std::make_unique<MultistageFilter>(config);
  };
}

std::vector<Report> run_batched(MeasurementDevice& device) {
  std::vector<Report> reports;
  for (const auto& interval : classify_trace(
           affinity_trace(), packet::FlowDefinition::five_tuple())) {
    device.observe_batch(interval);
    reports.push_back(device.end_interval());
  }
  return reports;
}

ShardedDeviceConfig sharded_config(common::ThreadPool* pool,
                                   bool affinity) {
  ShardedDeviceConfig config;
  config.shards = 4;
  config.seed = 9;
  config.pool = pool;
  config.shard_affinity = affinity;
  return config;
}

TEST(ShardAffinity, AffinityDoesNotChangeMergedReports) {
  common::ThreadPool shared_pool(2);
  common::ThreadPool affine_pool(2);
  ShardedDevice shared(sharded_config(&shared_pool, false),
                       filter_factory());
  ShardedDevice affine(sharded_config(&affine_pool, true),
                       filter_factory());
  const auto shared_reports = run_batched(shared);
  const auto affine_reports = run_batched(affine);
  ASSERT_EQ(shared_reports.size(), affine_reports.size());
  for (std::size_t i = 0; i < shared_reports.size(); ++i) {
    expect_reports_equal(shared_reports[i], affine_reports[i]);
  }
  EXPECT_EQ(shared.packets_processed(), affine.packets_processed());
  EXPECT_EQ(shared.memory_accesses(), affine.memory_accesses());
}

TEST(ShardAffinity, AffinityWithPinnedPoolMatchesInlineDevice) {
  // The full production stack — pinned workers + shard affinity +
  // first-touch construction — against no pool at all.
  common::ThreadPoolConfig pool_config;
  pool_config.threads = 2;
  pool_config.pin = true;
  common::ThreadPool pinned_pool(pool_config);
  ShardedDevice pinned(sharded_config(&pinned_pool, true),
                       filter_factory());
  ShardedDevice inline_device(sharded_config(nullptr, false),
                              filter_factory());
  const auto pinned_reports = run_batched(pinned);
  const auto inline_reports = run_batched(inline_device);
  ASSERT_EQ(pinned_reports.size(), inline_reports.size());
  for (std::size_t i = 0; i < pinned_reports.size(); ++i) {
    expect_reports_equal(pinned_reports[i], inline_reports[i]);
  }
}

TEST(ShardAffinity, AffinityWithoutPoolDegradesToInline) {
  // shard_affinity with no (or an empty) pool must be a no-op, not a
  // crash: construction and fan-out run on the caller.
  ShardedDevice no_pool(sharded_config(nullptr, true), filter_factory());
  common::ThreadPool empty_pool(0);
  ShardedDevice zero_workers(sharded_config(&empty_pool, true),
                             filter_factory());
  const auto a = run_batched(no_pool);
  const auto b = run_batched(zero_workers);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_reports_equal(a[i], b[i]);
  }
}

TEST(ShardAffinity, ObservePathMatchesBatchedUnderAffinity) {
  common::ThreadPool pool(2);
  ShardedDevice batched(sharded_config(&pool, true), filter_factory());
  ShardedDevice scalar(sharded_config(nullptr, false), filter_factory());
  for (const auto& interval : classify_trace(
           affinity_trace(), packet::FlowDefinition::five_tuple())) {
    batched.observe_batch(interval);
    for (const auto& packet : interval) {
      scalar.observe(packet.key, packet.bytes);
    }
    expect_reports_equal(batched.end_interval(), scalar.end_interval());
  }
}

TEST(ShardAffinity, SampleAndHoldInnerIsAffinityInvariantToo) {
  common::ThreadPool pool(3);
  const auto factory = [](std::uint32_t, std::uint64_t seed) {
    SampleAndHoldConfig config;
    config.flow_memory_entries = 128;
    config.threshold = 50'000;
    config.seed = seed;
    return std::make_unique<SampleAndHold>(config);
  };
  ShardedDevice affine(sharded_config(&pool, true), factory);
  ShardedDevice inline_device(sharded_config(nullptr, false), factory);
  const auto a = run_batched(affine);
  const auto b = run_batched(inline_device);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_reports_equal(a[i], b[i]);
  }
}

}  // namespace
}  // namespace nd::core
