#include "core/multi_monitor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baseline/exact_oracle.hpp"
#include "core/multistage_filter.hpp"

namespace nd::core {
namespace {

using std::chrono_literals::operator""s;

constexpr common::TimestampNs kSecond = 1'000'000'000ULL;

packet::PacketRecord packet_at(common::TimestampNs ts, std::uint32_t src,
                               std::uint32_t dst, std::uint32_t size) {
  packet::PacketRecord p;
  p.timestamp_ns = ts;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = 1;
  p.dst_port = 2;
  p.protocol = packet::IpProtocol::kTcp;
  p.size_bytes = size;
  return p;
}

TEST(MultiDefinitionMonitor, InstancesSeeTheSameStream) {
  MultiDefinitionMonitor monitor(5s);
  monitor.add_instance("by-dst", std::make_unique<baseline::ExactOracle>(),
                       packet::FlowDefinition::destination_ip());
  monitor.add_instance("by-5tuple",
                       std::make_unique<baseline::ExactOracle>(),
                       packet::FlowDefinition::five_tuple());
  ASSERT_EQ(monitor.instances(), 2u);

  // Two sources to one destination.
  monitor.observe(packet_at(0, 1, 100, 500));
  monitor.observe(packet_at(1000, 2, 100, 300));
  const auto all = monitor.finish();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].label, "by-dst");
  ASSERT_EQ(all[0].reports.size(), 1u);
  // dst-IP view: one aggregate of 800 bytes.
  ASSERT_EQ(all[0].reports[0].flows.size(), 1u);
  EXPECT_EQ(all[0].reports[0].flows[0].estimated_bytes, 800u);
  // 5-tuple view: two flows.
  EXPECT_EQ(all[1].reports[0].flows.size(), 2u);
  EXPECT_EQ(monitor.packets_observed(), 2u);
}

TEST(MultiDefinitionMonitor, SharedIntervalClock) {
  MultiDefinitionMonitor monitor(5s);
  monitor.add_instance("a", std::make_unique<baseline::ExactOracle>(),
                       packet::FlowDefinition::destination_ip());
  monitor.add_instance("b", std::make_unique<baseline::ExactOracle>(),
                       packet::FlowDefinition::five_tuple());
  monitor.observe(packet_at(1 * kSecond, 1, 2, 100));
  monitor.observe(packet_at(7 * kSecond, 1, 2, 100));  // closes [0,5)
  const auto drained = monitor.drain_reports();
  EXPECT_EQ(drained[0].reports.size(), 1u);
  EXPECT_EQ(drained[1].reports.size(), 1u);
  EXPECT_EQ(drained[0].reports[0].interval,
            drained[1].reports[0].interval);
}

TEST(MultiDefinitionMonitor, DrainIsIncremental) {
  MultiDefinitionMonitor monitor(1s);
  monitor.add_instance("a", std::make_unique<baseline::ExactOracle>(),
                       packet::FlowDefinition::destination_ip());
  monitor.observe(packet_at(0, 1, 2, 10));
  monitor.observe(packet_at(1 * kSecond, 1, 2, 10));
  EXPECT_EQ(monitor.drain_reports()[0].reports.size(), 1u);
  EXPECT_TRUE(monitor.drain_reports()[0].reports.empty());  // drained
  EXPECT_EQ(monitor.finish()[0].reports.size(), 1u);        // the partial
}

TEST(MultiDefinitionMonitor, MixedDeviceTypes) {
  MultiDefinitionMonitor monitor(1s);
  MultistageFilterConfig filter_config;
  filter_config.flow_memory_entries = 64;
  filter_config.depth = 2;
  filter_config.buckets_per_stage = 64;
  filter_config.threshold = 500;
  monitor.add_instance("filter",
                       std::make_unique<MultistageFilter>(filter_config),
                       packet::FlowDefinition::destination_ip());
  monitor.add_instance("oracle", std::make_unique<baseline::ExactOracle>(),
                       packet::FlowDefinition::destination_ip());
  monitor.observe(packet_at(0, 1, 9, 600));  // above the filter threshold
  monitor.observe(packet_at(10, 1, 8, 100));  // below
  const auto all = monitor.finish();
  EXPECT_EQ(all[0].reports[0].flows.size(), 1u);  // filter: heavy only
  EXPECT_EQ(all[1].reports[0].flows.size(), 2u);  // oracle: everything
}

}  // namespace
}  // namespace nd::core
