#include "core/leaky_bucket.hpp"

#include <gtest/gtest.h>

namespace nd::core {
namespace {

constexpr common::TimestampNs kSecond = 1'000'000'000ULL;

LeakyBucketDescriptor descriptor(double rate, common::ByteCount burst) {
  LeakyBucketDescriptor d;
  d.rate_bytes_per_sec = rate;
  d.burst_bytes = burst;
  return d;
}

TEST(LeakyBucketMeter, BurstWithinDepthConforms) {
  LeakyBucketMeter meter(descriptor(1000.0, 5000), 0);
  EXPECT_TRUE(meter.offer(0, 5000));  // exactly the burst depth
  EXPECT_EQ(meter.excess_bytes(), 0u);
}

TEST(LeakyBucketMeter, BurstBeyondDepthViolates) {
  LeakyBucketMeter meter(descriptor(1000.0, 5000), 0);
  EXPECT_TRUE(meter.offer(0, 5000));
  EXPECT_FALSE(meter.offer(0, 1));  // bucket empty, no time passed
  EXPECT_EQ(meter.excess_bytes(), 1u);
}

TEST(LeakyBucketMeter, TokensRefillAtRate) {
  LeakyBucketMeter meter(descriptor(1000.0, 5000), 0);
  EXPECT_TRUE(meter.offer(0, 5000));
  // After 2 seconds, 2000 tokens have accrued.
  EXPECT_TRUE(meter.offer(2 * kSecond, 2000));
  EXPECT_FALSE(meter.offer(2 * kSecond, 1));
}

TEST(LeakyBucketMeter, RefillCapsAtBurst) {
  LeakyBucketMeter meter(descriptor(1000.0, 5000), 0);
  EXPECT_TRUE(meter.offer(0, 5000));
  // An hour passes; tokens cap at the burst depth, not rate*3600.
  EXPECT_TRUE(meter.offer(3600 * kSecond, 5000));
  EXPECT_FALSE(meter.offer(3600 * kSecond, 1));
}

TEST(LeakyBucketMeter, NonConformingDoesNotConsumeTokens) {
  LeakyBucketMeter meter(descriptor(1000.0, 1000), 0);
  EXPECT_FALSE(meter.offer(0, 2000));  // too big: rejected
  EXPECT_TRUE(meter.offer(0, 1000));   // tokens untouched by rejection
}

TEST(LeakyBucketMeter, SustainedRateAtDescriptorConforms) {
  LeakyBucketMeter meter(descriptor(1'000'000.0, 10'000), 0);
  // 1 MB/s offered as 1000-byte packets every millisecond: conforming.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(meter.offer(i * 1'000'000ULL, 1000)) << i;
  }
  EXPECT_EQ(meter.excess_bytes(), 0u);
}

TEST(LeakyBucketMeter, SustainedRateAboveDescriptorViolates) {
  LeakyBucketMeter meter(descriptor(1'000'000.0, 10'000), 0);
  // 2 MB/s offered: roughly half the bytes are excess.
  common::ByteCount offered = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    (void)meter.offer(i * 1'000'000ULL, 2000);
    offered += 2000;
  }
  EXPECT_GT(meter.excess_bytes(), offered / 3);
  EXPECT_LT(meter.excess_bytes(), offered * 2 / 3);
}

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

RateViolationDetectorConfig detector_config() {
  RateViolationDetectorConfig config;
  config.descriptor = descriptor(1'000'000.0, 20'000);  // 1 MB/s
  config.byte_sampling_probability = 1e-3;
  config.max_tracked_flows = 1024;
  config.seed = 11;
  return config;
}

TEST(RateViolationDetector, FlagsTheSpeeder) {
  RateViolationDetector detector(detector_config());
  // Flow 1: 5 MB/s for 0.2 s. Flow 2: 0.2 MB/s for 1 s.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    detector.observe(key(1), i * 200'000ULL, 1000);   // 5x descriptor
    detector.observe(key(2), i * 1'000'000ULL, 200);  // conforming
  }
  const auto violations = detector.end_epoch();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].flow, key(1));
  EXPECT_GT(violations[0].excess_bytes, 500'000u);
  EXPECT_NEAR(static_cast<double>(violations[0].observed_bytes), 1e6,
              2e4);  // held almost immediately at p=1e-3
}

TEST(RateViolationDetector, IgnoresUnsampledMice) {
  RateViolationDetectorConfig config = detector_config();
  config.byte_sampling_probability = 1e-9;  // effectively never sample
  RateViolationDetector detector(config);
  for (std::uint64_t i = 0; i < 100; ++i) {
    detector.observe(key(1), i, 100);
  }
  EXPECT_EQ(detector.tracked_flows(), 0u);
  EXPECT_TRUE(detector.end_epoch().empty());
}

TEST(RateViolationDetector, TableCapacityRespected) {
  RateViolationDetectorConfig config = detector_config();
  config.byte_sampling_probability = 1.0;
  config.max_tracked_flows = 8;
  RateViolationDetector detector(config);
  for (std::uint32_t f = 0; f < 100; ++f) {
    detector.observe(key(f), 0, 1000);
  }
  EXPECT_EQ(detector.tracked_flows(), 8u);
}

TEST(RateViolationDetector, EpochClearsState) {
  RateViolationDetectorConfig config = detector_config();
  config.byte_sampling_probability = 1.0;
  RateViolationDetector detector(config);
  detector.observe(key(1), 0, 100'000);  // violates instantly
  EXPECT_FALSE(detector.end_epoch().empty());
  EXPECT_EQ(detector.tracked_flows(), 0u);
  EXPECT_TRUE(detector.end_epoch().empty());
}

TEST(RateViolationDetector, ViolationsSortedByExcess) {
  RateViolationDetectorConfig config = detector_config();
  config.byte_sampling_probability = 1.0;
  RateViolationDetector detector(config);
  detector.observe(key(1), 0, 50'000);
  detector.observe(key(2), 0, 500'000);
  const auto violations = detector.end_epoch();
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].flow, key(2));
  EXPECT_GT(violations[0].excess_bytes, violations[1].excess_bytes);
}

}  // namespace
}  // namespace nd::core
