// Per-shard adaptive thresholds in ShardedDevice: each replica runs a
// private ThresholdAdaptor on its own entries/capacity, so thresholds
// diverge on skewed traffic, operator overrides compose with adaptation
// through the baseline vector, and AdaptiveDevice delegates to the
// sharded path instead of clobbering heterogeneous thresholds.
//
// Suite names start with "ShardedAdaptive" so tools/tsan_check.cmake's
// `-R "...|Sharded|..."` filter runs them under ThreadSanitizer.
#include "core/sharded_device.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "../support/differential_harness.hpp"
#include "common/thread_pool.hpp"
#include "core/adaptive_device.hpp"
#include "core/multistage_filter.hpp"
#include "trace/presets.hpp"

namespace nd::core {
namespace {

using nd::testing::DifferentialTrace;
using nd::testing::make_differential_trace;

constexpr std::size_t kTotalEntries = 512;
constexpr std::uint32_t kTotalBuckets = 1024;
constexpr common::ByteCount kInitialThreshold = 50'000;

MultistageFilterConfig split_filter_config(std::uint32_t shards,
                                           std::uint64_t seed) {
  MultistageFilterConfig config;
  config.flow_memory_entries = kTotalEntries / shards;
  config.depth = 3;
  config.buckets_per_stage = kTotalBuckets / shards;
  config.threshold = kInitialThreshold;
  config.conservative_update = true;
  config.shielding = true;
  config.preserve = flowmem::PreservePolicy::kPreserve;
  config.seed = seed;
  return config;
}

ShardedDevice::Factory split_factory(std::uint32_t shards) {
  return [shards](std::uint32_t, std::uint64_t seed) {
    return std::make_unique<MultistageFilter>(split_filter_config(shards, seed));
  };
}

std::unique_ptr<ShardedDevice> make_adaptive(std::uint32_t shards,
                                             std::uint64_t seed = 1) {
  ShardedDeviceConfig config;
  config.shards = shards;
  config.seed = seed;
  config.adaptor = multistage_adaptor();
  return std::make_unique<ShardedDevice>(config, split_factory(shards));
}

/// Synthesizes a packet stream whose load is deliberately skewed toward
/// whichever shard a few chosen keys route to: a handful of elephant
/// keys all landing on one shard, plus uniform background flows.
std::vector<packet::ClassifiedPacket> skewed_interval(
    const ShardedDevice& device, std::uint32_t hot_shard) {
  std::vector<packet::ClassifiedPacket> packets;
  std::uint32_t found = 0;
  for (std::uint32_t ip = 1; found < 200; ++ip) {
    const auto key = packet::FlowKey::destination_ip(ip);
    if (device.shard_of(key.fingerprint()) != hot_shard) continue;
    ++found;
    // Every hot-shard flow is an elephant; it will demand entries there.
    for (int burst = 0; burst < 4; ++burst) {
      packets.push_back(packet::ClassifiedPacket::from(key, 30'000));
    }
  }
  for (std::uint32_t ip = 100'000; ip < 100'400; ++ip) {
    packets.push_back(packet::ClassifiedPacket::from(
        packet::FlowKey::destination_ip(ip), 2'000));
  }
  return packets;
}

TEST(ShardedAdaptive, ThresholdsDivergeOnSkewedTraffic) {
  const auto device = make_adaptive(4);
  ASSERT_TRUE(device->adaptive());
  const auto interval = skewed_interval(*device, 0);
  Report report;
  for (int i = 0; i < 12; ++i) {
    device->observe_batch(interval);
    report = device->end_interval();
  }
  ASSERT_EQ(report.shards.size(), 4u);
  // The flooded shard must have adapted its threshold above the idle
  // ones, and the merged report's threshold is the effective maximum.
  common::ByteCount max_threshold = 0;
  std::set<common::ByteCount> distinct;
  for (const ShardStatus& shard : report.shards) {
    distinct.insert(shard.threshold);
    max_threshold = std::max(max_threshold, shard.threshold);
  }
  EXPECT_GT(distinct.size(), 1u) << "thresholds stayed uniform";
  EXPECT_EQ(report.threshold, max_threshold);
  EXPECT_EQ(effective_threshold(report), max_threshold);
  EXPECT_GE(report.shards[0].threshold, report.shards[1].threshold);
  EXPECT_EQ(device->name(), "sharded-adaptive(multistage-filter)x4");
}

TEST(ShardedAdaptive, GlobalOverrideResetsBaselineAndAdaptors) {
  const auto device = make_adaptive(4);
  const auto interval = skewed_interval(*device, 0);
  for (int i = 0; i < 12; ++i) {
    device->observe_batch(interval);
    (void)device->end_interval();
  }
  ASSERT_FALSE(device->shard_adaptor(0).usage_history().empty());

  device->set_threshold(75'000);
  for (std::uint32_t s = 0; s < device->shard_count(); ++s) {
    EXPECT_EQ(device->shard(s).threshold(), 75'000u);
    EXPECT_EQ(device->baseline_thresholds()[s], 75'000u);
    // The adaptors restart from the override: no stale usage history,
    // no leftover patience credit from the pre-override regime.
    EXPECT_TRUE(device->shard_adaptor(s).usage_history().empty());
    EXPECT_EQ(device->shard_adaptor(s).intervals_since_increase(), 0);
  }
  EXPECT_EQ(device->threshold(), 75'000u);
}

TEST(ShardedAdaptive, PerShardOverrideComposesWithAdaptation) {
  const auto device = make_adaptive(4);
  device->set_shard_threshold(2, 10'000);
  EXPECT_EQ(device->shard(2).threshold(), 10'000u);
  EXPECT_EQ(device->baseline_thresholds()[2], 10'000u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    if (s != 2) {
      EXPECT_EQ(device->shard(s).threshold(), kInitialThreshold);
      EXPECT_EQ(device->baseline_thresholds()[s], kInitialThreshold);
    }
  }
  // Adaptation keeps running on the overridden shard, from the new
  // baseline: flood it and the threshold must move off the override.
  const auto interval = skewed_interval(*device, 2);
  for (int i = 0; i < 8; ++i) {
    device->observe_batch(interval);
    (void)device->end_interval();
  }
  EXPECT_NE(device->shard(2).threshold(), 10'000u);
}

TEST(ShardedAdaptive, UniformDeviceReportsInstantaneousShardUsage) {
  ShardedDeviceConfig config;
  config.shards = 4;
  ShardedDevice device(config, split_factory(4));
  EXPECT_FALSE(device.adaptive());
  const auto interval = skewed_interval(device, 1);
  device.observe_batch(interval);
  const Report report = device.end_interval();
  ASSERT_EQ(report.shards.size(), 4u);
  for (const ShardStatus& shard : report.shards) {
    EXPECT_EQ(shard.threshold, kInitialThreshold);
    EXPECT_EQ(shard.next_threshold, kInitialThreshold);
    EXPECT_EQ(shard.capacity, kTotalEntries / 4);
    EXPECT_DOUBLE_EQ(shard.smoothed_usage,
                     static_cast<double>(shard.entries_used) /
                         static_cast<double>(shard.capacity));
  }
}

TEST(ShardedAdaptive, AdaptiveDeviceDelegatesToShardedPath) {
  ShardedDeviceConfig config;
  config.shards = 4;
  AdaptiveDevice device(
      std::make_unique<ShardedDevice>(config, split_factory(4)),
      multistage_adaptor());
  ASSERT_NE(device.sharded(), nullptr);
  EXPECT_TRUE(device.sharded()->adaptive());
  EXPECT_NE(device.name().find("sharded-adaptive"), std::string::npos);

  const auto interval = skewed_interval(*device.sharded(), 0);
  Report report;
  for (int i = 0; i < 12; ++i) {
    device.observe_batch(interval);
    report = device.end_interval();
  }
  // Delegation means heterogeneous thresholds survive end_interval: the
  // wrapper must not overwrite them with one global value.
  ASSERT_EQ(report.shards.size(), 4u);
  std::set<common::ByteCount> distinct;
  for (const ShardStatus& shard : report.shards) {
    distinct.insert(shard.next_threshold);
  }
  EXPECT_GT(distinct.size(), 1u);
  std::set<common::ByteCount> live;
  for (std::uint32_t s = 0; s < 4; ++s) {
    live.insert(device.sharded()->shard(s).threshold());
  }
  EXPECT_GT(live.size(), 1u) << "wrapper clobbered per-shard thresholds";
}

// ---------------------------------------------------------------------
// Satellite 3: shard-count sweep on the paper's IND and COS presets.
// For shards in {1, 2, 4, 8}, per-shard smoothed usage must converge
// into [target - 10pp, target + 5pp] and no true heavy hitter above the
// effective (max per-shard) threshold may be missed after warmup.
// ---------------------------------------------------------------------

constexpr std::uint32_t kSweepIntervals = 40;
constexpr std::uint32_t kSweepWarmup = 10;
constexpr std::size_t kSweepClosing = 5;
constexpr double kBandLo = 0.80;
constexpr double kBandHi = 0.95;
/// Sweep devices get a constant 256-entry budget *per shard*: the usage
/// granularity (1/capacity) and the flow-churn noise must stay well
/// below the band width at every shard count.
constexpr std::size_t kSweepShardEntries = 256;
constexpr std::uint32_t kSweepShardBuckets = 2048;

std::unique_ptr<ShardedDevice> make_sweep_device(std::uint32_t shards) {
  ShardedDeviceConfig config;
  config.shards = shards;
  config.seed = 1;
  config.adaptor = nd::testing::damped_multistage_adaptor();
  return std::make_unique<ShardedDevice>(
      config, [](std::uint32_t, std::uint64_t seed) {
        MultistageFilterConfig inner;
        inner.flow_memory_entries = kSweepShardEntries;
        inner.depth = 3;
        inner.buckets_per_stage = kSweepShardBuckets;
        inner.threshold = 50'000;
        inner.conservative_update = true;
        inner.shielding = true;
        inner.preserve = flowmem::PreservePolicy::kPreserve;
        inner.seed = seed;
        return std::make_unique<MultistageFilter>(inner);
      });
}

const DifferentialTrace& sweep_trace(const char* preset) {
  // Full-size presets: even 8-way sharding must leave each shard a flow
  // population several times its entry capacity — the adaptor needs a
  // dense size distribution around the equilibrium threshold to steer
  // usage with sub-band granularity.
  auto make = [](trace::TraceConfig config) {
    config.num_intervals = kSweepIntervals;
    return make_differential_trace(config,
                                   packet::FlowDefinition::five_tuple());
  };
  if (std::string_view(preset) == "ind") {
    static const DifferentialTrace trace = make(trace::Presets::ind());
    return trace;
  }
  static const DifferentialTrace trace = make(trace::Presets::cos());
  return trace;
}

void run_sweep(const char* preset) {
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(std::string(preset) + ", shards=" +
                 std::to_string(shards));
    const DifferentialTrace& trace = sweep_trace(preset);
    const auto device = make_sweep_device(shards);
    std::vector<Report> reports;
    std::size_t eligible = 0;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < trace.intervals.size(); ++i) {
      device->observe_batch(trace.intervals[i]);
      reports.push_back(device->end_interval());
      if (i + 1 < kSweepWarmup) continue;
      SCOPED_TRACE("interval " + std::to_string(i));
      ++eligible;
      // No heavy hitter above the effective threshold may be missed.
      // The deterministic guarantee assumes the flow memory did not
      // fill up (see any_shard_overflowed); adaptation keeps overflow
      // rare, and the vacuity check below keeps this from silently
      // skipping every interval.
      if (!nd::testing::any_shard_overflowed(reports.back())) {
        ++checked;
        nd::testing::expect_no_false_negatives(reports.back(),
                                               trace.truth[i]);
      }
    }
    EXPECT_GE(2 * checked, eligible)
        << "flow memory overflowed in most post-warmup intervals; the "
           "no-false-negative check barely ran";
    nd::testing::expect_mean_usage_in_band(reports, kSweepClosing, kBandLo,
                                           kBandHi);
  }
}

TEST(ShardedAdaptiveSweep, IndPresetConvergesAtEveryShardCount) {
  run_sweep("ind");
}

TEST(ShardedAdaptiveSweep, CosPresetConvergesAtEveryShardCount) {
  run_sweep("cos");
}

}  // namespace
}  // namespace nd::core
