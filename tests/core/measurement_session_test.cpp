#include "core/measurement_session.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baseline/exact_oracle.hpp"
#include "core/multistage_filter.hpp"

namespace nd::core {
namespace {

using std::chrono_literals::operator""s;

constexpr common::TimestampNs kSecond = 1'000'000'000ULL;

packet::PacketRecord packet_at(common::TimestampNs ts, std::uint32_t dst,
                               std::uint32_t size) {
  packet::PacketRecord p;
  p.timestamp_ns = ts;
  p.src_ip = 1;
  p.dst_ip = dst;
  p.protocol = packet::IpProtocol::kUdp;
  p.size_bytes = size;
  return p;
}

MeasurementSession oracle_session(common::IntervalDuration duration = 5s) {
  return MeasurementSession(std::make_unique<baseline::ExactOracle>(),
                            packet::FlowDefinition::destination_ip(),
                            duration);
}

TEST(MeasurementSession, NoReportsBeforeBoundary) {
  auto session = oracle_session();
  session.observe(packet_at(1 * kSecond, 7, 100));
  session.observe(packet_at(4 * kSecond, 7, 100));
  EXPECT_TRUE(session.drain_reports().empty());
  EXPECT_EQ(session.intervals_closed(), 0u);
}

TEST(MeasurementSession, BoundaryClosesInterval) {
  auto session = oracle_session();
  session.observe(packet_at(1 * kSecond, 7, 100));
  session.observe(packet_at(6 * kSecond, 7, 50));  // crosses 5 s boundary
  const auto reports = session.drain_reports();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].flows.size(), 1u);
  EXPECT_EQ(reports[0].flows[0].estimated_bytes, 100u);
}

TEST(MeasurementSession, BoundariesAnchoredToClock) {
  // First packet at t=7s: interval [5s,10s); a packet at 9.9s stays in
  // it, one at 10s closes it.
  auto session = oracle_session();
  session.observe(packet_at(7 * kSecond, 1, 10));
  session.observe(packet_at(9 * kSecond + 900'000'000, 1, 10));
  EXPECT_TRUE(session.drain_reports().empty());
  session.observe(packet_at(10 * kSecond, 1, 10));
  EXPECT_EQ(session.drain_reports().size(), 1u);
}

TEST(MeasurementSession, IdleGapClosesEveryElapsedInterval) {
  auto session = oracle_session();
  session.observe(packet_at(0, 1, 10));
  session.observe(packet_at(21 * kSecond, 1, 10));  // 4 boundaries passed
  const auto reports = session.drain_reports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].flows.size(), 1u);
  EXPECT_TRUE(reports[1].flows.empty());
  EXPECT_TRUE(reports[3].flows.empty());
}

TEST(MeasurementSession, FinishFlushesPartialInterval) {
  auto session = oracle_session();
  session.observe(packet_at(2 * kSecond, 9, 400));
  const auto reports = session.finish();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].flows[0].estimated_bytes, 400u);
  EXPECT_EQ(session.intervals_closed(), 1u);
}

TEST(MeasurementSession, FinishOnEmptySessionYieldsNothing) {
  auto session = oracle_session();
  EXPECT_TRUE(session.finish().empty());
}

TEST(MeasurementSession, UnclassifiedPacketsCounted) {
  packet::PacketPattern tcp_only;
  tcp_only.protocol = packet::IpProtocol::kTcp;
  MeasurementSession session(
      std::make_unique<baseline::ExactOracle>(),
      packet::FlowDefinition::destination_ip(tcp_only), 5s);
  session.observe(packet_at(0, 1, 10));  // UDP: rejected by pattern
  EXPECT_EQ(session.packets_observed(), 1u);
  EXPECT_EQ(session.packets_unclassified(), 1u);
  const auto reports = session.finish();
  EXPECT_TRUE(reports[0].flows.empty());
}

TEST(MeasurementSession, WorksWithRealDevice) {
  MultistageFilterConfig config;
  config.flow_memory_entries = 64;
  config.depth = 2;
  config.buckets_per_stage = 64;
  config.threshold = 1000;
  MeasurementSession session(std::make_unique<MultistageFilter>(config),
                             packet::FlowDefinition::destination_ip(), 1s);
  for (common::TimestampNs t = 0; t < 3 * kSecond;
       t += kSecond / 10) {
    session.observe(packet_at(t, 42, 200));  // 2000 B/s: above threshold
  }
  const auto reports = session.finish();
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& report : reports) {
    EXPECT_NE(find_flow(report, packet::FlowKey::destination_ip(42)),
              nullptr);
  }
}

TEST(MeasurementSession, DeviceAccessor) {
  auto session = oracle_session();
  EXPECT_EQ(session.device().name(), "exact-oracle");
}

}  // namespace
}  // namespace nd::core
