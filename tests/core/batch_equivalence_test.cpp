// observe_batch() must be bit-identical to the per-packet observe()
// loop for every device — the contract that lets the driver and the
// sharded pipeline batch freely without changing any measurement.
//
// Each case builds two instances of a device from the same config/seed,
// feeds one via observe() and the other via observe_batch() over several
// synthesized intervals, and compares the reports field by field.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../support/report_testing.hpp"
#include "baseline/exact_oracle.hpp"
#include "baseline/ordinary_sampling.hpp"
#include "baseline/sampled_netflow.hpp"
#include "baseline/smallest_counter_eviction.hpp"
#include "core/adaptive_device.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"

namespace nd::core {
namespace {

using nd::testing::classify_trace;
using nd::testing::expect_reports_equal;

trace::TraceConfig small_trace() {
  trace::TraceConfig config;
  config.flow_count = 600;
  config.bytes_per_interval = 3'000'000;
  config.num_intervals = 3;
  config.seed = 77;
  return config;
}

/// Drive `scalar` packet by packet and `batched` via observe_batch over
/// the same classified trace; reports must match exactly each interval.
void expect_batch_equivalent(MeasurementDevice& scalar,
                             MeasurementDevice& batched) {
  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  ASSERT_FALSE(intervals.empty());
  for (const auto& interval : intervals) {
    for (const auto& packet : interval) {
      scalar.observe(packet.key, packet.bytes);
    }
    batched.observe_batch(interval);
    const Report a = scalar.end_interval();
    const Report b = batched.end_interval();
    expect_reports_equal(a, b);
  }
  EXPECT_EQ(scalar.packets_processed(), batched.packets_processed());
  EXPECT_EQ(scalar.memory_accesses(), batched.memory_accesses());
}

MultistageFilterConfig filter_config() {
  MultistageFilterConfig config;
  config.flow_memory_entries = 256;
  config.depth = 3;
  config.buckets_per_stage = 128;
  config.threshold = 40'000;
  config.seed = 9;
  return config;
}

TEST(BatchEquivalence, MultistageParallelConservative) {
  const auto config = filter_config();
  MultistageFilter scalar(config);
  MultistageFilter batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, MultistageParallelPlain) {
  auto config = filter_config();
  config.conservative_update = false;
  config.shielding = false;
  MultistageFilter scalar(config);
  MultistageFilter batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, MultistageSerial) {
  auto config = filter_config();
  config.serial = true;
  config.preserve = flowmem::PreservePolicy::kPreserve;
  MultistageFilter scalar(config);
  MultistageFilter batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, MultistageMultiplyShiftEarlyRemoval) {
  auto config = filter_config();
  config.hash_kind = hash::HashKind::kMultiplyShift;
  config.preserve = flowmem::PreservePolicy::kEarlyRemoval;
  MultistageFilter scalar(config);
  MultistageFilter batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, SampleAndHold) {
  SampleAndHoldConfig config;
  config.flow_memory_entries = 256;
  config.threshold = 40'000;
  config.preserve = flowmem::PreservePolicy::kEarlyRemoval;
  config.seed = 5;
  SampleAndHold scalar(config);
  SampleAndHold batched(config);
  // RNG-driven sampling: equivalence also proves the batch path consumes
  // the random stream identically.
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, AdaptiveDeviceForwardsBatches) {
  auto make = [] {
    SampleAndHoldConfig config;
    config.flow_memory_entries = 256;
    config.threshold = 40'000;
    config.seed = 5;
    return std::make_unique<SampleAndHold>(config);
  };
  ThresholdAdaptorConfig adaptor;
  AdaptiveDevice scalar(make(), adaptor);
  AdaptiveDevice batched(make(), adaptor);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, OrdinarySampling) {
  baseline::OrdinarySamplingConfig config;
  config.flow_memory_entries = 256;
  config.byte_sampling_probability = 1e-4;
  config.seed = 3;
  baseline::OrdinarySampling scalar(config);
  baseline::OrdinarySampling batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, SampledNetFlow) {
  baseline::SampledNetFlowConfig config;
  config.sampling_divisor = 16;
  config.seed = 11;
  baseline::SampledNetFlow scalar(config);
  baseline::SampledNetFlow batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, SampledNetFlowDeterministic) {
  baseline::SampledNetFlowConfig config;
  config.sampling_divisor = 8;
  config.deterministic = true;
  baseline::SampledNetFlow scalar(config);
  baseline::SampledNetFlow batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, SmallestCounterEviction) {
  baseline::SmallestCounterEvictionConfig config;
  config.flow_memory_entries = 128;
  baseline::SmallestCounterEviction scalar(config);
  baseline::SmallestCounterEviction batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, ExactOracle) {
  baseline::ExactOracle scalar;
  baseline::ExactOracle batched;
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, DefaultFallbackMatchesForUnoverriddenDevice) {
  // A device relying on the base-class default loop is trivially
  // equivalent; exercised through a thin wrapper that hides overrides.
  class DefaultBatch : public MeasurementDevice {
   public:
    explicit DefaultBatch(const SampleAndHoldConfig& config)
        : inner_(config) {}
    void observe(const packet::FlowKey& key, std::uint32_t bytes) override {
      inner_.observe(key, bytes);
    }
    Report end_interval() override { return inner_.end_interval(); }
    [[nodiscard]] std::string name() const override { return "default"; }
    [[nodiscard]] common::ByteCount threshold() const override {
      return inner_.threshold();
    }
    void set_threshold(common::ByteCount threshold) override {
      inner_.set_threshold(threshold);
    }
    [[nodiscard]] std::size_t flow_memory_capacity() const override {
      return inner_.flow_memory_capacity();
    }
    [[nodiscard]] std::uint64_t memory_accesses() const override {
      return inner_.memory_accesses();
    }
    [[nodiscard]] std::uint64_t packets_processed() const override {
      return inner_.packets_processed();
    }

   private:
    SampleAndHold inner_;
  };

  SampleAndHoldConfig config;
  config.flow_memory_entries = 256;
  config.threshold = 40'000;
  config.seed = 21;
  DefaultBatch scalar(config);
  DefaultBatch batched(config);
  expect_batch_equivalent(scalar, batched);
}

TEST(BatchEquivalence, FingerprintCacheMatchesKeyFingerprint) {
  const auto intervals =
      classify_trace(small_trace(), packet::FlowDefinition::five_tuple());
  for (const auto& interval : intervals) {
    for (const auto& packet : interval) {
      ASSERT_EQ(packet.fingerprint, packet.key.fingerprint());
    }
  }
}

}  // namespace
}  // namespace nd::core
