#include "core/threshold_adaptor.hpp"

#include <gtest/gtest.h>

#include "core/adaptive_device.hpp"
#include "core/sample_and_hold.hpp"

namespace nd::core {
namespace {

TEST(ThresholdAdaptor, OverTargetRaisesImmediately) {
  ThresholdAdaptor adaptor(ThresholdAdaptorConfig{});
  // 100% usage with target 90%: threshold must grow at once.
  const auto next = adaptor.update(1000, 100, 100);
  EXPECT_GT(next, 1000u);
}

TEST(ThresholdAdaptor, RaiseFollowsPowerLaw) {
  ThresholdAdaptorConfig config;
  config.target_usage = 0.5;
  config.adjust_up = 3.0;
  ThresholdAdaptor adaptor(config);
  // usage = 1.0, target 0.5 -> factor 2^3 = 8.
  EXPECT_EQ(adaptor.update(1000, 100, 100), 8000u);
}

TEST(ThresholdAdaptor, UnderTargetWaitsForPatience) {
  ThresholdAdaptorConfig config;
  config.patience = 3;
  ThresholdAdaptor adaptor(config);
  // Low usage, but decreases only after `patience` quiet intervals.
  EXPECT_EQ(adaptor.update(1000, 10, 100), 1000u);
  EXPECT_EQ(adaptor.update(1000, 10, 100), 1000u);
  EXPECT_LT(adaptor.update(1000, 10, 100), 1000u);
}

TEST(ThresholdAdaptor, DecreaseUsesAdjustDown) {
  ThresholdAdaptorConfig config;
  config.patience = 1;
  config.adjust_down = 1.0;
  config.target_usage = 0.9;
  config.usage_window = 1;
  ThresholdAdaptor adaptor(config);
  // usage = 0.45 => factor (0.45/0.9)^1 = 0.5.
  EXPECT_EQ(adaptor.update(1000, 45, 100), 500u);
}

TEST(ThresholdAdaptor, MultistageUsesGentlerDecrease) {
  ThresholdAdaptorConfig sh = sample_and_hold_adaptor();
  ThresholdAdaptorConfig msf = multistage_adaptor();
  EXPECT_DOUBLE_EQ(sh.adjust_down, 1.0);
  EXPECT_DOUBLE_EQ(msf.adjust_down, 0.5);
  EXPECT_DOUBLE_EQ(sh.target_usage, 0.90);
}

TEST(ThresholdAdaptor, NeverBelowMinimum) {
  ThresholdAdaptorConfig config;
  config.patience = 1;
  config.min_threshold = 100;
  config.usage_window = 1;
  ThresholdAdaptor adaptor(config);
  common::ByteCount threshold = 200;
  for (int i = 0; i < 20; ++i) {
    threshold = adaptor.update(threshold, 0, 100);
  }
  EXPECT_GE(threshold, 100u);
}

TEST(ThresholdAdaptor, UsageSmoothedOverWindow) {
  ThresholdAdaptorConfig config;
  config.usage_window = 3;
  ThresholdAdaptor adaptor(config);
  (void)adaptor.update(1000, 30, 100);
  (void)adaptor.update(1000, 60, 100);
  (void)adaptor.update(1000, 90, 100);
  EXPECT_NEAR(adaptor.smoothed_usage(), 0.6, 1e-9);
  (void)adaptor.update(1000, 90, 100);
  EXPECT_NEAR(adaptor.smoothed_usage(), 0.8, 1e-9);  // 60,90,90
}

TEST(ThresholdAdaptor, ZeroCapacityIsNoOp) {
  ThresholdAdaptor adaptor(ThresholdAdaptorConfig{});
  EXPECT_EQ(adaptor.update(1234, 50, 0), 1234u);
}

TEST(ThresholdAdaptor, SpikeTriggersFastIncrease) {
  // A usage spike after quiet intervals must raise the threshold even
  // though the moving average dampens it.
  ThresholdAdaptorConfig config;
  config.usage_window = 3;
  ThresholdAdaptor adaptor(config);
  (void)adaptor.update(1000, 88, 100);
  (void)adaptor.update(1000, 88, 100);
  // Moving average (88+88+100)/3 = 92% > 90% target.
  const auto next = adaptor.update(1000, 100, 100);
  EXPECT_GT(next, 1000u);
}

TEST(AdaptiveDevice, ConvergesTowardTargetUsage) {
  // Steady synthetic workload: 2000 flows, each 1000 bytes, 200-entry
  // memory. The adaptor should settle at a threshold that keeps usage
  // near 90% without overflowing.
  SampleAndHoldConfig config;
  config.flow_memory_entries = 200;
  config.threshold = 100;  // initial threshold absurdly low
  config.oversampling = 4.0;
  config.seed = 5;
  AdaptiveDevice device(std::make_unique<SampleAndHold>(config),
                        sample_and_hold_adaptor());

  double last_usage = 0.0;
  for (int interval = 0; interval < 30; ++interval) {
    for (std::uint32_t f = 0; f < 2000; ++f) {
      device.observe(packet::FlowKey::destination_ip(f), 1000);
    }
    const Report report = device.end_interval();
    last_usage = static_cast<double>(report.entries_used) / 200.0;
  }
  EXPECT_LE(last_usage, 1.0);
  EXPECT_GT(last_usage, 0.3);
  EXPECT_GT(device.threshold(), 100u);  // grew out of the silly initial
  EXPECT_NE(device.name().find("adaptive"), std::string::npos);
}

}  // namespace
}  // namespace nd::core
