#include "core/multistage_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nd::core {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

void feed(MeasurementDevice& device, const packet::FlowKey& k,
          common::ByteCount total, std::uint32_t packet_size = 500) {
  while (total > 0) {
    const auto size = static_cast<std::uint32_t>(
        std::min<common::ByteCount>(packet_size, total));
    device.observe(k, size);
    total -= size;
  }
}

MultistageFilterConfig basic_config() {
  MultistageFilterConfig config;
  config.flow_memory_entries = 1000;
  config.depth = 4;
  config.buckets_per_stage = 1000;
  config.threshold = 100'000;
  config.conservative_update = false;
  config.shielding = false;
  config.seed = 42;
  return config;
}

TEST(MultistageFilter, LargeFlowAlwaysCaught) {
  // The headline guarantee: no false negatives, deterministically.
  MultistageFilter device(basic_config());
  feed(device, key(1), 100'000);
  const Report report = device.end_interval();
  ASSERT_NE(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, SmallLonelyFlowNeverPasses) {
  // A single small flow with empty stages cannot reach the threshold.
  MultistageFilter device(basic_config());
  feed(device, key(1), 50'000);
  const Report report = device.end_interval();
  EXPECT_EQ(find_flow(report, key(1)), nullptr);
  EXPECT_TRUE(report.flows.empty());
}

TEST(MultistageFilter, EstimateErrorBoundedByThreshold) {
  // No flow can send T bytes without entering the flow memory, so the
  // undercount is < T (Section 4.2.1).
  MultistageFilterConfig config = basic_config();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    MultistageFilter device(config);
    feed(device, key(1), 1'000'000);
    const Report report = device.end_interval();
    const auto* flow = find_flow(report, key(1));
    ASSERT_NE(flow, nullptr);
    EXPECT_GT(flow->estimated_bytes,
              1'000'000u - config.threshold - 1500u);
    EXPECT_LE(flow->estimated_bytes, 1'000'000u);
  }
}

TEST(MultistageFilter, CountersResetBetweenIntervals) {
  MultistageFilter device(basic_config());
  feed(device, key(1), 90'000);  // just below T: fills counters
  (void)device.end_interval();
  // Counters were reinitialized, so the same sub-threshold traffic
  // again does not pass.
  feed(device, key(1), 90'000);
  const Report report = device.end_interval();
  EXPECT_EQ(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, CounterAccessor) {
  MultistageFilterConfig config = basic_config();
  config.depth = 2;
  config.buckets_per_stage = 8;
  MultistageFilter device(config);
  device.observe(key(1), 500);
  common::ByteCount sum = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      sum += device.counter(s, b);
    }
  }
  EXPECT_EQ(sum, 1000u);  // 500 in one bucket per stage
}

TEST(MultistageFilter, ConservativeUpdateRaisesToMinOnly) {
  MultistageFilterConfig config = basic_config();
  config.conservative_update = true;
  config.depth = 3;
  config.buckets_per_stage = 4;
  MultistageFilter device(config);

  // First flow loads some buckets.
  device.observe(key(1), 900);
  // Second flow: wherever it shares a bucket with flow 1, conservative
  // update must not inflate that bucket beyond max(old, min+size).
  device.observe(key(2), 100);

  common::ByteCount total = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      total += device.counter(s, b);
    }
  }
  // Plain update would give exactly 3*(900+100) = 3000; conservative
  // update gives at most that.
  EXPECT_LE(total, 3000u);
}

TEST(MultistageFilter, ConservativeNeverBelowPlainDetection) {
  // Conservative update must not introduce false negatives: a flow
  // reaching T still passes.
  MultistageFilterConfig config = basic_config();
  config.conservative_update = true;
  MultistageFilter device(config);
  feed(device, key(1), 100'000);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, PassingPacketLeavesCountersUntouchedConservative) {
  MultistageFilterConfig config = basic_config();
  config.conservative_update = true;
  config.depth = 2;
  config.buckets_per_stage = 4;
  config.threshold = 1000;
  MultistageFilter device(config);

  device.observe(key(1), 1000);  // passes immediately (size >= T)
  // Second conservative-update rule: no counter was updated.
  common::ByteCount total = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      total += device.counter(s, b);
    }
  }
  EXPECT_EQ(total, 0u);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, ShieldingStopsCounterUpdatesForTrackedFlows) {
  MultistageFilterConfig config = basic_config();
  config.shielding = true;
  config.depth = 2;
  config.buckets_per_stage = 4;
  config.threshold = 1000;
  config.conservative_update = false;
  MultistageFilter device(config);

  device.observe(key(1), 1000);  // passes, enters flow memory
  const common::ByteCount after_pass = [&] {
    common::ByteCount total = 0;
    for (std::uint32_t s = 0; s < 2; ++s) {
      for (std::uint64_t b = 0; b < 4; ++b) total += device.counter(s, b);
    }
    return total;
  }();
  device.observe(key(1), 500);  // shielded: no counter updates
  common::ByteCount after_shielded = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      after_shielded += device.counter(s, b);
    }
  }
  EXPECT_EQ(after_shielded, after_pass);

  const Report report = device.end_interval();
  const auto* flow = find_flow(report, key(1));
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->estimated_bytes, 1500u);  // entry still counted fully
}

TEST(MultistageFilter, WithoutShieldingTrackedFlowsKeepFeedingCounters) {
  MultistageFilterConfig config = basic_config();
  config.shielding = false;
  config.depth = 2;
  config.buckets_per_stage = 4;
  config.threshold = 1000;
  MultistageFilter device(config);

  device.observe(key(1), 1000);  // passes (plain update: counters += )
  device.observe(key(1), 500);   // tracked but NOT shielded
  common::ByteCount total = 0;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint64_t b = 0; b < 4; ++b) total += device.counter(s, b);
  }
  EXPECT_EQ(total, 2 * 1500u);
}

TEST(MultistageFilter, SerialNoFalseNegatives) {
  MultistageFilterConfig config = basic_config();
  config.serial = true;
  MultistageFilter device(config);
  feed(device, key(1), 100'000);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, SerialStagesShieldLaterStages) {
  MultistageFilterConfig config = basic_config();
  config.serial = true;
  config.depth = 3;
  config.buckets_per_stage = 4;
  config.threshold = 3000;  // per-stage threshold 1000
  config.conservative_update = false;
  MultistageFilter device(config);

  device.observe(key(1), 500);  // stops at stage 0 (500 < 1000)
  common::ByteCount stage1_total = 0;
  common::ByteCount stage0_total = 0;
  for (std::uint64_t b = 0; b < 4; ++b) {
    stage0_total += device.counter(0, b);
    stage1_total += device.counter(1, b);
  }
  EXPECT_EQ(stage0_total, 500u);
  EXPECT_EQ(stage1_total, 0u);
}

TEST(MultistageFilter, SerialConservativeNoFalseNegatives) {
  MultistageFilterConfig config = basic_config();
  config.serial = true;
  config.conservative_update = true;
  MultistageFilter device(config);
  feed(device, key(1), 100'000);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, DroppedPassesWhenMemoryFull) {
  MultistageFilterConfig config = basic_config();
  config.flow_memory_entries = 2;
  config.threshold = 1000;
  MultistageFilter device(config);
  for (std::uint32_t i = 0; i < 10; ++i) {
    device.observe(key(i), 1000);  // every flow passes instantly
  }
  EXPECT_EQ(device.dropped_passes(), 8u);
  const Report report = device.end_interval();
  EXPECT_EQ(report.flows.size(), 2u);
}

TEST(MultistageFilter, SetThresholdAffectsSerialStageThreshold) {
  MultistageFilterConfig config = basic_config();
  config.serial = true;
  config.depth = 4;
  config.threshold = 4000;
  MultistageFilter device(config);
  device.set_threshold(8000);
  EXPECT_EQ(device.threshold(), 8000u);
  // A 2000-byte packet reaches stage threshold 8000/4 = 2000: passes.
  device.observe(key(1), 2000);
  const Report report = device.end_interval();
  EXPECT_NE(find_flow(report, key(1)), nullptr);
}

TEST(MultistageFilter, NamesAndCapacity) {
  MultistageFilterConfig config = basic_config();
  MultistageFilter parallel(config);
  EXPECT_EQ(parallel.name(), "multistage-filter");
  config.serial = true;
  MultistageFilter serial(config);
  EXPECT_EQ(serial.name(), "serial-multistage-filter");
  EXPECT_EQ(parallel.flow_memory_capacity(), 1000u);
}

TEST(MultistageFilter, PreserveEntriesExactNextInterval) {
  MultistageFilterConfig config = basic_config();
  config.preserve = flowmem::PreservePolicy::kPreserve;
  config.shielding = true;
  config.conservative_update = true;
  MultistageFilter device(config);

  feed(device, key(1), 500'000);
  (void)device.end_interval();
  feed(device, key(1), 300'000);
  const Report second = device.end_interval();
  const auto* flow = find_flow(second, key(1));
  ASSERT_NE(flow, nullptr);
  EXPECT_TRUE(flow->exact);
  EXPECT_EQ(flow->estimated_bytes, 300'000u);
}

TEST(MultistageFilter, MemoryAccessAccounting) {
  MultistageFilterConfig config = basic_config();
  config.depth = 4;
  MultistageFilter device(config);
  device.observe(key(1), 100);
  // 1 flow-memory lookup + d reads + d writes.
  EXPECT_EQ(device.memory_accesses(), 1u + 4u + 4u);
  EXPECT_EQ(device.packets_processed(), 1u);
}

}  // namespace
}  // namespace nd::core
