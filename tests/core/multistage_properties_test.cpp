// Property-based tests of the multistage filter's paper-proven
// invariants, swept over randomized workloads and configurations:
//
//  P1 (no false negatives): for ANY packet stream, every flow with
//     >= T bytes in the interval is in the report — for parallel and
//     serial filters, with and without conservative update/shielding.
//  P2 (conservative dominance): with conservative update every stage
//     counter is pointwise <= its plain-update twin.
//  P3 (monotone filtering): more stages can only reduce false positives.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/multistage_filter.hpp"

namespace nd::core {
namespace {

struct Workload {
  std::vector<std::pair<packet::FlowKey, std::uint32_t>> packets;
  std::unordered_map<packet::FlowKey, common::ByteCount,
                     packet::FlowKeyHasher>
      truth;
};

Workload random_workload(std::uint64_t seed, std::size_t flows,
                         std::size_t packets) {
  common::Rng rng(seed);
  Workload w;
  w.packets.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    const auto flow =
        static_cast<std::uint32_t>(rng.uniform(flows));
    // Skewed flow picks + skewed sizes: low flow ids send more, bigger.
    const auto chosen = static_cast<std::uint32_t>(
        rng.uniform(flow + 1));  // biases toward small ids
    const auto size = static_cast<std::uint32_t>(40 + rng.uniform(1460));
    const auto key = packet::FlowKey::destination_ip(chosen);
    w.packets.emplace_back(key, size);
    w.truth[key] += size;
  }
  return w;
}

using PropertyParams =
    std::tuple<std::uint64_t /*seed*/, bool /*serial*/,
               bool /*conservative*/, bool /*shielding*/>;

class NoFalseNegatives : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(NoFalseNegatives, EveryLargeFlowReported) {
  const auto [seed, serial, conservative, shielding] = GetParam();
  const Workload w = random_workload(seed, 200, 20'000);

  MultistageFilterConfig config;
  config.flow_memory_entries = 100'000;  // never the bottleneck here
  config.depth = 3;
  config.buckets_per_stage = 64;  // deliberately weak: many collisions
  config.threshold = 50'000;
  config.serial = serial;
  config.conservative_update = conservative;
  config.shielding = shielding;
  config.seed = seed ^ 0xABCDEF;
  MultistageFilter device(config);

  for (const auto& [key, size] : w.packets) {
    device.observe(key, size);
  }
  const Report report = device.end_interval();

  for (const auto& [key, size] : w.truth) {
    if (size >= config.threshold) {
      const auto* flow = find_flow(report, key);
      ASSERT_NE(flow, nullptr)
          << "false negative for flow of " << size << " bytes (serial="
          << serial << " conservative=" << conservative
          << " shielding=" << shielding << ")";
      // The estimate can miss at most T (+ the admitting packet).
      EXPECT_GE(flow->estimated_bytes + config.threshold + 1500, size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoFalseNegatives,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool(),   // serial
                       ::testing::Bool(),   // conservative update
                       ::testing::Bool())); // shielding

class ConservativeDominance : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConservativeDominance, CountersPointwiseBelowPlain) {
  const std::uint64_t seed = GetParam();
  const Workload w = random_workload(seed, 100, 5'000);

  MultistageFilterConfig config;
  config.flow_memory_entries = 100'000;
  config.depth = 4;
  config.buckets_per_stage = 32;
  config.threshold = 1'000'000'000;  // nothing passes: pure sketch test
  config.seed = seed ^ 0x77;

  config.conservative_update = false;
  MultistageFilter plain(config);
  config.conservative_update = true;
  MultistageFilter conservative(config);

  for (const auto& [key, size] : w.packets) {
    plain.observe(key, size);
    conservative.observe(key, size);
  }
  for (std::uint32_t s = 0; s < config.depth; ++s) {
    for (std::uint64_t b = 0; b < config.buckets_per_stage; ++b) {
      EXPECT_LE(conservative.counter(s, b), plain.counter(s, b))
          << "stage " << s << " bucket " << b;
    }
  }
}

TEST_P(ConservativeDominance, CountersStillUpperBoundFlowTraffic) {
  // Sketch soundness under conservative update: for every flow, each of
  // its counters is >= the flow's true bytes (otherwise a false negative
  // would be possible).
  const std::uint64_t seed = GetParam();
  const Workload w = random_workload(seed, 100, 5'000);

  MultistageFilterConfig config;
  config.flow_memory_entries = 100'000;
  config.depth = 4;
  config.buckets_per_stage = 32;
  config.threshold = 1'000'000'000;
  config.conservative_update = true;
  config.seed = seed ^ 0x99;
  MultistageFilter device(config);
  for (const auto& [key, size] : w.packets) {
    device.observe(key, size);
  }

  hash::HashFamily family(config.seed, config.hash_kind);
  std::vector<hash::StageHash> hashes;
  for (std::uint32_t d = 0; d < config.depth; ++d) {
    hashes.push_back(family.make_stage(config.buckets_per_stage));
  }
  for (const auto& [key, size] : w.truth) {
    for (std::uint32_t d = 0; d < config.depth; ++d) {
      EXPECT_GE(device.counter(d, hashes[d].bucket(key.fingerprint())),
                size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservativeDominance,
                         ::testing::Values(11, 22, 33, 44));

class DepthMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DepthMonotonicity, MoreStagesFewerFalsePositives) {
  const std::uint64_t seed = GetParam();
  const Workload w = random_workload(seed, 500, 30'000);
  const common::ByteCount threshold = 40'000;

  std::vector<std::size_t> false_positives;
  for (const std::uint32_t depth : {1u, 2u, 3u, 4u}) {
    MultistageFilterConfig config;
    config.flow_memory_entries = 100'000;
    config.depth = depth;
    config.buckets_per_stage = 128;
    config.threshold = threshold;
    config.conservative_update = false;
    config.seed = seed;  // same seed: stage i identical across filters
    MultistageFilter device(config);
    for (const auto& [key, size] : w.packets) {
      device.observe(key, size);
    }
    const Report report = device.end_interval();
    std::size_t fp = 0;
    for (const auto& flow : report.flows) {
      if (w.truth.at(flow.key) < threshold) ++fp;
    }
    false_positives.push_back(fp);
  }
  for (std::size_t i = 1; i < false_positives.size(); ++i) {
    EXPECT_LE(false_positives[i], false_positives[i - 1])
        << "depth " << i + 1 << " vs " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepthMonotonicity,
                         ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace nd::core
