// Robustness of the pcap reader against corrupted input: random bytes,
// random truncations, and random single-byte flips of valid captures
// must raise PcapError or yield records — never crash, hang, or read out
// of bounds.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "pcap/pcap.hpp"

namespace nd::pcap {
namespace {

std::string valid_capture(std::uint32_t packets) {
  std::stringstream stream;
  PcapWriter writer(stream, 128);
  for (std::uint32_t i = 0; i < packets; ++i) {
    packet::PacketRecord record;
    record.timestamp_ns = i * 1000ULL;
    record.src_ip = i;
    record.dst_ip = i + 1;
    record.protocol = packet::IpProtocol::kUdp;
    record.size_bytes = 60 + i % 1000;
    writer.write(record);
  }
  return stream.str();
}

void drain(const std::string& data) {
  std::stringstream stream(data);
  try {
    PcapReader reader(stream);
    int safety = 0;
    while (reader.next_record().has_value()) {
      ASSERT_LT(++safety, 100'000) << "reader failed to terminate";
    }
  } catch (const PcapError&) {
    // Rejection is an acceptable outcome for corrupted input.
  }
}

class PcapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcapFuzz, RandomBytesNeverCrash) {
  common::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const std::size_t size = rng.uniform(4096);
    std::string data(size, '\0');
    for (auto& c : data) {
      c = static_cast<char>(rng.uniform(256));
    }
    drain(data);
  }
}

TEST_P(PcapFuzz, RandomTruncationsNeverCrash) {
  common::Rng rng(GetParam() ^ 0xBEEF);
  const std::string capture = valid_capture(20);
  for (int round = 0; round < 100; ++round) {
    drain(capture.substr(0, rng.uniform(capture.size() + 1)));
  }
}

TEST_P(PcapFuzz, RandomByteFlipsNeverCrash) {
  common::Rng rng(GetParam() ^ 0xF00D);
  const std::string capture = valid_capture(20);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = capture;
    const std::size_t flips = 1 + rng.uniform(8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<char>(1 << rng.uniform(8));
    }
    drain(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcapFuzz, ::testing::Values(1, 2, 3, 4));

TEST(ReportCodecFuzzNote, SeeReportingTests) {
  // The reporting codec's corruption handling lives in
  // tests/reporting/record_codec_test.cpp.
  SUCCEED();
}

}  // namespace
}  // namespace nd::pcap
