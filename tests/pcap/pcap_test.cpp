#include "pcap/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

namespace nd::pcap {
namespace {

packet::PacketRecord make_record(std::uint32_t i) {
  packet::PacketRecord r;
  r.timestamp_ns = 1'000'000ULL * i;
  r.src_ip = 0x0A000000 + i;
  r.dst_ip = 0x0A010000 + i;
  r.src_port = static_cast<std::uint16_t>(1000 + i);
  r.dst_port = 80;
  r.protocol = i % 2 == 0 ? packet::IpProtocol::kTcp
                          : packet::IpProtocol::kUdp;
  r.size_bytes = 40 + (i % 1400);
  return r;
}

TEST(Pcap, WriteReadRoundTripInMemory) {
  std::stringstream stream;
  {
    PcapWriter writer(stream);
    for (std::uint32_t i = 0; i < 50; ++i) {
      writer.write(make_record(i));
    }
    EXPECT_EQ(writer.packets_written(), 50u);
  }
  PcapReader reader(stream);
  EXPECT_FALSE(reader.swapped());
  EXPECT_EQ(reader.link_type(), kLinkTypeEthernet);
  std::uint32_t count = 0;
  while (auto record = reader.next_record()) {
    const auto expected = make_record(count);
    // pcap stores microsecond timestamps; ours are whole microseconds.
    EXPECT_EQ(record->timestamp_ns, expected.timestamp_ns);
    EXPECT_EQ(record->src_ip, expected.src_ip);
    EXPECT_EQ(record->dst_ip, expected.dst_ip);
    EXPECT_EQ(record->size_bytes, expected.size_bytes);
    ++count;
  }
  EXPECT_EQ(count, 50u);
}

TEST(Pcap, EmptyFileThrows) {
  std::stringstream stream;
  EXPECT_THROW(PcapReader reader(stream), PcapError);
}

TEST(Pcap, BadMagicThrows) {
  std::stringstream stream;
  stream.write("\x12\x34\x56\x78" "aaaaaaaaaaaaaaaaaaaa", 24);
  EXPECT_THROW(PcapReader reader(stream), PcapError);
}

TEST(Pcap, TruncatedGlobalHeaderThrows) {
  std::stringstream stream;
  stream.write("\xd4\xc3\xb2\xa1\x02\x00", 6);
  EXPECT_THROW(PcapReader reader(stream), PcapError);
}

TEST(Pcap, TruncatedPacketBodyThrows) {
  std::stringstream stream;
  {
    PcapWriter writer(stream);
    writer.write(make_record(0));
  }
  std::string data = stream.str();
  data.resize(data.size() - 10);  // chop the last packet's tail
  std::stringstream broken(data);
  PcapReader reader(broken);
  EXPECT_THROW((void)reader.next(), PcapError);
}

TEST(Pcap, SwappedByteOrderRead) {
  // Build a minimal byte-swapped capture by hand: global header +
  // one 20-byte packet.
  std::stringstream stream;
  auto put_be32 = [&](std::uint32_t v) {
    // Big-endian payload read by a reader expecting little-endian
    // means "swapped" magic handling kicks in.
    char b[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
    stream.write(b, 4);
  };
  auto put_be16 = [&](std::uint16_t v) {
    char b[2] = {static_cast<char>(v >> 8), static_cast<char>(v)};
    stream.write(b, 2);
  };
  put_be32(kMagicNative);  // written BE => reader sees 0xD4C3B2A1
  put_be16(2);
  put_be16(4);
  put_be32(0);
  put_be32(0);
  put_be32(65535);
  put_be32(kLinkTypeEthernet);
  put_be32(1);    // ts_sec
  put_be32(500);  // ts_usec
  put_be32(20);   // caplen
  put_be32(20);   // origlen
  stream.write(std::string(20, '\0').data(), 20);

  PcapReader reader(stream);
  EXPECT_TRUE(reader.swapped());
  const auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->timestamp_ns, 1'000'500'000ULL);
  EXPECT_EQ(pkt->data.size(), 20u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Pcap, SnaplenTruncatesButKeepsOriginalLength) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, /*snaplen=*/100);
    auto record = make_record(3);
    record.size_bytes = 1400;
    writer.write(record);
  }
  PcapReader reader(stream);
  const auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->data.size(), 100u);
  EXPECT_EQ(pkt->original_length, 1400u + packet::kEthernetHeaderSize);
}

TEST(Pcap, SnaplenTruncatedFramesStillYieldRecords) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, /*snaplen=*/64);
    auto record = make_record(4);
    record.size_bytes = 1200;
    writer.write(record);
  }
  PcapReader reader(stream);
  const auto record = reader.next_record();
  ASSERT_TRUE(record.has_value());
  // The true IP size survives truncation via the IP total-length field.
  EXPECT_EQ(record->size_bytes, 1200u);
}

TEST(Pcap, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "nd_pcap_test.pcap").string();
  std::vector<packet::PacketRecord> records;
  for (std::uint32_t i = 0; i < 20; ++i) {
    records.push_back(make_record(i));
  }
  EXPECT_EQ(write_pcap_file(path, records), 20u);
  const auto loaded = read_pcap_file(path);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].src_ip, records[i].src_ip);
    EXPECT_EQ(loaded[i].size_bytes, records[i].size_bytes);
  }
  std::filesystem::remove(path);
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW(read_pcap_file("/nonexistent/dir/file.pcap"), PcapError);
}

}  // namespace
}  // namespace nd::pcap
