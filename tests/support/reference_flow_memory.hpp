// A self-contained copy of the pre-tag-layout FlowMemory (classic open
// addressing over fat slots, occupancy read from the payload) kept as a
// behavioural oracle for the tag-partitioned layout. The production
// class promises bit-identical placement, probe results, access counts
// and checkpoint bytes; the equivalence tests in
// tests/flowmem/tag_layout_test.cpp drive both side by side through
// randomized operation sequences and compare everything observable.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/state_buffer.hpp"
#include "common/types.hpp"
#include "flowmem/flow_memory.hpp"
#include "hash/hash.hpp"
#include "packet/flow_key.hpp"

namespace nd::testing {

/// The historical layout: one array of 64-byte-ish entries, occupancy
/// inline, linear probing that loads a payload line per probed slot.
class ReferenceFlowMemory {
 public:
  ReferenceFlowMemory(std::size_t capacity, std::uint64_t seed)
      : slots_(slot_count_for(capacity)),
        capacity_(capacity),
        family_(seed) {}

  flowmem::FlowEntry* find(const packet::FlowKey& key) {
    ++accesses_;
    std::size_t slot = slot_of(key);
    for (std::size_t probes = 0; probes < slots_.size(); ++probes) {
      flowmem::FlowEntry& entry = slots_[slot];
      if (!entry.occupied) return nullptr;
      if (entry.key == key) return &entry;
      slot = (slot + 1) & (slots_.size() - 1);
    }
    return nullptr;
  }

  flowmem::FlowEntry* insert(const packet::FlowKey& key,
                             common::IntervalIndex interval) {
    if (used_ >= capacity_) return nullptr;
    ++accesses_;
    std::size_t slot = slot_of(key);
    while (slots_[slot].occupied) {
      slot = (slot + 1) & (slots_.size() - 1);
    }
    flowmem::FlowEntry& entry = slots_[slot];
    entry.key = key;
    entry.bytes_current = 0;
    entry.bytes_lifetime = 0;
    entry.created_interval = interval;
    entry.created_this_interval = true;
    entry.exact_this_interval = false;
    entry.occupied = true;
    ++used_;
    high_water_ = std::max(high_water_, used_);
    return &entry;
  }

  void end_interval(const flowmem::EndIntervalPolicy& policy) {
    std::vector<flowmem::FlowEntry> survivors;
    for (const flowmem::FlowEntry& entry : slots_) {
      if (!entry.occupied) continue;
      bool keep = false;
      switch (policy.policy) {
        case flowmem::PreservePolicy::kClear:
          keep = false;
          break;
        case flowmem::PreservePolicy::kPreserve:
          keep = entry.bytes_current >= policy.threshold ||
                 entry.created_this_interval;
          break;
        case flowmem::PreservePolicy::kEarlyRemoval:
          keep = entry.bytes_current >= policy.threshold ||
                 (entry.created_this_interval &&
                  entry.bytes_current >= policy.early_removal_threshold);
          break;
      }
      if (keep) survivors.push_back(entry);
    }
    std::fill(slots_.begin(), slots_.end(), flowmem::FlowEntry{});
    used_ = 0;
    for (flowmem::FlowEntry survivor : survivors) {
      survivor.bytes_current = 0;
      survivor.created_this_interval = false;
      survivor.exact_this_interval = true;
      std::size_t slot = slot_of(survivor.key);
      while (slots_[slot].occupied) {
        slot = (slot + 1) & (slots_.size() - 1);
      }
      slots_[slot] = survivor;
      ++used_;
    }
  }

  void save_state(common::StateWriter& out) const {
    out.put_u64(static_cast<std::uint64_t>(slots_.size()));
    out.put_u64(static_cast<std::uint64_t>(capacity_));
    out.put_u64(static_cast<std::uint64_t>(used_));
    out.put_u64(static_cast<std::uint64_t>(high_water_));
    out.put_u64(accesses_);
    std::uint64_t occupied = 0;
    for (const flowmem::FlowEntry& entry : slots_) {
      if (entry.occupied) ++occupied;
    }
    out.put_u64(occupied);
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      const flowmem::FlowEntry& entry = slots_[slot];
      if (!entry.occupied) continue;
      out.put_u64(static_cast<std::uint64_t>(slot));
      packet::save_flow_key(out, entry.key);
      out.put_u64(entry.bytes_current);
      out.put_u64(entry.bytes_lifetime);
      out.put_u32(entry.created_interval);
      out.put_u8(static_cast<std::uint8_t>(
          (entry.created_this_interval ? 1U : 0U) |
          (entry.exact_this_interval ? 2U : 0U)));
    }
  }

  [[nodiscard]] std::size_t entries_used() const { return used_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::uint64_t memory_accesses() const { return accesses_; }
  [[nodiscard]] const flowmem::FlowEntry& slot(std::size_t index) const {
    return slots_[index];
  }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

 private:
  static std::size_t slot_count_for(std::size_t capacity) {
    return std::bit_ceil(std::max<std::size_t>(8, capacity * 2));
  }
  [[nodiscard]] std::size_t slot_of(const packet::FlowKey& key) const {
    return static_cast<std::size_t>(family_.scramble(key.fingerprint())) &
           (slots_.size() - 1);
  }

  std::vector<flowmem::FlowEntry> slots_;
  std::size_t capacity_;
  std::size_t used_{0};
  std::size_t high_water_{0};
  std::uint64_t accesses_{0};
  hash::HashFamily family_;
};

}  // namespace nd::testing
