// Differential-testing harness for the sharded/scalar device contract.
//
// Replays identical synthesized traces through the four device
// configurations the pipeline supports —
//
//   kScalar          per-packet observe() on the unsharded device
//   kBatched         observe_batch() on the unsharded device
//   kShardedUniform  ShardedDevice, one fixed threshold everywhere
//   kShardedAdaptive ShardedDevice, a private ThresholdAdaptor per shard
//
// — and provides the assertions that define the contract between them:
//
//   (a) bit-identical reports wherever equality is still promised
//       (scalar vs batched; sharded runs across pools and repetitions);
//   (b) paper-derived bounds where it is not: heterogeneous per-shard
//       thresholds intentionally break bit-equality with the globally
//       adapted scalar device, so the adaptive configurations are
//       checked against Section 4's no-false-negative guarantee above
//       the effective (max per-shard) threshold and Section 6's target
//       usage band instead.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/adaptive_device.hpp"
#include "core/device.hpp"
#include "core/sharded_device.hpp"
#include "core/threshold_adaptor.hpp"
#include "eval/metrics.hpp"
#include "report_testing.hpp"

namespace nd::testing {

/// A classified trace plus exact per-interval ground truth — every
/// configuration replays exactly this stream.
struct DifferentialTrace {
  std::vector<std::vector<packet::ClassifiedPacket>> intervals;
  std::vector<eval::TruthMap> truth;
};

inline DifferentialTrace make_differential_trace(
    const trace::TraceConfig& config,
    const packet::FlowDefinition& definition) {
  DifferentialTrace out;
  out.intervals = classify_trace(config, definition);
  out.truth.reserve(out.intervals.size());
  for (const auto& interval : out.intervals) {
    eval::TruthMap truth;
    for (const auto& packet : interval) {
      truth[packet.key] += packet.bytes;
    }
    out.truth.push_back(std::move(truth));
  }
  return out;
}

/// The paper's multistage adaptor gains (adjust_up 3, patience 3)
/// reproduce Figure 5's visibly oscillating threshold. For tests that
/// assert a *converged* usage band, use this damped variant of the same
/// control rule: loop gain below 1 (the plant's d ln usage / d ln T is
/// about -1 on Zipf traffic, so exponents >= 1 overshoot), a short
/// window to cut feedback lag, and patience 1 so decreases fire as
/// readily as increases (asymmetric patience biases the stationary
/// usage below target under noise).
inline core::ThresholdAdaptorConfig damped_multistage_adaptor() {
  core::ThresholdAdaptorConfig config = core::multistage_adaptor();
  config.adjust_up = 0.5;
  config.adjust_down = 0.25;
  config.usage_window = 3;
  config.patience = 1;
  return config;
}

enum class DeviceMode {
  kScalar,
  kBatched,
  kShardedUniform,
  kShardedAdaptive,
};

inline constexpr DeviceMode kAllDeviceModes[] = {
    DeviceMode::kScalar, DeviceMode::kBatched, DeviceMode::kShardedUniform,
    DeviceMode::kShardedAdaptive};

inline const char* mode_name(DeviceMode mode) {
  switch (mode) {
    case DeviceMode::kScalar: return "scalar";
    case DeviceMode::kBatched: return "batched";
    case DeviceMode::kShardedUniform: return "sharded-uniform";
    case DeviceMode::kShardedAdaptive: return "sharded-adaptive";
  }
  return "?";
}

struct DifferentialConfig {
  std::uint32_t shards{4};
  /// ShardedDevice routing/seeding base; the unsharded modes build
  /// their device from this seed directly.
  std::uint64_t seed{1};
  core::ThresholdAdaptorConfig adaptor = core::multistage_adaptor();
  /// Optional worker pool for the sharded modes (wall clock only).
  common::ThreadPool* pool{nullptr};
  /// Builds the inner device. `shards` is 1 (with shard 0) for the
  /// unsharded modes so the factory can split its memory budget the way
  /// a deployment would.
  std::function<std::unique_ptr<core::MeasurementDevice>(
      std::uint32_t shard, std::uint32_t shards, std::uint64_t seed)>
      factory;
};

inline std::unique_ptr<core::MeasurementDevice> make_device(
    const DifferentialConfig& config, DeviceMode mode) {
  if (mode == DeviceMode::kScalar || mode == DeviceMode::kBatched) {
    return config.factory(0, 1, config.seed);
  }
  core::ShardedDeviceConfig sharded;
  sharded.shards = config.shards;
  sharded.seed = config.seed;
  sharded.pool = config.pool;
  if (mode == DeviceMode::kShardedAdaptive) {
    sharded.adaptor = config.adaptor;
  }
  return std::make_unique<core::ShardedDevice>(
      sharded, [&config](std::uint32_t shard, std::uint64_t seed) {
        return config.factory(shard, config.shards, seed);
      });
}

/// Replay the whole trace; kScalar feeds packets one at a time, every
/// other mode uses the batched fast path.
inline std::vector<core::Report> replay(core::MeasurementDevice& device,
                                        const DifferentialTrace& trace,
                                        bool per_packet) {
  std::vector<core::Report> reports;
  reports.reserve(trace.intervals.size());
  for (const auto& interval : trace.intervals) {
    if (per_packet) {
      for (const auto& packet : interval) {
        device.observe(packet.key, packet.bytes);
      }
    } else {
      device.observe_batch(interval);
    }
    reports.push_back(device.end_interval());
  }
  return reports;
}

inline std::vector<core::Report> run_mode(const DifferentialConfig& config,
                                          const DifferentialTrace& trace,
                                          DeviceMode mode) {
  const auto device = make_device(config, mode);
  return replay(*device, trace, mode == DeviceMode::kScalar);
}

/// Contract (a): bit-identical interval-by-interval reports, including
/// the per-shard annotations (expect_reports_equal predates them).
inline void expect_equal_series(const std::vector<core::Report>& a,
                                const std::vector<core::Report>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("interval " + std::to_string(i));
    expect_reports_equal(a[i], b[i]);
    ASSERT_EQ(a[i].shards.size(), b[i].shards.size());
    for (std::size_t s = 0; s < a[i].shards.size(); ++s) {
      const core::ShardStatus& lhs = a[i].shards[s];
      const core::ShardStatus& rhs = b[i].shards[s];
      EXPECT_EQ(lhs.threshold, rhs.threshold) << "shard " << s;
      EXPECT_EQ(lhs.next_threshold, rhs.next_threshold) << "shard " << s;
      EXPECT_EQ(lhs.entries_used, rhs.entries_used) << "shard " << s;
      EXPECT_EQ(lhs.capacity, rhs.capacity) << "shard " << s;
      // Determinism promises the same doubles bit for bit.
      EXPECT_EQ(lhs.smoothed_usage, rhs.smoothed_usage) << "shard " << s;
    }
  }
}

/// True when some shard's flow memory filled up during the interval.
/// Entries are only ever added within an interval, so an end-of-interval
/// usage below capacity proves no insertion failed; at capacity, flows
/// that cleared the stages may have been dropped and the deterministic
/// guarantee is void (the paper sizes flow memory — and targets 90%
/// usage — precisely to keep this from happening).
inline bool any_shard_overflowed(const core::Report& report) {
  for (const core::ShardStatus& shard : report.shards) {
    if (shard.entries_used >= shard.capacity) return true;
  }
  return false;
}

/// Contract (b1): no false negatives above the effective threshold — a
/// multistage flow whose true size clears the (max per-shard) threshold
/// of its interval passes the stages on whichever shard it routes to
/// and must appear in the merged report (Section 4.2's deterministic
/// guarantee, restated for heterogeneous thresholds). Only valid for
/// intervals where no flow memory overflowed — callers gate on
/// any_shard_overflowed().
inline void expect_no_false_negatives(const core::Report& report,
                                      const eval::TruthMap& truth) {
  const common::ByteCount threshold = core::effective_threshold(report);
  for (const auto& [key, size] : truth) {
    if (size >= threshold) {
      EXPECT_NE(core::find_flow(report, key), nullptr)
          << "flow " << key.to_string() << " (" << size
          << " bytes) missed above effective threshold " << threshold;
    }
  }
}

/// Contract (b2): every shard's smoothed usage sits inside the Section 6
/// target band [lo, hi].
inline void expect_usage_in_band(const core::Report& report, double lo,
                                 double hi) {
  ASSERT_FALSE(report.shards.empty());
  for (std::size_t s = 0; s < report.shards.size(); ++s) {
    const core::ShardStatus& status = report.shards[s];
    EXPECT_GE(status.smoothed_usage, lo) << "shard " << s;
    EXPECT_LE(status.smoothed_usage, hi) << "shard " << s;
  }
}

/// Per-shard mean of smoothed usage over the last `last_k` reports —
/// the convergence statistic: one interval of flow churn moves usage a
/// few points, so "converged into the band" is asserted on a short
/// closing average rather than whichever interval happens to be last.
inline std::vector<double> mean_usage_per_shard(
    const std::vector<core::Report>& reports, std::size_t last_k) {
  const std::size_t shards = reports.back().shards.size();
  const std::size_t from = reports.size() > last_k ? reports.size() - last_k
                                                   : std::size_t{0};
  std::vector<double> mean(shards, 0.0);
  for (std::size_t i = from; i < reports.size(); ++i) {
    for (std::size_t s = 0; s < shards; ++s) {
      mean[s] += reports[i].shards[s].smoothed_usage;
    }
  }
  for (double& m : mean) m /= static_cast<double>(reports.size() - from);
  return mean;
}

inline void expect_mean_usage_in_band(const std::vector<core::Report>& reports,
                                      std::size_t last_k, double lo,
                                      double hi) {
  ASSERT_FALSE(reports.empty());
  ASSERT_FALSE(reports.back().shards.empty());
  const std::vector<double> mean = mean_usage_per_shard(reports, last_k);
  for (std::size_t s = 0; s < mean.size(); ++s) {
    EXPECT_GE(mean[s], lo) << "shard " << s;
    EXPECT_LE(mean[s], hi) << "shard " << s;
  }
}

}  // namespace nd::testing
