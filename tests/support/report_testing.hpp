// Shared helpers for the batch/shard equivalence tests: build classified
// streams from the synthesizer and compare device reports bit-for-bit.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/device.hpp"
#include "packet/classified_packet.hpp"
#include "packet/flow_definition.hpp"
#include "trace/synthesizer.hpp"

namespace nd::testing {

/// Classify one synthesized interval with `definition` (packets failing
/// the pattern are dropped, exactly like eval::Driver does).
inline std::vector<packet::ClassifiedPacket> classify_interval(
    const std::vector<packet::PacketRecord>& packets,
    const packet::FlowDefinition& definition) {
  std::vector<packet::ClassifiedPacket> classified;
  classified.reserve(packets.size());
  for (const auto& packet : packets) {
    if (const auto key = definition.classify(packet)) {
      classified.push_back(
          packet::ClassifiedPacket::from(*key, packet.size_bytes));
    }
  }
  return classified;
}

/// Whole trace, classified per interval.
inline std::vector<std::vector<packet::ClassifiedPacket>> classify_trace(
    const trace::TraceConfig& config,
    const packet::FlowDefinition& definition) {
  trace::TraceSynthesizer synthesizer(config);
  std::vector<std::vector<packet::ClassifiedPacket>> intervals;
  for (;;) {
    const auto packets = synthesizer.next_interval();
    if (packets.empty()) break;
    intervals.push_back(classify_interval(packets, definition));
  }
  return intervals;
}

/// Bit-for-bit report equality: same interval, threshold, usage, and the
/// same flows in the same order with identical estimates.
inline void expect_reports_equal(const core::Report& a,
                                 const core::Report& b) {
  EXPECT_EQ(a.interval, b.interval);
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.entries_used, b.entries_used);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].key, b.flows[i].key) << "flow " << i;
    EXPECT_EQ(a.flows[i].estimated_bytes, b.flows[i].estimated_bytes)
        << "flow " << i;
    EXPECT_EQ(a.flows[i].exact, b.flows[i].exact) << "flow " << i;
  }
}

}  // namespace nd::testing
