// The embedded HTTP observability endpoint, scraped over a real
// loopback connection: /metrics renders the callback, /healthz flips
// between 200 and 503 with the predicate, /statusz serves the status
// callback, and the tiny HTTP/1.0 surface rejects everything else.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "telemetry/export.hpp"
#include "telemetry/http_exporter.hpp"
#include "telemetry/metrics.hpp"

namespace nd::telemetry {
namespace {

/// Minimal scrape client: one request, read to EOF (the server closes).
std::string http_request(std::uint16_t port, const std::string& raw) {
  net::Socket socket = net::tcp_connect("127.0.0.1", port);
  EXPECT_TRUE(socket.valid());
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(raw.data());
  EXPECT_TRUE(net::write_all(socket.fd(), {bytes, raw.size()}));
  std::string response;
  std::uint8_t buffer[4096];
  for (;;) {
    const ssize_t n = net::read_some(socket.fd(), buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buffer),
                    static_cast<std::size_t>(n));
  }
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(HttpExporter, ServesMetricsFromTheCallback) {
  MetricsRegistry registry;
  registry.counter("nd_test_events_total").add(7);
  HttpExporterConfig config;
  config.metrics_text = [&registry] {
    return to_prometheus(registry.snapshot());
  };
  HttpExporter exporter(std::move(config));
  EXPECT_NE(exporter.port(), 0);  // ephemeral bind happened in the ctor
  exporter.start();

  const std::string response = http_get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(
      response.find("Content-Type: text/plain; version=0.0.4"),
      std::string::npos);
  EXPECT_NE(response.find("nd_test_events_total 7"), std::string::npos);

  // The callback renders the live registry, not a bind-time copy.
  registry.counter("nd_test_events_total").add(1);
  EXPECT_NE(http_get(exporter.port(), "/metrics")
                .find("nd_test_events_total 8"),
            std::string::npos);
  EXPECT_EQ(exporter.requests_served(), 2u);
}

TEST(HttpExporter, HealthzFollowsThePredicate) {
  std::atomic<bool> healthy{true};
  HttpExporterConfig config;
  config.metrics_text = [] { return std::string(); };
  config.healthy = [&healthy] { return healthy.load(); };
  HttpExporter exporter(std::move(config));
  exporter.start();

  std::string response = http_get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response), "ok\n");

  healthy = false;
  response = http_get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_EQ(body_of(response), "unhealthy\n");
}

TEST(HttpExporter, UnsetCallbacksServeSaneDefaults) {
  HttpExporterConfig config;
  config.metrics_text = [] { return std::string("x 1\n"); };
  HttpExporter exporter(std::move(config));
  exporter.start();
  // No healthy() predicate: always healthy.
  EXPECT_NE(http_get(exporter.port(), "/healthz").find("200 OK"),
            std::string::npos);
  // No status_text(): a placeholder, still 200.
  EXPECT_NE(http_get(exporter.port(), "/statusz").find("200 OK"),
            std::string::npos);
}

TEST(HttpExporter, StatuszServesTheStatusCallback) {
  HttpExporterConfig config;
  config.metrics_text = [] { return std::string(); };
  config.status_text = [] { return std::string("devices: 3\n"); };
  HttpExporter exporter(std::move(config));
  exporter.start();
  EXPECT_EQ(body_of(http_get(exporter.port(), "/statusz")),
            "devices: 3\n");
}

TEST(HttpExporter, RejectsUnknownPathsMethodsAndGarbage) {
  HttpExporterConfig config;
  config.metrics_text = [] { return std::string(); };
  HttpExporter exporter(std::move(config));
  exporter.start();
  EXPECT_NE(http_get(exporter.port(), "/nope").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(http_request(exporter.port(),
                         "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(http_request(exporter.port(), "garbage\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  // A GET line with no HTTP version token is malformed.
  EXPECT_NE(http_request(exporter.port(), "GET /metrics\r\n\r\n")
                .find("400 Bad Request"),
            std::string::npos);
  // A malformed request must not wedge the loop for later scrapes.
  EXPECT_NE(http_get(exporter.port(), "/healthz").find("200 OK"),
            std::string::npos);
}

TEST(HttpExporter, StopIsIdempotentAndJoinsTheThread) {
  HttpExporterConfig config;
  config.metrics_text = [] { return std::string(); };
  HttpExporter exporter(std::move(config));
  exporter.start();
  EXPECT_NE(http_get(exporter.port(), "/healthz").find("200"),
            std::string::npos);
  exporter.stop();
  exporter.stop();  // second stop is a no-op; the dtor stops again
}

}  // namespace
}  // namespace nd::telemetry
