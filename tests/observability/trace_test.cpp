// TraceRecorder and the chrome-trace codec: exact timestamps under
// FakeClock, lock-free publication under concurrent writers, sampling
// and full-buffer degradation, and the emit/parse round trip the
// --trace pipeline smoke relies on.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "telemetry/trace.hpp"

namespace nd::telemetry {
namespace {

using std::chrono::nanoseconds;

TEST(TraceRecorder, ScopedSpanStampsFakeClockTimesExactly) {
  common::FakeClock clock;
  clock.advance(nanoseconds(5'000));
  TraceRecorder recorder(16, &clock);
  {
    ScopedTraceSpan span(&recorder, "merge", "device",
                         TraceArgs{2, -1, 7, -1});
    clock.advance(nanoseconds(1'234));
  }
  const std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "merge");
  EXPECT_STREQ(events[0].category, "device");
  EXPECT_EQ(events[0].phase, TracePhase::kComplete);
  EXPECT_EQ(events[0].ts_ns, 5'000u);
  EXPECT_EQ(events[0].dur_ns, 1'234u);
  EXPECT_EQ(events[0].args.device, 2);
  EXPECT_EQ(events[0].args.interval, 7);
}

TEST(TraceRecorder, NullRecorderSpanIsANoOp) {
  // The disabled contract: constructing a span against nullptr reads no
  // clock and records nothing — this must simply not crash.
  ScopedTraceSpan span(nullptr, "x", "y");
  span.mutable_args().value = 9;
}

TEST(TraceRecorder, MutableArgsFillInAfterConstruction) {
  common::FakeClock clock;
  TraceRecorder recorder(16, &clock);
  {
    ScopedTraceSpan span(&recorder, "frame.decode", "collector",
                         TraceArgs{1, 0, -1}, "bytes");
    span.mutable_args().interval = 3;  // discovered mid-scope
    span.mutable_args().value = 512;
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args.interval, 3);
  EXPECT_EQ(events[0].args.value, 512);
  EXPECT_STREQ(events[0].value_key, "bytes");
}

TEST(TraceRecorder, InstantEventsStampNowWithZeroDuration) {
  common::FakeClock clock;
  clock.advance(nanoseconds(42));
  TraceRecorder recorder(16, &clock);
  recorder.instant("report.duplicate", "collector", TraceArgs{3, -1, 1});
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TracePhase::kInstant);
  EXPECT_EQ(events[0].ts_ns, 42u);
  EXPECT_EQ(events[0].dur_ns, 0u);
}

TEST(TraceRecorder, SampleKeepsOneInN) {
  common::FakeClock clock;
  TraceRecorder recorder(16, &clock);
  std::vector<bool> kept;
  for (int i = 0; i < 9; ++i) kept.push_back(recorder.sample(4));
  const std::vector<bool> expected{true,  false, false, false, true,
                                   false, false, false, true};
  EXPECT_EQ(kept, expected);
  // n <= 1 keeps everything and burns no tick state.
  EXPECT_TRUE(recorder.sample(0));
  EXPECT_TRUE(recorder.sample(1));
}

TEST(TraceRecorder, FullBufferDropsAndCountsInsteadOfWrapping) {
  common::FakeClock clock;
  TraceRecorder recorder(4, &clock);
  for (int i = 0; i < 7; ++i) {
    recorder.instant("tick", "test", TraceArgs{-1, -1, i});
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // The first four survive untouched — truncation, never overwrite.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].args.interval, i);
  EXPECT_EQ(recorder.dropped(), 3u);
}

TEST(TraceRecorder, ConcurrentWritersPublishEveryClaimedSlot) {
  common::FakeClock clock;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  TraceRecorder recorder(kThreads * kPerThread, &clock);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.instant("tick", "test");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  const auto events = recorder.events();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.dropped(), 0u);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& event : events) tids.insert(event.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(ChromeTrace, RoundTripsEveryFieldExactly) {
  std::vector<TraceEvent> events;
  TraceEvent complete;
  complete.name = "channel.send";
  complete.category = "channel";
  complete.value_key = "attempts";
  complete.ts_ns = 1'234'567'891;  // exercises the fractional µs digits
  complete.dur_ns = 999;
  complete.tid = 3;
  complete.phase = TracePhase::kComplete;
  complete.args = TraceArgs{1, 2, 5, 4};
  events.push_back(complete);
  TraceEvent instant;
  instant.name = "net.connect";
  instant.category = "transport";
  instant.value_key = "";
  instant.ts_ns = 7;
  instant.tid = 0;
  instant.phase = TracePhase::kInstant;
  instant.args = TraceArgs{1, 0, -1, -1};
  events.push_back(instant);

  const std::string json = to_chrome_trace(events, 42);
  const ParsedTrace parsed = from_chrome_trace(json);
  EXPECT_EQ(parsed.pid, 42u);
  ASSERT_EQ(parsed.events.size(), 2u);
  const TraceEvent& a = parsed.events[0];
  EXPECT_STREQ(a.name, "channel.send");
  EXPECT_STREQ(a.category, "channel");
  EXPECT_STREQ(a.value_key, "attempts");
  EXPECT_EQ(a.ts_ns, 1'234'567'891u);
  EXPECT_EQ(a.dur_ns, 999u);
  EXPECT_EQ(a.tid, 3u);
  EXPECT_EQ(a.phase, TracePhase::kComplete);
  EXPECT_EQ(a.args.device, 1);
  EXPECT_EQ(a.args.epoch, 2);
  EXPECT_EQ(a.args.interval, 5);
  EXPECT_EQ(a.args.value, 4);
  const TraceEvent& b = parsed.events[1];
  EXPECT_EQ(b.phase, TracePhase::kInstant);
  EXPECT_EQ(b.ts_ns, 7u);
  EXPECT_EQ(b.args.epoch, 0);
  EXPECT_EQ(b.args.interval, -1);
  // Re-rendering the parsed events reproduces the bytes: the format is
  // a fixed point, which is what "valid chrome-trace output" means for
  // the pipeline smoke.
  EXPECT_EQ(to_chrome_trace(parsed.events, parsed.pid), json);
}

TEST(ChromeTrace, EmptyTraceRoundTrips) {
  const std::string json = to_chrome_trace({}, 9);
  EXPECT_EQ(json, "[]\n");
  const ParsedTrace parsed = from_chrome_trace(json);
  EXPECT_TRUE(parsed.events.empty());
}

TEST(ChromeTrace, EscapesQuotesBackslashesAndNewlines) {
  TraceEvent event;
  event.name = "a\"b\\c\nd";
  event.category = "cat";
  event.phase = TracePhase::kInstant;
  const std::string json = to_chrome_trace({event}, 0);
  EXPECT_NE(json.find(R"(a\"b\\c\nd)"), std::string::npos);
  const ParsedTrace parsed = from_chrome_trace(json);
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_STREQ(parsed.events[0].name, "a\"b\\c\nd");
}

TEST(ChromeTrace, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)from_chrome_trace(""), std::invalid_argument);
  EXPECT_THROW((void)from_chrome_trace("{}"), std::invalid_argument);
  EXPECT_THROW((void)from_chrome_trace("[]\n junk"),
               std::invalid_argument);
  // A dur with only two fractional digits is not the emitted format.
  EXPECT_THROW(
      (void)from_chrome_trace(
          R"([{"name":"x","cat":"y","ph":"X","ts":1.00,"dur":1.000,)"
          R"("pid":0,"tid":0,"args":{}}])"
          "\n"),
      std::invalid_argument);
  // Events exported under different pids cannot be one trace.
  TraceEvent event;
  event.name = "x";
  event.category = "y";
  event.phase = TracePhase::kInstant;
  std::string a = to_chrome_trace({event}, 1);
  std::string b = to_chrome_trace({event}, 2);
  // Splice b's event into a's array.
  const std::string mixed = a.substr(0, a.size() - 2) + ",\n " +
                            b.substr(1, b.size() - 3) + "]\n";
  EXPECT_THROW((void)from_chrome_trace(mixed), std::invalid_argument);
}

}  // namespace
}  // namespace nd::telemetry
