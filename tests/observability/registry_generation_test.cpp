// Snapshot consistency under the registry's seqlock generation stamp:
// a multi-instrument update wrapped in ScopedRegistryUpdate is never
// observed halfway, so a snapshot can't pair one interval's counter
// with the previous interval's gauge — the regression the interval
// close mirror relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "telemetry/metrics.hpp"

namespace nd::telemetry {
namespace {

TEST(RegistryGeneration, StampsTrackUpdateWindows) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.generation(), 0u);
  registry.begin_update();
  EXPECT_EQ(registry.generation(), 1u);  // odd = in flight
  registry.end_update();
  EXPECT_EQ(registry.generation(), 2u);
  {
    const ScopedRegistryUpdate update(&registry);
    EXPECT_EQ(registry.generation() % 2, 1u);
  }
  EXPECT_EQ(registry.generation(), 4u);
  // A null registry is the disabled-telemetry path: one branch, no-op.
  const ScopedRegistryUpdate detached(nullptr);
}

TEST(RegistryGeneration, SnapshotGivesUpOnAStuckWriterInsteadOfHanging) {
  MetricsRegistry registry;
  registry.counter("nd_test_events_total").add(3);
  registry.begin_update();  // never ended: simulates a wedged writer
  const Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 1u);
  EXPECT_EQ(snapshot.samples[0].counter_value, 3u);
}

TEST(RegistryGeneration, SnapshotNeverSplitsACounterGaugePair) {
  // The interval-close shape: a writer advances a counter and mirrors
  // its value into a gauge inside one update window. Any snapshot that
  // reads the two out of lockstep has torn the update — exactly the
  // stale-gauge bug the generation stamp exists to prevent.
  MetricsRegistry registry;
  Counter& counter = registry.counter("nd_session_intervals_total");
  Gauge& gauge = registry.gauge("nd_session_effective_threshold");
  {
    const ScopedRegistryUpdate seed(&registry);
    counter.add(1);
    gauge.set(1.0);
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint64_t i = 2; !stop.load(std::memory_order_relaxed);
         ++i) {
      {
        const ScopedRegistryUpdate update(&registry);
        counter.increment();
        gauge.set(static_cast<double>(i));
      }
      // Leave a quiescent window between updates so the reader's
      // bounded retry always finds one (a real interval close is
      // seconds apart; back-to-back windows would starve it).
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < 2'000; ++i) {
    const Snapshot snapshot = registry.snapshot();
    const Snapshot::Sample* count =
        snapshot.find("nd_session_intervals_total");
    const Snapshot::Sample* mirror =
        snapshot.find("nd_session_effective_threshold");
    ASSERT_NE(count, nullptr);
    ASSERT_NE(mirror, nullptr);
    EXPECT_EQ(static_cast<double>(count->counter_value),
              mirror->gauge_value)
        << "snapshot paired a counter with a stale gauge";
  }
  stop = true;
  writer.join();
}

}  // namespace
}  // namespace nd::telemetry
