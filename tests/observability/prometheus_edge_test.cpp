// Prometheus exposition edge cases for the scrape path: label-value
// escaping, empty label sets, and the byte-stability of a series'
// identity across the device → trailer → collector → re-export chain —
// what makes fleet dashboards line up with device dashboards.
#include <gtest/gtest.h>

#include <string>

#include "telemetry/aggregate.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace nd::telemetry {
namespace {

TEST(PrometheusEdge, EscapesQuotesBackslashesAndNewlinesInLabelValues) {
  MetricsRegistry registry;
  registry
      .counter("nd_test_events_total",
               Labels{{"path", "a\"b\\c\nd"}})
      .add(1);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find(R"(path="a\"b\\c\nd")"), std::string::npos)
      << text;
  // The raw control bytes must not leak into the exposition: the only
  // newlines are the line separators.
  EXPECT_EQ(text.find("a\"b"), std::string::npos) << text;
}

TEST(PrometheusEdge, EmptyLabelSetsRenderWithoutBraces) {
  MetricsRegistry registry;
  registry.counter("nd_test_events_total").add(2);
  registry.gauge("nd_test_depth").set(1.5);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("nd_test_events_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("nd_test_depth 1.5\n"), std::string::npos);
  EXPECT_EQ(text.find("{}"), std::string::npos) << text;
}

TEST(PrometheusEdge, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("nd_test_latency_ns");
  histogram.record(1);
  histogram.record(3);
  histogram.record(3);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE nd_test_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("nd_test_latency_ns_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  // Buckets are cumulative in the exposition even though the registry
  // stores them sparsely.
  EXPECT_NE(text.find("nd_test_latency_ns_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nd_test_latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("nd_test_latency_ns_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("nd_test_latency_ns_count 3\n"),
            std::string::npos);
}

TEST(PrometheusEdge, TrailerToCollectorReExportIsByteStable) {
  // Device side: an assorted registry with escaping-hostile labels.
  MetricsRegistry device;
  device.counter("nd_session_packets_total").add(41);
  device
      .counter("nd_flowmem_inserts_total", Labels{{"shard", "0"}})
      .add(7);
  device.gauge("nd_flowmem_occupancy", Labels{{"note", "a\"b\\c"}})
      .set(0.25);
  device.histogram("nd_shard_merge_ns").record(9);
  const std::string trailer = to_json_line(device.snapshot(3));

  // Two independent collectors ingest the same trailer: their scrapes
  // must match byte for byte — series identity (name, sorted labels,
  // escaping) is a function of the trailer alone, nothing ambient.
  const auto scrape = [&trailer] {
    MetricsRegistry registry;
    FleetAggregator aggregator(registry);
    aggregator.ingest(5, from_json_line(trailer));
    return to_prometheus(registry.snapshot());
  };
  const std::string first = scrape();
  EXPECT_EQ(first, scrape());

  // Every device series appears under its device label, values intact.
  EXPECT_NE(
      first.find("nd_session_packets_total{device=\"5\"} 41\n"),
      std::string::npos)
      << first;
  EXPECT_NE(first.find(
                "nd_flowmem_inserts_total{device=\"5\",shard=\"0\"} 7"),
            std::string::npos)
      << first;
  EXPECT_NE(
      first.find(
          "nd_flowmem_occupancy{device=\"5\",note=\"a\\\"b\\\\c\"} "
          "0.25"),
      std::string::npos)
      << first;
  EXPECT_NE(first.find("nd_shard_merge_ns_sum{device=\"5\"} 9"),
            std::string::npos)
      << first;

  // Re-ingesting the identical trailer is a zero-delta round: counters
  // and histograms are unchanged, so the scrape bytes are too.
  MetricsRegistry registry;
  FleetAggregator aggregator(registry);
  aggregator.ingest(5, from_json_line(trailer));
  const std::string before = to_prometheus(registry.snapshot());
  aggregator.ingest(5, from_json_line(trailer));
  EXPECT_EQ(to_prometheus(registry.snapshot()), before);
}

}  // namespace
}  // namespace nd::telemetry
