// FleetAggregator semantics: cumulative-in/delta-out counter tracking
// (including the device-restart reset), per-device gauge mirrors with a
// max-rollup fleet view, histogram bucket/sum merging, and the device
// label ownership rules — all through the same JSON-lines trailer
// encoding the collector ingests.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "telemetry/aggregate.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace nd::telemetry {
namespace {

/// Build a device-side snapshot the way a member does: fill a registry,
/// snapshot, and round-trip through the v3 trailer encoding so the
/// aggregator sees exactly what a wire trailer carries.
Snapshot through_trailer(const MetricsRegistry& registry,
                         std::uint64_t interval) {
  return from_json_line(to_json_line(registry.snapshot(interval)));
}

Labels device_labels(const std::string& id) {
  return Labels{{"device", id}};
}

TEST(FleetAggregator, CountersSumAcrossDevicesAsDeltas) {
  MetricsRegistry target;
  FleetAggregator aggregator(target);

  MetricsRegistry member1;
  member1.counter("nd_session_packets_total").add(5);
  aggregator.ingest(1, through_trailer(member1, 0));
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("1"))
                .value(),
            5u);
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("fleet"))
                .value(),
            5u);

  // Second interval: cumulative 8 arrives, only the delta of 3 lands.
  member1.counter("nd_session_packets_total").add(3);
  aggregator.ingest(1, through_trailer(member1, 1));
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("1"))
                .value(),
            8u);

  MetricsRegistry member2;
  member2.counter("nd_session_packets_total").add(4);
  aggregator.ingest(2, through_trailer(member2, 1));
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("2"))
                .value(),
            4u);
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("fleet"))
                .value(),
            12u);
  EXPECT_EQ(aggregator.devices_seen(), 2u);
}

TEST(FleetAggregator, BackwardsCounterMeansRestartAndReAddsFromZero) {
  MetricsRegistry target;
  FleetAggregator aggregator(target);

  MetricsRegistry before;
  before.counter("nd_session_packets_total").add(8);
  aggregator.ingest(1, through_trailer(before, 0));

  // The device restarts with a fresh registry: cumulative drops to 2.
  MetricsRegistry after;
  after.counter("nd_session_packets_total").add(2);
  aggregator.ingest(1, through_trailer(after, 1));

  // Rollups stay monotonic: 8 from the first life + 2 from the second.
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("1"))
                .value(),
            10u);
  EXPECT_EQ(target.counter("nd_session_packets_total",
                           device_labels("fleet"))
                .value(),
            10u);
}

TEST(FleetAggregator, ZeroDeltaCountersStillRegisterForTheScrape) {
  MetricsRegistry target;
  FleetAggregator aggregator(target);
  MetricsRegistry member;
  (void)member.counter("nd_session_unclassified_total");
  aggregator.ingest(3, through_trailer(member, 0));
  const Snapshot snapshot = target.snapshot();
  EXPECT_NE(snapshot.find("nd_session_unclassified_total",
                          device_labels("3")),
            nullptr);
  EXPECT_NE(snapshot.find("nd_session_unclassified_total",
                          device_labels("fleet")),
            nullptr);
}

TEST(FleetAggregator, GaugesTrackLatestPerDeviceAndMaxAcrossFleet) {
  MetricsRegistry target;
  FleetAggregator aggregator(target);

  MetricsRegistry member1;
  member1.gauge("nd_flowmem_occupancy").set(0.4);
  aggregator.ingest(1, through_trailer(member1, 0));
  MetricsRegistry member2;
  member2.gauge("nd_flowmem_occupancy").set(0.9);
  aggregator.ingest(2, through_trailer(member2, 0));

  EXPECT_DOUBLE_EQ(
      target.gauge("nd_flowmem_occupancy", device_labels("1")).value(),
      0.4);
  EXPECT_DOUBLE_EQ(
      target.gauge("nd_flowmem_occupancy", device_labels("2")).value(),
      0.9);
  EXPECT_DOUBLE_EQ(
      target.gauge("nd_flowmem_occupancy", device_labels("fleet"))
          .value(),
      0.9);

  // The worst member improves; the fleet view must follow back down.
  member2.gauge("nd_flowmem_occupancy").set(0.5);
  aggregator.ingest(2, through_trailer(member2, 1));
  EXPECT_DOUBLE_EQ(
      target.gauge("nd_flowmem_occupancy", device_labels("fleet"))
          .value(),
      0.5);
}

TEST(FleetAggregator, HistogramsMergeBucketsAndSumsAsDeltas) {
  MetricsRegistry target;
  FleetAggregator aggregator(target);

  MetricsRegistry member;
  member.histogram("nd_shard_merge_ns").record(6);   // bucket [4,7]
  member.histogram("nd_shard_merge_ns").record(100);  // bucket [64,127]
  aggregator.ingest(1, through_trailer(member, 0));

  Histogram& mine =
      target.histogram("nd_shard_merge_ns", device_labels("1"));
  EXPECT_EQ(mine.count(), 2u);
  EXPECT_EQ(mine.sum(), 106u);
  EXPECT_EQ(mine.bucket_count(Histogram::bucket_of_bound(7)), 1u);
  EXPECT_EQ(mine.bucket_count(Histogram::bucket_of_bound(127)), 1u);

  // Next interval adds one more observation; only the delta merges.
  member.histogram("nd_shard_merge_ns").record(6);
  aggregator.ingest(1, through_trailer(member, 1));
  EXPECT_EQ(mine.count(), 3u);
  EXPECT_EQ(mine.sum(), 112u);
  EXPECT_EQ(
      target.histogram("nd_shard_merge_ns", device_labels("fleet"))
          .count(),
      3u);
}

TEST(FleetAggregator, PreservesOtherLabelsAndOwnsTheDeviceLabel) {
  MetricsRegistry target;
  FleetAggregator aggregator(target);

  MetricsRegistry member;
  // The member already carries shard labels — and, adversarially, a
  // device label of its own; the aggregator owns that dimension.
  member
      .counter("nd_flowmem_inserts_total",
               Labels{{"device", "stale"}, {"shard", "2"}})
      .add(3);
  aggregator.ingest(7, through_trailer(member, 0));

  const Snapshot snapshot = target.snapshot();
  EXPECT_NE(snapshot.find("nd_flowmem_inserts_total",
                          Labels{{"device", "7"}, {"shard", "2"}}),
            nullptr);
  EXPECT_NE(snapshot.find("nd_flowmem_inserts_total",
                          Labels{{"device", "fleet"}, {"shard", "2"}}),
            nullptr);
  for (const Snapshot::Sample& sample : snapshot.samples) {
    for (const auto& [key, value] : sample.labels) {
      if (key == "device") EXPECT_NE(value, "stale");
    }
  }
}

}  // namespace
}  // namespace nd::telemetry
