// The differential suite (ctest label `differential`): replays identical
// synthesized traces through scalar, batched, sharded-uniform and
// sharded-adaptive devices and locks down the revised determinism
// contract — bit-equality where it is still promised, paper bounds
// (no false negatives above the effective threshold, usage steered into
// the 90% target band) where per-shard adaptation intentionally breaks
// it. Includes the PR acceptance scenario: 4 adaptive shards on the
// MAG preset end inside the target band while the uniform-threshold
// baseline leaves at least one shard outside it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../support/differential_harness.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "trace/presets.hpp"

namespace nd::testing {
namespace {

constexpr std::uint32_t kIntervals = 40;
/// Per-shard band convergence is asserted on the mean of the closing
/// intervals (see expect_mean_usage_in_band).
constexpr std::size_t kClosing = 5;
constexpr double kTarget = 0.90;
/// Acceptance band: [target - 10pp, target + 5pp].
constexpr double kBandLo = kTarget - 0.10;
constexpr double kBandHi = kTarget + 0.05;

/// Total memory budget, split across shards by the factory exactly like
/// a deployment would split SRAM. 256 entries per shard (at 4 shards)
/// keeps the usage granularity (1/capacity) and the flow-churn noise
/// both well below the band width; the stage arrays are sized so the
/// equilibrium threshold stays above the per-bucket byte load
/// (degenerate stages pass everything and the filter stops filtering).
constexpr std::size_t kTotalEntries = 1024;
constexpr std::uint32_t kTotalBuckets = 8192;
constexpr common::ByteCount kInitialThreshold = 50'000;

trace::TraceConfig ind_trace() {
  auto config = trace::Presets::ind();
  config.num_intervals = kIntervals;
  return config;
}

trace::TraceConfig mag_trace() {
  auto config = trace::scaled(trace::Presets::mag(), 0.05);
  config.num_intervals = kIntervals;
  return config;
}

DifferentialConfig multistage_config(std::uint32_t shards) {
  DifferentialConfig config;
  config.shards = shards;
  config.seed = 1;
  config.adaptor = damped_multistage_adaptor();
  config.factory = [](std::uint32_t, std::uint32_t shard_count,
                      std::uint64_t seed) {
    core::MultistageFilterConfig inner;
    inner.flow_memory_entries = kTotalEntries / shard_count;
    inner.depth = 3;
    inner.buckets_per_stage = kTotalBuckets / shard_count;
    inner.threshold = kInitialThreshold;
    inner.conservative_update = true;
    inner.shielding = true;
    inner.preserve = flowmem::PreservePolicy::kPreserve;
    inner.seed = seed;
    return std::make_unique<core::MultistageFilter>(inner);
  };
  return config;
}

const DifferentialTrace& ind_differential_trace() {
  static const DifferentialTrace trace = make_differential_trace(
      ind_trace(), packet::FlowDefinition::five_tuple());
  return trace;
}

TEST(Differential, ScalarAndBatchedAreBitIdentical) {
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  expect_equal_series(run_mode(config, trace, DeviceMode::kScalar),
                      run_mode(config, trace, DeviceMode::kBatched));
}

TEST(Differential, ShardedUniformIsDeterministicAndPoolInvariant) {
  // The PR 1 contract, unchanged by this PR: with adaptation off the
  // sharded device is a pure function of the input stream, and the
  // worker pool changes wall clock only.
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  const auto first = run_mode(config, trace, DeviceMode::kShardedUniform);
  const auto second = run_mode(config, trace, DeviceMode::kShardedUniform);
  expect_equal_series(first, second);

  common::ThreadPool pool(3);
  auto pooled_config = config;
  pooled_config.pool = &pool;
  expect_equal_series(
      first, run_mode(pooled_config, trace, DeviceMode::kShardedUniform));
}

TEST(Differential, ShardedAdaptiveIsDeterministicAndPoolInvariant) {
  // Adaptation is driven by deterministic per-shard usage, so the
  // sharded-adaptive device keeps the repeated-run/pool guarantee even
  // though it no longer matches the scalar adaptive device.
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  const auto first = run_mode(config, trace, DeviceMode::kShardedAdaptive);
  expect_equal_series(first,
                      run_mode(config, trace, DeviceMode::kShardedAdaptive));

  common::ThreadPool pool(3);
  auto pooled_config = config;
  pooled_config.pool = &pool;
  expect_equal_series(
      first, run_mode(pooled_config, trace, DeviceMode::kShardedAdaptive));
}

TEST(Differential, ShardedUniformMergesTheScalarFlowSpace) {
  // Uniform sharding partitions the flow space: the merged per-interval
  // reports carry the per-shard annotations, the entry sum, and the
  // shared threshold.
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  const auto reports = run_mode(config, trace, DeviceMode::kShardedUniform);
  for (const core::Report& report : reports) {
    ASSERT_EQ(report.shards.size(), 4u);
    std::size_t entries = 0;
    for (const core::ShardStatus& shard : report.shards) {
      EXPECT_EQ(shard.threshold, kInitialThreshold);
      EXPECT_EQ(shard.next_threshold, shard.threshold);
      EXPECT_EQ(shard.capacity, kTotalEntries / 4u);
      entries += shard.entries_used;
    }
    EXPECT_EQ(report.entries_used, entries);
    EXPECT_EQ(report.threshold, kInitialThreshold);
    EXPECT_EQ(core::effective_threshold(report), kInitialThreshold);
  }
}

TEST(Differential, ShardedAdaptiveHasNoFalseNegativesAboveEffectiveThreshold) {
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  const auto reports = run_mode(config, trace, DeviceMode::kShardedAdaptive);
  ASSERT_EQ(reports.size(), trace.truth.size());
  // The guarantee is conditional on the flow memory not filling up
  // (see any_shard_overflowed); the counter keeps the loop from
  // vacuously skipping everything.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    SCOPED_TRACE("interval " + std::to_string(i));
    if (any_shard_overflowed(reports[i])) continue;
    ++checked;
    expect_no_false_negatives(reports[i], trace.truth[i]);
  }
  EXPECT_GE(2 * checked, reports.size());
}

TEST(Differential, ShardedAdaptiveConvergesIntoTargetBand) {
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  const auto reports = run_mode(config, trace, DeviceMode::kShardedAdaptive);
  expect_mean_usage_in_band(reports, kClosing, kBandLo, kBandHi);
}

TEST(Differential, AllFourModesReportHeavyHittersConsistently) {
  // Cross-mode sanity on the final interval: every mode identifies the
  // very largest true flows (10x the largest threshold any mode ran
  // with), whatever its threshold trajectory was.
  const auto& trace = ind_differential_trace();
  const auto config = multistage_config(4);
  for (const DeviceMode mode : kAllDeviceModes) {
    SCOPED_TRACE(mode_name(mode));
    const auto reports = run_mode(config, trace, mode);
    const core::Report& last = reports.back();
    const common::ByteCount cutoff =
        10 * std::max(core::effective_threshold(last), kInitialThreshold);
    for (const auto& [key, size] : trace.truth.back()) {
      if (size >= cutoff) {
        EXPECT_NE(core::find_flow(last, key), nullptr)
            << "flow " << key.to_string();
      }
    }
  }
}

// ---------------------------------------------------------------------
// PR acceptance scenario: MAG preset, 4 shards, adaptive vs the uniform
// global-adaptor baseline (PR 1's AdaptiveDevice-over-ShardedDevice
// behaviour, reproduced here with an external global adaptor).
// ---------------------------------------------------------------------

TEST(Differential, MagAdaptiveShardsEndInBandWhereUniformBaselineDoesNot) {
  const DifferentialTrace trace = make_differential_trace(
      mag_trace(), packet::FlowDefinition::five_tuple());
  const auto config = multistage_config(4);

  // Per-shard adaptation: every shard's closing usage ends in band —
  // also on the very last interval, the PR's acceptance criterion.
  const auto adaptive =
      run_mode(config, trace, DeviceMode::kShardedAdaptive);
  expect_usage_in_band(adaptive.back(), kBandLo, kBandHi);
  expect_mean_usage_in_band(adaptive, kClosing, kBandLo, kBandHi);

  // Uniform baseline: one global adaptor steers the *aggregate* usage,
  // exactly like PR 1's global set_threshold path.
  const auto device = make_device(config, DeviceMode::kShardedUniform);
  core::ThresholdAdaptor global(config.adaptor);
  std::vector<core::Report> uniform;
  for (const auto& interval : trace.intervals) {
    device->observe_batch(interval);
    uniform.push_back(device->end_interval());
    device->set_threshold(global.update(device->threshold(),
                                        uniform.back().entries_used,
                                        device->flow_memory_capacity()));
  }

  // The aggregate lands near target, but the skewed per-shard slices do
  // not all fit the band under one global threshold: on the same
  // closing statistic, at least one shard ends outside.
  const std::vector<double> mean = mean_usage_per_shard(uniform, kClosing);
  ASSERT_EQ(mean.size(), 4u);
  bool some_shard_outside = false;
  for (const double usage : mean) {
    some_shard_outside |= usage < kBandLo || usage > kBandHi;
  }
  const eval::ShardUsageSummary final_summary =
      eval::summarize_shards(uniform.back());
  EXPECT_TRUE(some_shard_outside)
      << "uniform baseline unexpectedly balanced: final min usage "
      << final_summary.min_usage << ", max " << final_summary.max_usage;
}

}  // namespace
}  // namespace nd::testing
