// Decode-hardening fuzz tables for the two wire decoders.
//
// Table-driven rather than random: every strict prefix and every
// single-byte flip of known-good payloads is tried at every offset, so
// the assertions are exhaustive over the interesting input space and
// the suite stays deterministic. The contract under test: malformed
// input raises CodecError/PcapError — never UB, over-reads, or
// unbounded allocation (this suite is part of the sanitizer builds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "packet/flow_key.hpp"
#include "pcap/pcap.hpp"
#include "reporting/record_codec.hpp"
#include "robustness/fault.hpp"

namespace nd {
namespace {

using reporting::CodecError;

core::Report sample_report(std::size_t flows, std::size_t shards) {
  core::Report report;
  report.interval = 4;
  report.threshold = 77'000;
  report.entries_used = flows;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FE,
        static_cast<std::uint16_t>(4000 + i), 443,
        packet::IpProtocol::kTcp);
    flow.estimated_bytes = 90'000 + i;
    flow.exact = (i % 2) == 0;
    report.flows.push_back(flow);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    core::ShardStatus status;
    status.threshold = 70'000 + s;
    status.next_threshold = 68'000 + s;
    status.smoothed_usage = 0.5;
    status.entries_used = 10 + s;
    status.capacity = 128;
    status.packets = 100 + s;
    status.bytes = 1'000 + s;
    report.shards.push_back(status);
  }
  return report;
}

/// Decode every strict prefix; all must throw except lengths listed in
/// `valid_prefixes` (a v3 payload without its optional trailer is
/// itself a complete payload).
void expect_all_prefixes_rejected(
    const std::vector<std::uint8_t>& payload,
    const std::vector<std::size_t>& valid_prefixes = {}) {
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::span<const std::uint8_t> prefix(payload.data(), len);
    const bool expected_valid =
        std::find(valid_prefixes.begin(), valid_prefixes.end(), len) !=
        valid_prefixes.end();
    if (expected_valid) {
      EXPECT_NO_THROW((void)reporting::decode_full(prefix))
          << "prefix " << len;
    } else {
      EXPECT_THROW((void)reporting::decode_full(prefix), CodecError)
          << "prefix of " << len << " bytes accepted";
    }
  }
}

/// Flip one byte at every offset; decode must throw CodecError or
/// return normally — anything else (crash, sanitizer report) fails.
void expect_all_flips_contained(const std::vector<std::uint8_t>& payload) {
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (const std::uint8_t pattern : {0x01, 0x80, 0xFF}) {
      auto corrupt = payload;
      corrupt[i] ^= pattern;
      try {
        (void)reporting::decode_full(corrupt);
      } catch (const CodecError&) {
        // rejected: fine. Decoding to a wrong-but-well-formed report is
        // also fine — unframed payloads carry no integrity check; that
        // is what the CRC framing below is for.
      }
    }
  }
}

TEST(CodecHardening, V3TruncationTableNoFlowsNoShards) {
  const auto payload =
      reporting::encode(sample_report(0, 0), packet::FlowKeyKind::kFiveTuple);
  expect_all_prefixes_rejected(payload);
}

TEST(CodecHardening, V3TruncationTableFlowsAndShards) {
  const auto payload =
      reporting::encode(sample_report(3, 2), packet::FlowKeyKind::kFiveTuple);
  expect_all_prefixes_rejected(payload);
}

TEST(CodecHardening, V3TruncationTableWithMetricsTrailer) {
  const core::Report report = sample_report(2, 2);
  const std::string metrics = "{\"interval\":4,\"metrics\":[]}";
  const auto payload =
      reporting::encode(report, packet::FlowKeyKind::kFiveTuple, metrics);
  // The one decodable strict prefix: the complete payload minus the
  // whole optional trailer section.
  expect_all_prefixes_rejected(payload,
                               {reporting::encoded_size(report)});
}

TEST(CodecHardening, V1TruncationTable) {
  auto payload = reporting::encode(sample_report(3, 0), packet::FlowKeyKind::kFiveTuple);
  payload[5] = 1;  // no shard section, so this is a complete v1 payload
  ASSERT_NO_THROW((void)reporting::decode(payload));
  expect_all_prefixes_rejected(payload);
}

TEST(CodecHardening, V2TruncationTable) {
  auto payload = reporting::encode(sample_report(2, 1), packet::FlowKeyKind::kFiveTuple);
  payload.resize(payload.size() - (reporting::kShardRecordBytes -
                                   reporting::kShardRecordBytesV2));
  payload[5] = 2;
  ASSERT_NO_THROW((void)reporting::decode(payload));
  expect_all_prefixes_rejected(payload);
}

TEST(CodecHardening, ByteFlipsNeverEscapeTheDecoder) {
  expect_all_flips_contained(
      reporting::encode(sample_report(3, 2), packet::FlowKeyKind::kFiveTuple));
  expect_all_flips_contained(reporting::encode(sample_report(2, 1),
                                    packet::FlowKeyKind::kFiveTuple,
                                    "{\"interval\":4,\"metrics\":[]}"));
}

TEST(CodecHardening, HugeRecordCountIsRejectedNotAllocated) {
  auto payload =
      reporting::encode(sample_report(1, 0), packet::FlowKeyKind::kFiveTuple);
  // Patch the record count (header bytes 12..15, big-endian) to the
  // maximum; the decoder must reject on the size check instead of
  // trusting the count and allocating gigabytes.
  payload[12] = payload[13] = payload[14] = payload[15] = 0xFF;
  EXPECT_THROW((void)reporting::decode(payload), CodecError);
}

TEST(CodecHardening, DegradedBitRoundTripsOnTheWire) {
  core::Report report = sample_report(1, 3);
  report.shards[1].degraded = true;
  const auto decoded = reporting::decode(
      reporting::encode(report, packet::FlowKeyKind::kFiveTuple));
  ASSERT_EQ(decoded.shards.size(), 3u);
  EXPECT_FALSE(decoded.shards[0].degraded);
  EXPECT_TRUE(decoded.shards[1].degraded);
  EXPECT_FALSE(decoded.shards[2].degraded);
}

TEST(FrameHardening, EveryTruncationIsRejected) {
  const auto frame = reporting::encode_framed(
      sample_report(3, 2), packet::FlowKeyKind::kFiveTuple);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::span<const std::uint8_t> prefix(frame.data(), len);
    EXPECT_THROW((void)reporting::decode_framed(prefix), CodecError)
        << "frame prefix of " << len << " bytes accepted";
  }
}

TEST(FrameHardening, EverySingleByteFlipIsRejected) {
  // The framed contract is strictly stronger than the raw payload's:
  // CRC32 detects every single-byte error, so any flip anywhere —
  // header or payload — must throw, never decode to a wrong report.
  const auto frame = reporting::encode_framed(
      sample_report(3, 2), packet::FlowKeyKind::kFiveTuple,
      "{\"interval\":4,\"metrics\":[]}");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (const std::uint8_t pattern : {0x01, 0x80, 0xFF}) {
      auto corrupt = frame;
      corrupt[i] ^= pattern;
      EXPECT_THROW((void)reporting::decode_framed(corrupt), CodecError)
          << "flip of byte " << i << " accepted";
    }
  }
}

TEST(FrameHardening, FrameRoundTripsPayloadAndMetrics) {
  const core::Report report = sample_report(2, 1);
  const std::string metrics = "{\"interval\":4,\"metrics\":[]}";
  const auto frame = reporting::encode_framed(
      report, packet::FlowKeyKind::kFiveTuple, metrics);
  EXPECT_EQ(frame.size(), reporting::kFrameHeaderBytes +
                              reporting::encoded_size(
                                  report, metrics.size()));
  const auto decoded = reporting::decode_framed(frame);
  EXPECT_EQ(decoded.report.flows.size(), 2u);
  EXPECT_EQ(decoded.metrics_json, metrics);
}

// ---------------------------------------------------------------------
// pcap reader hardening.

std::string valid_pcap(std::uint32_t packets, std::uint32_t snaplen) {
  std::ostringstream out(std::ios::binary);
  pcap::PcapWriter writer(out, snaplen);
  for (std::uint32_t i = 0; i < packets; ++i) {
    packet::PacketRecord record;
    record.timestamp_ns = 1'000'000ULL * (i + 1);
    record.src_ip = 0x0A000001 + i;
    record.dst_ip = 0x0A0000FE;
    record.src_port = static_cast<std::uint16_t>(5000 + i);
    record.dst_port = 80;
    record.protocol = packet::IpProtocol::kTcp;
    record.size_bytes = 200;
    writer.write(record);
  }
  return out.str();
}

std::vector<pcap::PcapPacket> read_all(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  pcap::PcapReader reader(in);
  std::vector<pcap::PcapPacket> packets;
  while (auto packet = reader.next()) {
    packets.push_back(std::move(*packet));
  }
  return packets;
}

TEST(PcapHardening, EmptyFileRejected) {
  EXPECT_THROW((void)read_all(std::string{}), pcap::PcapError);
}

TEST(PcapHardening, ZeroSnaplenRejectedAtOpen) {
  EXPECT_THROW((void)read_all(valid_pcap(1, 0)), pcap::PcapError);
}

TEST(PcapHardening, AbsurdSnaplenRejectedAtOpen) {
  // An attacker-controlled snaplen must not authorize huge per-packet
  // allocations (the old code also overflowed `snaplen + 4096`).
  EXPECT_THROW((void)read_all(valid_pcap(1, 0xFFFFFF00U)),
               pcap::PcapError);
  EXPECT_THROW((void)read_all(valid_pcap(1, pcap::kMaxSnapLen + 1)),
               pcap::PcapError);
}

TEST(PcapHardening, CaptureLengthAboveSnaplenRejected) {
  std::string bytes = valid_pcap(1, 512);
  // incl_len is the third u32 of the packet header, little-endian here
  // (the writer emits native magic): global header is 24 bytes, then
  // ts_sec, ts_usec, incl_len at offset 24 + 8.
  const std::size_t incl_len_at = 24 + 8;
  bytes[incl_len_at] = 0x01;
  bytes[incl_len_at + 1] = 0x02;  // 0x0201 = 513 > snaplen 512
  EXPECT_THROW((void)read_all(bytes), pcap::PcapError);
}

TEST(PcapHardening, TruncationAnywhereIsDetected) {
  const std::string bytes = valid_pcap(2, 512);
  const auto full = read_all(bytes);
  ASSERT_EQ(full.size(), 2u);
  // Every strict prefix either throws (mid-structure cut) or yields
  // fewer packets (cut exactly at a packet boundary) — never garbage.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      const auto partial = read_all(bytes.substr(0, len));
      EXPECT_LT(partial.size(), 2u) << "prefix " << len;
      for (const auto& packet : partial) {
        EXPECT_EQ(packet.data.size(), full[0].data.size());
      }
    } catch (const pcap::PcapError&) {
      // detected: fine
    }
  }
}

TEST(PcapHardening, TruncateFaultKeepsTheStreamAligned) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kTruncate;
  spec.schedule = {0};
  robustness::FaultInjector faults(
      robustness::FaultPlan(3).inject("pcap.truncate", spec));

  const std::string bytes = valid_pcap(2, 512);
  std::istringstream in(bytes, std::ios::binary);
  pcap::PcapReader reader(in);
  reader.attach_fault_injector(&faults);
  const auto first = reader.next();
  const auto second = reader.next();
  ASSERT_TRUE(first && second);
  // First packet shortened; the reader consumed the full capture, so
  // the second packet parses intact.
  EXPECT_LT(first->data.size(), second->data.size());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(PcapHardening, CorruptFaultFlipsExactlyOneCapturedByte) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kCorrupt;
  spec.schedule = {0};
  robustness::FaultInjector faults(
      robustness::FaultPlan(3).inject("pcap.corrupt", spec));

  const std::string bytes = valid_pcap(1, 512);
  const auto clean = read_all(bytes);
  std::istringstream in(bytes, std::ios::binary);
  pcap::PcapReader reader(in);
  reader.attach_fault_injector(&faults);
  const auto corrupted = reader.next();
  ASSERT_TRUE(corrupted.has_value());
  ASSERT_EQ(corrupted->data.size(), clean[0].data.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < corrupted->data.size(); ++i) {
    if (corrupted->data[i] != clean[0].data[i]) ++changed;
  }
  EXPECT_EQ(changed, 1u);
}

}  // namespace
}  // namespace nd
