// ShardedDevice watchdog and failure-surfacing suite.
//
// Three contracts: (1) a shard that misses the interval-close deadline
// is merged as degraded with its loss attributed exactly (every missing
// flow routes to that shard; its packet/byte tallies survive); (2) the
// abandoned task is drained before the shard is touched again, so the
// next interval is bit-identical to a fault-free run; (3) no future is
// ever silently dropped — a throwing shard task surfaces as ShardError
// carrying the shard index.
#include "core/sharded_device.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "../support/report_testing.hpp"
#include "common/thread_pool.hpp"
#include "core/multistage_filter.hpp"
#include "packet/classified_packet.hpp"
#include "packet/flow_key.hpp"
#include "robustness/fault.hpp"
#include "telemetry/metrics.hpp"

namespace nd::core {
namespace {

constexpr std::uint32_t kShards = 4;

std::unique_ptr<MeasurementDevice> make_replica(std::uint64_t seed) {
  MultistageFilterConfig config;
  config.flow_memory_entries = 256;
  config.depth = 2;
  config.buckets_per_stage = 128;
  config.threshold = 1'000;
  config.preserve = flowmem::PreservePolicy::kPreserve;
  config.seed = seed;
  return std::make_unique<MultistageFilter>(config);
}

ShardedDeviceConfig base_config(common::ThreadPool* pool) {
  ShardedDeviceConfig config;
  config.shards = kShards;
  config.seed = 17;
  config.pool = pool;
  return config;
}

ShardedDevice::Factory replica_factory() {
  return [](std::uint32_t, std::uint64_t shard_seed) {
    return make_replica(shard_seed);
  };
}

/// A deterministic batch of `flows` distinct heavy flows (every one far
/// above threshold) for interval `interval`.
std::vector<packet::ClassifiedPacket> make_batch(std::size_t flows,
                                                 std::uint32_t interval) {
  std::vector<packet::ClassifiedPacket> batch;
  batch.reserve(flows * 3);
  for (std::size_t i = 0; i < flows; ++i) {
    const packet::FlowKey key = packet::FlowKey::five_tuple(
        0x0A010000 + static_cast<std::uint32_t>(i),
        0x0A020000 + interval, static_cast<std::uint16_t>(2000 + i), 443,
        packet::IpProtocol::kTcp);
    for (int p = 0; p < 3; ++p) {
      batch.push_back(packet::ClassifiedPacket::from(key, 40'000));
    }
  }
  return batch;
}

robustness::FaultPlan stall_at(std::vector<std::uint64_t> schedule,
                               std::chrono::milliseconds stall) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kStall;
  spec.schedule = std::move(schedule);
  spec.stall = stall;
  return robustness::FaultPlan(17).inject("shard.stall", spec);
}

TEST(ShardWatchdog, DegradedShardLossIsAttributedExactly) {
  common::ThreadPool pool(3);
  telemetry::MetricsRegistry registry;

  // shard.stall occurrences run in shard order, so occurrence 2 of the
  // first end_interval is shard 2.
  robustness::FaultPlan plan =
      stall_at({2}, std::chrono::milliseconds(400));
  robustness::FaultInjector faults(plan);

  ShardedDeviceConfig faulted_config = base_config(&pool);
  faulted_config.watchdog_timeout = std::chrono::milliseconds(40);
  faulted_config.faults = &faults;
  faulted_config.metrics = &registry;
  ShardedDevice faulted(faulted_config, replica_factory());
  ShardedDevice baseline(base_config(&pool), replica_factory());

  const auto batch = make_batch(120, 0);
  faulted.observe_batch(batch);
  baseline.observe_batch(batch);
  Report degraded_report = faulted.end_interval();
  const Report clean_report = baseline.end_interval();

  ASSERT_EQ(degraded_report.shards.size(), kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(degraded_report.shards[s].degraded, s == 2) << "shard " << s;
    // The always-on tallies survive degradation: they were recorded on
    // the caller's thread before the fan-out.
    EXPECT_EQ(degraded_report.shards[s].packets,
              clean_report.shards[s].packets);
    EXPECT_EQ(degraded_report.shards[s].bytes,
              clean_report.shards[s].bytes);
  }
  EXPECT_GT(degraded_report.shards[2].packets, 0u);
  EXPECT_EQ(registry.counter("nd_shard_degraded_total").value(), 1u);

  // Exact loss attribution: the degraded report is missing precisely
  // the flows that route to shard 2, and keeps everything else.
  std::size_t routed_to_stuck = 0;
  for (const auto& flow : clean_report.flows) {
    const bool on_stuck = faulted.shard_of(flow.key.fingerprint()) == 2;
    routed_to_stuck += on_stuck ? 1 : 0;
    EXPECT_EQ(find_flow(degraded_report, flow.key) != nullptr, !on_stuck)
        << flow.key.to_string();
  }
  EXPECT_GT(routed_to_stuck, 0u);
  EXPECT_EQ(degraded_report.flows.size(),
            clean_report.flows.size() - routed_to_stuck);
}

TEST(ShardWatchdog, NextIntervalRecoversBitIdentically) {
  common::ThreadPool pool(3);
  robustness::FaultPlan plan =
      stall_at({1}, std::chrono::milliseconds(300));
  robustness::FaultInjector faults(plan);

  ShardedDeviceConfig faulted_config = base_config(&pool);
  faulted_config.watchdog_timeout = std::chrono::milliseconds(40);
  faulted_config.faults = &faults;
  ShardedDevice faulted(faulted_config, replica_factory());
  ShardedDevice baseline(base_config(&pool), replica_factory());

  const auto first = make_batch(100, 0);
  faulted.observe_batch(first);
  baseline.observe_batch(first);
  const Report degraded_report = faulted.end_interval();
  (void)baseline.end_interval();
  ASSERT_TRUE(degraded_report.shards[1].degraded);

  // The abandoned close finishes during the drain, before the shard
  // sees interval-1 packets, so the replicas re-converge: interval 1
  // must be bit-identical to the fault-free device, including the
  // previously stuck shard's flows.
  const auto second = make_batch(100, 1);
  faulted.observe_batch(second);
  baseline.observe_batch(second);
  Report recovered = faulted.end_interval();
  Report clean = baseline.end_interval();
  sort_by_size(recovered);
  sort_by_size(clean);
  testing::expect_reports_equal(recovered, clean);
  for (const auto& status : recovered.shards) {
    EXPECT_FALSE(status.degraded);
  }
}

TEST(ShardWatchdog, ZeroTimeoutWaitsOutTheStall) {
  // watchdog_timeout 0 is the pre-watchdog behaviour: the merge waits
  // for the stalled shard and the report matches a fault-free run.
  common::ThreadPool pool(3);
  robustness::FaultPlan plan =
      stall_at({1}, std::chrono::milliseconds(60));
  robustness::FaultInjector faults(plan);

  ShardedDeviceConfig faulted_config = base_config(&pool);
  faulted_config.faults = &faults;
  ShardedDevice faulted(faulted_config, replica_factory());
  ShardedDevice baseline(base_config(&pool), replica_factory());

  const auto batch = make_batch(80, 0);
  faulted.observe_batch(batch);
  baseline.observe_batch(batch);
  Report slow = faulted.end_interval();
  Report clean = baseline.end_interval();
  sort_by_size(slow);
  sort_by_size(clean);
  testing::expect_reports_equal(slow, clean);
  for (const auto& status : slow.shards) {
    EXPECT_FALSE(status.degraded);
  }
}

TEST(ShardWatchdog, DestructorDrainsAnAbandonedTask) {
  // Regression: destroying the device while a watchdog-abandoned close
  // is still running must join the task, not free state under it
  // (TSan/UBSan runs of this suite would flag the race).
  common::ThreadPool pool(3);
  robustness::FaultPlan plan =
      stall_at({3}, std::chrono::milliseconds(200));
  robustness::FaultInjector faults(plan);
  ShardedDeviceConfig config = base_config(&pool);
  config.watchdog_timeout = std::chrono::milliseconds(20);
  config.faults = &faults;
  {
    ShardedDevice device(config, replica_factory());
    device.observe_batch(make_batch(60, 0));
    const Report report = device.end_interval();
    ASSERT_TRUE(report.shards[3].degraded);
  }  // destructor must block on the stalled task
}

TEST(ShardFailures, ThrowingShardTaskSurfacesAsShardErrorOnClose) {
  // Regression for the silent-failure bug: every fan-out future is
  // joined and the first failure is rethrown with its shard index.
  common::ThreadPool pool(3);
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kThrow;
  spec.schedule = {0};  // first pool submit = end_interval's shard 1
  robustness::FaultInjector faults(
      robustness::FaultPlan(17).inject("pool.task", spec));
  pool.attach_fault_injector(&faults);

  ShardedDevice device(base_config(&pool), replica_factory());
  try {
    (void)device.end_interval();
    FAIL() << "expected ShardError";
  } catch (const ShardError& error) {
    EXPECT_EQ(error.shard(), 1u);
    EXPECT_NE(std::string(error.what()).find("shard 1"),
              std::string::npos);
  }
  pool.attach_fault_injector(nullptr);
}

TEST(ShardFailures, ThrowingShardTaskSurfacesAsShardErrorOnBatch) {
  common::ThreadPool pool(3);
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kThrow;
  spec.probability = 1.0;
  spec.max_fires = 1;
  robustness::FaultInjector faults(
      robustness::FaultPlan(17).inject("pool.task", spec));
  pool.attach_fault_injector(&faults);

  ShardedDevice device(base_config(&pool), replica_factory());
  EXPECT_THROW(device.observe_batch(make_batch(50, 0)), ShardError);
  pool.attach_fault_injector(nullptr);
}

}  // namespace
}  // namespace nd::core
