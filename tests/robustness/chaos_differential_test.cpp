// Chaos differential suite: the tentpole property of the robustness
// layer, checked end-to-end over device -> report -> framed channel ->
// collector.
//
// Under ANY fault plan, one of two things must hold for every interval:
// either the collector's reassembled stream is bit-identical to a
// fault-free run (the recovery paths healed the faults), or every
// missing record is accounted for — in ResilientChannelStats for
// transit losses, in ShardStatus::degraded plus the shard routing
// function for watchdog losses — and whatever did survive is a
// largest-flow-first prefix. Nothing is ever lost silently.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "../support/report_testing.hpp"
#include "common/thread_pool.hpp"
#include "core/multistage_filter.hpp"
#include "core/sharded_device.hpp"
#include "reporting/record_codec.hpp"
#include "reporting/resilient_channel.hpp"
#include "robustness/fault.hpp"
#include "trace/presets.hpp"

namespace nd {
namespace {

std::vector<std::vector<packet::ClassifiedPacket>> chaos_trace() {
  auto config = trace::scaled(trace::Presets::cos(31), 0.02);
  config.num_intervals = 5;
  return testing::classify_trace(config,
                                 packet::FlowDefinition::five_tuple());
}

std::unique_ptr<core::MeasurementDevice> make_device() {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 512;
  config.depth = 3;
  config.buckets_per_stage = 256;
  config.threshold = 30'000;
  config.preserve = flowmem::PreservePolicy::kPreserve;
  config.seed = 3;
  return std::make_unique<core::MultistageFilter>(config);
}

struct PipelineResult {
  /// Per-interval device reports, sorted largest-first (what a
  /// lossless channel would deliver).
  std::vector<core::Report> produced;
  /// The collector's reassembled in-order stream.
  std::vector<core::Report> received;
  reporting::ResilientChannelStats stats;
  reporting::ChannelStats channel;
};

PipelineResult run_pipeline(
    const std::vector<std::vector<packet::ClassifiedPacket>>& intervals,
    robustness::FaultInjector* faults,
    std::uint64_t bytes_per_interval = 1ULL << 20) {
  reporting::ResilientChannelConfig config;
  config.bytes_per_interval = bytes_per_interval;
  config.max_attempts = 4;
  config.faults = faults;
  reporting::ResilientChannel channel(config);

  auto device = make_device();
  PipelineResult result;
  for (const auto& batch : intervals) {
    device->observe_batch(batch);
    core::Report report = device->end_interval();
    core::sort_by_size(report);
    (void)channel.send(report);
    // entries_used is device-local state the wire format omits; zero it
    // so `produced` and the decoded `received` compare on the
    // wire-visible fields.
    report.entries_used = 0;
    result.produced.push_back(std::move(report));
  }
  result.received = channel.drain_ordered();
  result.stats = channel.stats();
  result.channel = channel.channel_stats();
  return result;
}

void expect_streams_equal(const std::vector<core::Report>& a,
                          const std::vector<core::Report>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    testing::expect_reports_equal(a[i], b[i]);
  }
}

TEST(ChaosDifferential, FaultFreePipelineDeliversEverything) {
  const auto intervals = chaos_trace();
  const PipelineResult result = run_pipeline(intervals, nullptr);
  expect_streams_equal(result.received, result.produced);
  EXPECT_EQ(result.stats.retries, 0u);
  EXPECT_EQ(result.stats.records_shed, 0u);
}

TEST(ChaosDifferential, DropsWithRetriesHealBitIdentically) {
  const auto intervals = chaos_trace();
  const PipelineResult baseline = run_pipeline(intervals, nullptr);

  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kDrop;
  spec.schedule = {0, 2, 5};  // drop some attempts, never max_attempts
  robustness::FaultInjector faults(
      robustness::FaultPlan(21).inject("channel.drop", spec));
  const PipelineResult chaotic = run_pipeline(intervals, &faults);

  expect_streams_equal(chaotic.received, baseline.received);
  EXPECT_EQ(chaotic.stats.drops, 3u);
  EXPECT_EQ(chaotic.stats.retries, 3u);
  EXPECT_EQ(chaotic.channel.reports_dropped, 3u);
  EXPECT_EQ(chaotic.stats.reports_abandoned, 0u);
}

TEST(ChaosDifferential, CorruptionIsDetectedAndHealedBitIdentically) {
  const auto intervals = chaos_trace();
  const PipelineResult baseline = run_pipeline(intervals, nullptr);

  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kCorrupt;
  spec.schedule = {0, 1, 3};  // two corruptions on report 0, one later
  robustness::FaultInjector faults(
      robustness::FaultPlan(22).inject("channel.corrupt", spec));
  const PipelineResult chaotic = run_pipeline(intervals, &faults);

  expect_streams_equal(chaotic.received, baseline.received);
  EXPECT_EQ(chaotic.stats.corruptions_detected, 3u);
  EXPECT_EQ(chaotic.stats.reports_abandoned, 0u);
}

TEST(ChaosDifferential, ReorderedStreamReassemblesInOrder) {
  const auto intervals = chaos_trace();
  const PipelineResult baseline = run_pipeline(intervals, nullptr);

  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kReorder;
  spec.schedule = {0, 2};
  robustness::FaultInjector faults(
      robustness::FaultPlan(23).inject("channel.reorder", spec));
  const PipelineResult chaotic = run_pipeline(intervals, &faults);

  // drain_ordered() undoes the reordering completely.
  expect_streams_equal(chaotic.received, baseline.received);
  EXPECT_EQ(chaotic.stats.reorders, 2u);
}

TEST(ChaosDifferential, PersistentDropIsAbandonedNeverSilent) {
  const auto intervals = chaos_trace();
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kDrop;
  spec.probability = 1.0;
  robustness::FaultInjector faults(
      robustness::FaultPlan(24).inject("channel.drop", spec));
  const PipelineResult chaotic = run_pipeline(intervals, &faults);

  // Total loss — but fully accounted: every report abandoned after
  // exactly max_attempts dropped attempts.
  EXPECT_TRUE(chaotic.received.empty());
  EXPECT_EQ(chaotic.stats.reports_abandoned, intervals.size());
  EXPECT_EQ(chaotic.stats.drops, 4u * intervals.size());
  EXPECT_EQ(chaotic.channel.reports_dropped, 4u * intervals.size());
  EXPECT_EQ(chaotic.channel.records_delivered, 0u);
}

TEST(ChaosDifferential, BudgetPressureShedsLargestFirstWithExactCounts) {
  const auto intervals = chaos_trace();
  // Room for the header and a single record per interval: every
  // interval with more than one heavy hitter must shed.
  const std::uint64_t budget =
      reporting::kHeaderBytes + 1 * reporting::kRecordBytes;
  const PipelineResult squeezed = run_pipeline(intervals, nullptr, budget);

  ASSERT_EQ(squeezed.received.size(), squeezed.produced.size());
  std::uint64_t shed_total = 0;
  for (std::size_t i = 0; i < squeezed.received.size(); ++i) {
    const core::Report& full = squeezed.produced[i];
    const core::Report& arrived = squeezed.received[i];
    EXPECT_EQ(arrived.interval, full.interval);
    ASSERT_LE(arrived.flows.size(), full.flows.size());
    // Survivors are exactly the largest-first prefix of the full
    // report: the heavy hitters the paper says are worth shipping.
    for (std::size_t f = 0; f < arrived.flows.size(); ++f) {
      EXPECT_EQ(arrived.flows[f].key, full.flows[f].key)
          << "interval " << i << " flow " << f;
      EXPECT_EQ(arrived.flows[f].estimated_bytes,
                full.flows[f].estimated_bytes);
    }
    shed_total += full.flows.size() - arrived.flows.size();
  }
  EXPECT_GT(shed_total, 0u);
  EXPECT_EQ(squeezed.stats.records_shed, shed_total);
  EXPECT_EQ(squeezed.channel.records_offered -
                squeezed.channel.records_delivered,
            shed_total);
}

TEST(ChaosDifferential, WatchdogLossIsAttributedAndSurvivesTheWire) {
  // The sharded end of the property: a stalled shard degrades instead
  // of hanging the merge; every flow missing versus the fault-free run
  // routes to that shard; and the degraded bit rides the framed wire
  // format to the collector.
  common::ThreadPool pool(3);
  auto factory = [](std::uint32_t, std::uint64_t shard_seed) {
    core::MultistageFilterConfig inner;
    inner.flow_memory_entries = 128;
    inner.depth = 2;
    inner.buckets_per_stage = 128;
    inner.threshold = 30'000;
    inner.preserve = flowmem::PreservePolicy::kPreserve;
    inner.seed = shard_seed;
    return std::make_unique<core::MultistageFilter>(inner);
  };
  core::ShardedDeviceConfig clean_config;
  clean_config.shards = 4;
  clean_config.seed = 19;
  clean_config.pool = &pool;

  // Fault-free run first: it tells us which shard owns the largest
  // heavy hitter, so the stall provably removes at least one flow.
  core::ShardedDevice clean(clean_config, factory);
  const auto intervals = chaos_trace();
  clean.observe_batch(intervals[0]);
  core::Report clean_report = clean.end_interval();
  core::sort_by_size(clean_report);
  ASSERT_FALSE(clean_report.flows.empty());
  const std::uint32_t stuck =
      clean.shard_of(clean_report.flows[0].key.fingerprint());

  robustness::FaultSpec stall;
  stall.kind = robustness::FaultKind::kStall;
  // shard.stall occurrences run in shard order during the first
  // interval close, so occurrence `stuck` is exactly that shard.
  stall.schedule = {stuck};
  stall.stall = std::chrono::milliseconds(300);
  robustness::FaultInjector faults(
      robustness::FaultPlan(19).inject("shard.stall", stall));
  core::ShardedDeviceConfig chaos_config = clean_config;
  chaos_config.watchdog_timeout = std::chrono::milliseconds(40);
  chaos_config.faults = &faults;

  core::ShardedDevice chaotic(chaos_config, factory);
  chaotic.observe_batch(intervals[0]);
  core::Report degraded_report = chaotic.end_interval();
  core::sort_by_size(degraded_report);

  ASSERT_TRUE(degraded_report.shards[stuck].degraded);
  std::size_t lost = 0;
  for (const auto& flow : clean_report.flows) {
    const bool on_stuck =
        chaotic.shard_of(flow.key.fingerprint()) == stuck;
    lost += on_stuck ? 1 : 0;
    EXPECT_EQ(core::find_flow(degraded_report, flow.key) != nullptr,
              !on_stuck)
        << flow.key.to_string();
  }
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(degraded_report.flows.size(),
            clean_report.flows.size() - lost);
  // The degraded shard's traffic tallies still account what it saw.
  EXPECT_EQ(degraded_report.shards[stuck].packets,
            clean_report.shards[stuck].packets);
  EXPECT_EQ(degraded_report.shards[stuck].bytes,
            clean_report.shards[stuck].bytes);

  // Ship it: the degraded flag must reach the collector through the
  // framed codec so the loss stays visible end to end.
  reporting::ResilientChannel channel(
      reporting::ResilientChannelConfig{});
  (void)channel.send(degraded_report);
  ASSERT_EQ(channel.received().size(), 1u);
  ASSERT_EQ(channel.received()[0].shards.size(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(channel.received()[0].shards[s].degraded, s == stuck)
        << "shard " << s;
  }
}

}  // namespace
}  // namespace nd
