// ResilientChannel unit suite: each transit fault in isolation, with
// exact accounting. The chaos differential suite composes them; here
// every counter is pinned to its precise expected value.
#include "reporting/resilient_channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "../support/report_testing.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/device.hpp"
#include "packet/flow_key.hpp"
#include "reporting/record_codec.hpp"
#include "robustness/fault.hpp"

namespace nd::reporting {
namespace {

core::Report make_report(common::IntervalIndex interval,
                         std::size_t flows) {
  core::Report report;
  report.interval = interval;
  report.threshold = 50'000;
  report.entries_used = flows;
  for (std::size_t i = 0; i < flows; ++i) {
    core::ReportedFlow flow;
    flow.key = packet::FlowKey::five_tuple(
        0x0A000001 + static_cast<std::uint32_t>(i), 0x0A0000FF,
        static_cast<std::uint16_t>(1000 + i), 80,
        packet::IpProtocol::kTcp);
    // Distinct descending-when-sorted sizes so prefix checks are exact.
    flow.estimated_bytes = 100'000 + 1'000 * ((i * 7) % flows);
    report.flows.push_back(flow);
  }
  return report;
}

robustness::FaultPlan site_schedule(const std::string& site,
                                    robustness::FaultKind kind,
                                    std::vector<std::uint64_t> schedule) {
  robustness::FaultSpec spec;
  spec.kind = kind;
  spec.schedule = std::move(schedule);
  return robustness::FaultPlan(5).inject(site, spec);
}

TEST(ResilientChannel, FaultFreeDeliveryIsBitIdentical) {
  ResilientChannelConfig config;
  ResilientChannel channel(config);
  const core::Report report = make_report(0, 8);
  const DeliveryOutcome outcome = channel.send(report);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.records_delivered, 8u);
  EXPECT_EQ(outcome.records_shed, 0u);

  // The channel sorts largest-first before shipping; compare against
  // the same ordering. entries_used is device-local state that the wire
  // format deliberately omits, so it reads back as zero.
  core::Report expected = report;
  core::sort_by_size(expected);
  expected.entries_used = 0;
  ASSERT_EQ(channel.received().size(), 1u);
  testing::expect_reports_equal(channel.received()[0], expected);

  const ResilientChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.reports_sent, 1u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.corruptions_detected, 0u);
  EXPECT_EQ(stats.reports_abandoned, 0u);
  EXPECT_EQ(stats.backoff_us, 0u);
}

TEST(ResilientChannel, SingleDropIsRetriedAndRecovered) {
  robustness::FaultPlan plan =
      site_schedule("channel.drop", robustness::FaultKind::kDrop, {0});
  robustness::FaultInjector faults(plan);
  ResilientChannelConfig config;
  config.faults = &faults;
  config.backoff_base = std::chrono::microseconds(100);
  ResilientChannel channel(config);

  const DeliveryOutcome outcome = channel.send(make_report(0, 4));
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 2u);
  const ResilientChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.backoff_us, 100u);  // base * 2^0
  EXPECT_EQ(channel.channel_stats().reports_dropped, 1u);
  ASSERT_EQ(channel.received().size(), 1u);
}

TEST(ResilientChannel, PersistentDropIsAbandonedWithFullAccounting) {
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kDrop;
  spec.probability = 1.0;
  robustness::FaultInjector faults(
      robustness::FaultPlan(5).inject("channel.drop", spec));
  ResilientChannelConfig config;
  config.faults = &faults;
  config.max_attempts = 3;
  config.backoff_base = std::chrono::microseconds(100);
  ResilientChannel channel(config);

  const DeliveryOutcome outcome = channel.send(make_report(0, 4));
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 3u);
  const ResilientChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.drops, 3u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.reports_abandoned, 1u);
  // Exponential: 100 * (1 + 2 + 4).
  EXPECT_EQ(stats.backoff_us, 700u);
  EXPECT_TRUE(channel.received().empty());
}

TEST(ResilientChannel, BackoffSleepsOnTheInjectedClockExactly) {
  // The clock seam: with sleep_on_backoff set and a FakeClock attached,
  // the retry loop's exponential schedule is asserted sleep by sleep —
  // no wall-clock cost, no flakiness under sanitizers.
  robustness::FaultSpec spec;
  spec.kind = robustness::FaultKind::kDrop;
  spec.probability = 1.0;
  robustness::FaultInjector faults(
      robustness::FaultPlan(5).inject("channel.drop", spec));
  common::FakeClock clock;
  ResilientChannelConfig config;
  config.faults = &faults;
  config.max_attempts = 4;
  config.backoff_base = std::chrono::microseconds(1000);
  config.sleep_on_backoff = true;
  config.clock = &clock;
  ResilientChannel channel(config);

  EXPECT_FALSE(channel.send(make_report(0, 2)).delivered);
  ASSERT_EQ(clock.sleep_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(clock.sleeps()[i],
              std::chrono::microseconds(1000) * (1 << i))
        << "retry " << i;
  }
  // 1 + 2 + 4 + 8 milliseconds, and the recorded stat agrees.
  EXPECT_EQ(clock.elapsed(), std::chrono::microseconds(15'000));
  EXPECT_EQ(channel.stats().backoff_us, 15'000u);
}

TEST(ResilientChannel, TransportFailuresRetryOnTheSameBackoffPath) {
  // A transport that always refuses the frame: every attempt lands in
  // transport_failures (not drops), the backoff schedule is identical
  // to the drop path, and nothing ever reaches received() — reception
  // belongs to the remote collector in transport mode.
  class RefusingTransport final : public FrameTransport {
   public:
    bool send_frame(std::span<const std::uint8_t>) override {
      ++calls;
      return false;
    }
    std::uint64_t calls{0};
  };
  RefusingTransport transport;
  common::FakeClock clock;
  ResilientChannelConfig config;
  config.max_attempts = 3;
  config.backoff_base = std::chrono::microseconds(200);
  config.sleep_on_backoff = true;
  config.clock = &clock;
  config.transport = &transport;
  ResilientChannel channel(config);

  const DeliveryOutcome outcome = channel.send(make_report(0, 3));
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(transport.calls, 3u);
  const ResilientChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.transport_failures, 3u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.reports_abandoned, 1u);
  ASSERT_EQ(clock.sleep_count(), 3u);
  EXPECT_EQ(clock.elapsed(), std::chrono::microseconds(200 * 7));
  EXPECT_TRUE(channel.received().empty());
}

TEST(ResilientChannel, CorruptionIsDetectedByCrcAndRetried) {
  robustness::FaultPlan plan = site_schedule(
      "channel.corrupt", robustness::FaultKind::kCorrupt, {0});
  robustness::FaultInjector faults(plan);
  ResilientChannelConfig config;
  config.faults = &faults;
  ResilientChannel channel(config);

  const core::Report report = make_report(3, 6);
  const DeliveryOutcome outcome = channel.send(report);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(channel.stats().corruptions_detected, 1u);

  core::Report expected = report;
  core::sort_by_size(expected);
  expected.entries_used = 0;  // not carried on the wire
  ASSERT_EQ(channel.received().size(), 1u);
  testing::expect_reports_equal(channel.received()[0], expected);
}

TEST(ResilientChannel, BudgetShedsSmallestFlowsExactly) {
  // Budget for the header plus three records: the survivors must be
  // exactly the three largest flows, in descending order.
  const core::Report report = make_report(0, 10);
  ResilientChannelConfig config;
  config.bytes_per_interval = kHeaderBytes + 3 * kRecordBytes;
  ResilientChannel channel(config);

  const DeliveryOutcome outcome = channel.send(report);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.records_delivered, 3u);
  EXPECT_EQ(outcome.records_shed, 7u);
  EXPECT_EQ(channel.stats().records_shed, 7u);

  core::Report expected = report;
  core::sort_by_size(expected);
  ASSERT_EQ(channel.received().size(), 1u);
  const core::Report& arrived = channel.received()[0];
  ASSERT_EQ(arrived.flows.size(), 3u);
  for (std::size_t i = 0; i < arrived.flows.size(); ++i) {
    EXPECT_EQ(arrived.flows[i].key, expected.flows[i].key) << i;
    EXPECT_EQ(arrived.flows[i].estimated_bytes,
              expected.flows[i].estimated_bytes);
  }
}

TEST(ResilientChannel, ReorderDelaysFramePastSuccessor) {
  robustness::FaultPlan plan = site_schedule(
      "channel.reorder", robustness::FaultKind::kReorder, {0});
  robustness::FaultInjector faults(plan);
  ResilientChannelConfig config;
  config.faults = &faults;
  ResilientChannel channel(config);

  (void)channel.send(make_report(0, 2));  // delayed into limbo
  EXPECT_TRUE(channel.received().empty());
  // The delayed frame surfaces right after its successor, i.e. the two
  // arrive swapped.
  (void)channel.send(make_report(1, 2));
  ASSERT_EQ(channel.received().size(), 2u);
  EXPECT_EQ(channel.received()[0].interval, 1u);  // arrived out of order
  EXPECT_EQ(channel.received()[1].interval, 0u);
  EXPECT_EQ(channel.stats().reorders, 1u);

  const std::vector<core::Report> ordered = channel.drain_ordered();
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0].interval, 0u);
  EXPECT_EQ(ordered[1].interval, 1u);
}

TEST(ResilientChannel, FlushSurfacesLimboAtEndOfStream) {
  robustness::FaultPlan plan = site_schedule(
      "channel.reorder", robustness::FaultKind::kReorder, {0});
  robustness::FaultInjector faults(plan);
  ResilientChannelConfig config;
  config.faults = &faults;
  ResilientChannel channel(config);

  (void)channel.send(make_report(0, 2));
  EXPECT_TRUE(channel.received().empty());
  channel.flush();
  ASSERT_EQ(channel.received().size(), 1u);
  EXPECT_EQ(channel.received()[0].interval, 0u);
}

TEST(ResilientChannel, TelemetryCountsEveryFailurePath) {
  telemetry::MetricsRegistry registry;
  robustness::FaultPlan plan =
      site_schedule("channel.drop", robustness::FaultKind::kDrop, {0});
  robustness::FaultInjector faults(plan);
  ResilientChannelConfig config;
  config.faults = &faults;
  config.metrics = &registry;
  ResilientChannel channel(config);

  (void)channel.send(make_report(0, 2));
  EXPECT_EQ(registry.counter("nd_channel_drops_total").value(), 1u);
  EXPECT_EQ(registry.counter("nd_channel_retries_total").value(), 1u);
  EXPECT_EQ(registry.counter("nd_channel_abandoned_total").value(), 0u);
}

TEST(ResilientChannel, EmptyReportDeliversCleanly) {
  ResilientChannel channel(ResilientChannelConfig{});
  core::Report report;
  report.interval = 9;
  report.threshold = 1'000;
  const DeliveryOutcome outcome = channel.send(report);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.records_delivered, 0u);
  ASSERT_EQ(channel.received().size(), 1u);
  EXPECT_EQ(channel.received()[0].interval, 9u);
}

/// Always refuses the frame: every attempt exercises the backoff path.
class AlwaysRefusingTransport final : public FrameTransport {
 public:
  bool send_frame(std::span<const std::uint8_t>) override { return false; }
};

/// Replicate the decorrelated-jitter draw with a parallel Rng seeded
/// identically: delay_i = base + uniform(min(cap, 3 * prev_delay) -
/// base + 1), prev_0 = base, prev carried across sends.
std::vector<std::chrono::microseconds> expected_jitter_schedule(
    std::uint64_t seed, std::int64_t base_us, std::int64_t cap_us,
    std::size_t count) {
  common::Rng rng(seed);
  std::vector<std::chrono::microseconds> schedule;
  std::int64_t prev = base_us;
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t upper = std::min<std::int64_t>(cap_us, prev * 3);
    const std::uint64_t span =
        upper > base_us ? static_cast<std::uint64_t>(upper - base_us) + 1
                        : 1;
    const std::int64_t delay =
        base_us + static_cast<std::int64_t>(rng.uniform(span));
    schedule.emplace_back(delay);
    prev = delay;
  }
  return schedule;
}

TEST(ResilientChannel, JitterBackoffMatchesDecorrelatedScheduleExactly) {
  // Jitter is opt-in: the default contract stays the deterministic
  // exponential ladder the tests above pin.
  EXPECT_FALSE(ResilientChannelConfig{}.jitter);

  AlwaysRefusingTransport transport;
  common::FakeClock clock;
  ResilientChannelConfig config;
  config.transport = &transport;
  config.max_attempts = 6;
  config.backoff_base = std::chrono::microseconds(1'000);
  config.backoff_cap = std::chrono::microseconds(2'500);
  config.jitter = true;
  config.jitter_seed = 42;
  config.sleep_on_backoff = true;
  config.clock = &clock;
  ResilientChannel channel(config);

  EXPECT_FALSE(channel.send(make_report(0, 2)).delivered);

  const std::vector<std::chrono::microseconds> expected =
      expected_jitter_schedule(42, 1'000, 2'500, 6);
  ASSERT_EQ(clock.sleep_count(), 6u);
  std::uint64_t total_us = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(clock.sleeps()[i], expected[i]) << "retry " << i;
    // Every jittered delay stays inside [base, cap].
    EXPECT_GE(clock.sleeps()[i], std::chrono::microseconds(1'000));
    EXPECT_LE(clock.sleeps()[i], std::chrono::microseconds(2'500));
    total_us += static_cast<std::uint64_t>(expected[i].count());
  }
  EXPECT_EQ(channel.stats().backoff_us, total_us);
}

TEST(ResilientChannel, JitterStateCarriesAcrossSends) {
  // The previous delay feeds the next draw *across* send() calls: a
  // fleet spread out by a long outage stays spread out, instead of
  // re-synchronizing at base on every report. The replicated schedule
  // below is continuous over both sends — it only matches if
  // prev_delay persists (a per-send reset would clamp draw 3's upper
  // bound back to 3 * base).
  AlwaysRefusingTransport transport;
  common::FakeClock clock;
  ResilientChannelConfig config;
  config.transport = &transport;
  config.max_attempts = 3;
  config.backoff_base = std::chrono::microseconds(500);
  config.backoff_cap = std::chrono::microseconds(100'000);
  config.jitter = true;
  config.jitter_seed = 7;
  config.sleep_on_backoff = true;
  config.clock = &clock;
  ResilientChannel channel(config);

  EXPECT_FALSE(channel.send(make_report(0, 2)).delivered);
  EXPECT_FALSE(channel.send(make_report(1, 2)).delivered);

  const std::vector<std::chrono::microseconds> expected =
      expected_jitter_schedule(7, 500, 100'000, 6);
  ASSERT_EQ(clock.sleep_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(clock.sleeps()[i], expected[i]) << "retry " << i;
  }
}

}  // namespace
}  // namespace nd::reporting
