// FaultInjector unit suite: the determinism contract everything else in
// tests/robustness leans on. If (seed, site, occurrence) -> decision is
// not a pure function, no chaos run replays and the differential
// assertions are meaningless.
#include "robustness/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace nd::robustness {
namespace {

FaultPlan drop_plan(double probability, std::uint64_t seed = 7) {
  FaultSpec spec;
  spec.kind = FaultKind::kDrop;
  spec.probability = probability;
  return FaultPlan(seed).inject("channel.drop", spec);
}

TEST(FaultInjector, UnknownSiteNeverFires) {
  FaultInjector injector(drop_plan(1.0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.next("some.other.site").has_value());
  }
  EXPECT_EQ(injector.occurrences("some.other.site"), 0u);
  EXPECT_EQ(injector.fires("channel.drop"), 0u);
}

TEST(FaultInjector, ProbabilityOneFiresEveryOccurrence) {
  FaultInjector injector(drop_plan(1.0));
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto decision = injector.next("channel.drop");
    ASSERT_TRUE(decision.has_value()) << i;
    EXPECT_EQ(decision->occurrence, i);
    EXPECT_EQ(decision->kind, FaultKind::kDrop);
  }
  EXPECT_EQ(injector.fires("channel.drop"), 50u);
  EXPECT_EQ(injector.occurrences("channel.drop"), 50u);
}

TEST(FaultInjector, ProbabilityZeroNeverFires) {
  FaultInjector injector(drop_plan(0.0));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(injector.next("channel.drop").has_value());
  }
  EXPECT_EQ(injector.occurrences("channel.drop"), 200u);
}

TEST(FaultInjector, ProbabilityHalfFiresRoughlyHalf) {
  FaultInjector injector(drop_plan(0.5));
  std::uint64_t fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (injector.next("channel.drop")) ++fired;
  }
  // A fair coin over 2000 draws stays inside [800, 1200] with
  // overwhelming probability; the draw is deterministic anyway.
  EXPECT_GT(fired, 800u);
  EXPECT_LT(fired, 1200u);
}

TEST(FaultInjector, TwoInjectorsFromOnePlanAgreeExactly) {
  FaultInjector a(drop_plan(0.3, 99));
  FaultInjector b(drop_plan(0.3, 99));
  for (int i = 0; i < 500; ++i) {
    const auto da = a.next("channel.drop");
    const auto db = b.next("channel.drop");
    ASSERT_EQ(da.has_value(), db.has_value()) << "occurrence " << i;
    if (da) {
      EXPECT_EQ(da->salt, db->salt);
      EXPECT_EQ(da->occurrence, db->occurrence);
    }
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentFirePatterns) {
  FaultInjector a(drop_plan(0.5, 1));
  FaultInjector b(drop_plan(0.5, 2));
  int disagreements = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.next("channel.drop").has_value() !=
        b.next("channel.drop").has_value()) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjector, ScheduleFiresExactlyAtListedOccurrences) {
  FaultSpec spec;
  spec.kind = FaultKind::kThrow;
  spec.schedule = {1, 4, 5};
  FaultInjector injector(FaultPlan(3).inject("pool.task", spec));
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (const auto decision = injector.next("pool.task")) {
      EXPECT_EQ(decision->occurrence, i);
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 4, 5}));
}

TEST(FaultInjector, MaxFiresCapsTotalFires) {
  FaultSpec spec;
  spec.kind = FaultKind::kDrop;
  spec.probability = 1.0;
  spec.max_fires = 3;
  FaultInjector injector(FaultPlan(3).inject("channel.drop", spec));
  std::uint64_t fired = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.next("channel.drop")) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.occurrences("channel.drop"), 20u);
}

TEST(FaultInjector, ActThrowsFaultInjectedErrorForThrowKind) {
  FaultSpec spec;
  spec.kind = FaultKind::kThrow;
  spec.schedule = {0};
  FaultInjector injector(FaultPlan(3).inject("pool.task", spec));
  EXPECT_THROW((void)injector.act("pool.task"), FaultInjectedError);
  EXPECT_FALSE(injector.act("pool.task").has_value());  // schedule done
}

TEST(FaultInjector, ActReturnsDataPathKindsForCallerToApply) {
  FaultInjector injector(drop_plan(1.0));
  const auto decision = injector.act("channel.drop");
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->kind, FaultKind::kDrop);
}

TEST(FaultInjector, SaltsVaryAcrossOccurrences) {
  FaultInjector injector(drop_plan(1.0));
  const auto first = injector.next("channel.drop");
  const auto second = injector.next("channel.drop");
  ASSERT_TRUE(first && second);
  EXPECT_NE(first->salt, second->salt);
}

TEST(FaultInjectorHelpers, CorruptBytesFlipsExactlyOneByte) {
  const std::vector<std::uint8_t> original(64, 0xAB);
  for (std::uint64_t salt = 1; salt < 40; ++salt) {
    auto bytes = original;
    corrupt_bytes(bytes, salt);
    std::size_t changed = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] != original[i]) ++changed;
    }
    EXPECT_EQ(changed, 1u) << "salt " << salt;
  }
  std::vector<std::uint8_t> empty;
  corrupt_bytes(empty, 5);  // must not crash
}

TEST(FaultInjectorHelpers, TruncatedSizeIsStrictlySmaller) {
  for (std::uint64_t salt = 0; salt < 50; ++salt) {
    for (const std::size_t size : {1UL, 2UL, 17UL, 1000UL}) {
      EXPECT_LT(truncated_size(size, salt), size);
    }
  }
  EXPECT_EQ(truncated_size(0, 9), 0u);
}

TEST(FaultInjectorParser, ParsesFullGrammar) {
  const FaultPlan plan = parse_fault_plan(
      "channel.drop:drop:p=0.25,shard.stall:stall:at=1+3:stall=50:max=2,"
      "pool.task:throw",
      11);
  EXPECT_EQ(plan.seed(), 11u);
  ASSERT_EQ(plan.sites().size(), 3u);
  const FaultSpec& drop = plan.sites().at("channel.drop");
  EXPECT_EQ(drop.kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(drop.probability, 0.25);
  const FaultSpec& stall = plan.sites().at("shard.stall");
  EXPECT_EQ(stall.kind, FaultKind::kStall);
  EXPECT_EQ(stall.schedule, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(stall.stall.count(), 50);
  EXPECT_EQ(stall.max_fires, 2u);
  const FaultSpec& task = plan.sites().at("pool.task");
  EXPECT_EQ(task.kind, FaultKind::kThrow);
  EXPECT_DOUBLE_EQ(task.probability, 1.0);
}

TEST(FaultInjectorParser, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_plan("bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:unknown-kind"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:drop:p=nope"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:drop:what=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan(""), std::invalid_argument);
}

TEST(FaultInjectorTelemetry, CountersExistAtZeroAndCountFires) {
  telemetry::MetricsRegistry registry;
  FaultSpec spec;
  spec.kind = FaultKind::kDrop;
  spec.schedule = {0, 2};
  FaultInjector injector(FaultPlan(3).inject("channel.drop", spec));
  injector.attach_telemetry(&registry);
  telemetry::Counter& fires = registry.counter(
      "nd_fault_injected_total",
      {{"site", "channel.drop"}, {"kind", "drop"}});
  EXPECT_EQ(fires.value(), 0u);  // eagerly registered before any fire
  (void)injector.next("channel.drop");
  (void)injector.next("channel.drop");
  (void)injector.next("channel.drop");
  EXPECT_EQ(fires.value(), 2u);
}

TEST(FaultInjectorThreads, ConcurrentConsultsAreAccountedExactly) {
  // Thread-safety smoke: occurrence indices advance atomically under
  // contention (per-thread fire patterns are unspecified, totals are
  // not).
  FaultInjector injector(drop_plan(0.5, 13));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&injector] {
      for (int i = 0; i < kPerThread; ++i) {
        (void)injector.next("channel.drop");
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(injector.occurrences("channel.drop"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(injector.fires("channel.drop"),
            injector.occurrences("channel.drop"));
}

}  // namespace
}  // namespace nd::robustness
