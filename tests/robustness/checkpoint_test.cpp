// Checkpoint/resume suite: the crash-safety half of the chaos story.
//
// The load-bearing property is kill-and-resume bit-identity: checkpoint
// a session at an arbitrary mid-stream packet, destroy it, rebuild from
// the serialized bytes with a freshly constructed device, replay the
// remaining packets — every subsequent per-interval report must be
// bit-identical to an uninterrupted run. That requires the checkpoint
// to capture flow-memory slot placement, RNG stream position, per-shard
// thresholds and adaptor history exactly, which is what these tests
// pin down for each device family.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../support/report_testing.hpp"
#include "baseline/sampled_netflow.hpp"
#include "common/state_buffer.hpp"
#include "common/thread_pool.hpp"
#include "core/measurement_session.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "core/sharded_device.hpp"
#include "core/threshold_adaptor.hpp"
#include "trace/presets.hpp"
#include "trace/synthesizer.hpp"

namespace nd::core {
namespace {

using DeviceFactory = std::function<std::unique_ptr<MeasurementDevice>()>;

std::vector<packet::PacketRecord> test_trace() {
  auto config = trace::scaled(trace::Presets::cos(23), 0.02);
  config.num_intervals = 5;
  trace::TraceSynthesizer synthesizer(config);
  std::vector<packet::PacketRecord> packets;
  for (;;) {
    const auto interval = synthesizer.next_interval();
    if (interval.empty()) break;
    packets.insert(packets.end(), interval.begin(), interval.end());
  }
  return packets;
}

DeviceFactory sample_and_hold_factory() {
  return [] {
    SampleAndHoldConfig config;
    config.flow_memory_entries = 512;
    config.threshold = 40'000;
    config.oversampling = 4.0;
    config.preserve = flowmem::PreservePolicy::kEarlyRemoval;
    config.seed = 5;
    return std::make_unique<SampleAndHold>(config);
  };
}

DeviceFactory multistage_factory() {
  return [] {
    MultistageFilterConfig config;
    config.flow_memory_entries = 512;
    config.depth = 3;
    config.buckets_per_stage = 256;
    config.threshold = 40'000;
    config.preserve = flowmem::PreservePolicy::kPreserve;
    config.seed = 5;
    return std::make_unique<MultistageFilter>(config);
  };
}

DeviceFactory sharded_adaptive_factory(common::ThreadPool* pool) {
  return [pool] {
    ShardedDeviceConfig config;
    config.shards = 4;
    config.seed = 9;
    config.pool = pool;
    config.adaptor = multistage_adaptor();
    return std::make_unique<ShardedDevice>(
        config, [](std::uint32_t, std::uint64_t shard_seed) {
          MultistageFilterConfig inner;
          inner.flow_memory_entries = 128;
          inner.depth = 2;
          inner.buckets_per_stage = 128;
          inner.threshold = 40'000;
          inner.preserve = flowmem::PreservePolicy::kPreserve;
          inner.seed = shard_seed;
          return std::make_unique<MultistageFilter>(inner);
        });
  };
}

constexpr auto kInterval = std::chrono::seconds(5);

std::vector<Report> run_uninterrupted(
    const DeviceFactory& factory,
    const std::vector<packet::PacketRecord>& packets) {
  MeasurementSession session(factory(),
                             packet::FlowDefinition::five_tuple(),
                             kInterval);
  std::vector<Report> reports;
  for (const auto& packet : packets) {
    session.observe(packet);
    auto drained = session.drain_reports();
    reports.insert(reports.end(),
                   std::make_move_iterator(drained.begin()),
                   std::make_move_iterator(drained.end()));
  }
  auto rest = session.finish();
  reports.insert(reports.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
  return reports;
}

/// Run to `split`, checkpoint through an encode/decode round trip (the
/// "crash"), resume on a freshly built device, replay the rest.
std::vector<Report> run_killed_and_resumed(
    const DeviceFactory& factory,
    const std::vector<packet::PacketRecord>& packets, std::size_t split) {
  std::vector<Report> reports;
  std::vector<std::uint8_t> frozen;
  {
    MeasurementSession session(factory(),
                               packet::FlowDefinition::five_tuple(),
                               kInterval);
    for (std::size_t i = 0; i < split; ++i) {
      session.observe(packets[i]);
      auto drained = session.drain_reports();
      reports.insert(reports.end(),
                     std::make_move_iterator(drained.begin()),
                     std::make_move_iterator(drained.end()));
    }
    frozen = encode_checkpoint(session.checkpoint());
  }  // session destroyed: the process "died" here

  MeasurementSession resumed = MeasurementSession::resume(
      decode_checkpoint(frozen), factory(),
      packet::FlowDefinition::five_tuple());
  for (std::size_t i = split; i < packets.size(); ++i) {
    resumed.observe(packets[i]);
    auto drained = resumed.drain_reports();
    reports.insert(reports.end(),
                   std::make_move_iterator(drained.begin()),
                   std::make_move_iterator(drained.end()));
  }
  auto rest = resumed.finish();
  reports.insert(reports.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
  return reports;
}

void expect_kill_and_resume_identity(const DeviceFactory& factory) {
  const auto packets = test_trace();
  ASSERT_GT(packets.size(), 100u);
  const auto baseline = run_uninterrupted(factory, packets);
  // Mid-stream split, deliberately not on an interval boundary.
  const std::size_t split = packets.size() * 3 / 5 + 1;
  const auto resumed = run_killed_and_resumed(factory, packets, split);
  ASSERT_EQ(resumed.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    Report a = baseline[i];
    Report b = resumed[i];
    sort_by_size(a);
    sort_by_size(b);
    testing::expect_reports_equal(a, b);
  }
}

TEST(Checkpoint, EncodeDecodeRoundTripsEveryField) {
  SessionCheckpoint checkpoint;
  checkpoint.interval_ns = 5'000'000'000ULL;
  checkpoint.current_end_ns = 15'000'000'000ULL;
  checkpoint.started = true;
  checkpoint.packets = 123'456;
  checkpoint.unclassified = 7;
  checkpoint.intervals_closed = 2;
  checkpoint.device_name = "multistage(d=3)";
  checkpoint.device_state = {1, 2, 3, 250, 0, 99};

  const auto decoded = decode_checkpoint(encode_checkpoint(checkpoint));
  EXPECT_EQ(decoded.interval_ns, checkpoint.interval_ns);
  EXPECT_EQ(decoded.current_end_ns, checkpoint.current_end_ns);
  EXPECT_EQ(decoded.started, checkpoint.started);
  EXPECT_EQ(decoded.packets, checkpoint.packets);
  EXPECT_EQ(decoded.unclassified, checkpoint.unclassified);
  EXPECT_EQ(decoded.intervals_closed, checkpoint.intervals_closed);
  EXPECT_EQ(decoded.device_name, checkpoint.device_name);
  EXPECT_EQ(decoded.device_state, checkpoint.device_state);
}

TEST(Checkpoint, EveryByteFlipIsDetected) {
  SessionCheckpoint checkpoint;
  checkpoint.interval_ns = 5'000'000'000ULL;
  checkpoint.device_name = "x";
  checkpoint.device_state = {9, 8, 7};
  const auto bytes = encode_checkpoint(checkpoint);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x40;
    EXPECT_THROW((void)decode_checkpoint(corrupt), common::StateError)
        << "flip at byte " << i << " not detected";
  }
}

TEST(Checkpoint, TruncationIsDetected) {
  SessionCheckpoint checkpoint;
  checkpoint.device_name = "x";
  checkpoint.device_state = {1, 2, 3, 4};
  const auto bytes = encode_checkpoint(checkpoint);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + len);
    EXPECT_THROW((void)decode_checkpoint(cut), common::StateError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(Checkpoint, FileSaveLoadRoundTripsAtomically) {
  const std::string path =
      ::testing::TempDir() + "nd_checkpoint_test.ndck";
  SessionCheckpoint checkpoint;
  checkpoint.packets = 42;
  checkpoint.device_name = "device";
  checkpoint.device_state = {5, 4, 3};
  save_checkpoint_file(path, checkpoint);
  const auto loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.packets, 42u);
  EXPECT_EQ(loaded.device_name, "device");
  EXPECT_EQ(loaded.device_state, checkpoint.device_state);
  // The temp file was renamed into place, not left behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalForSampleAndHold) {
  expect_kill_and_resume_identity(sample_and_hold_factory());
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalForMultistage) {
  expect_kill_and_resume_identity(multistage_factory());
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalForShardedAdaptive) {
  common::ThreadPool pool(3);
  expect_kill_and_resume_identity(sharded_adaptive_factory(&pool));
}

TEST(Checkpoint, PendingReportsBlockCheckpointUntilDrained) {
  const auto packets = test_trace();
  MeasurementSession session(multistage_factory()(),
                             packet::FlowDefinition::five_tuple(),
                             kInterval);
  for (const auto& packet : packets) {
    session.observe(packet);  // never drained: closed reports pile up
  }
  ASSERT_GT(session.intervals_closed(), 0u);
  EXPECT_THROW((void)session.checkpoint(), common::StateError);
  (void)session.drain_reports();
  EXPECT_NO_THROW((void)session.checkpoint());
}

TEST(Checkpoint, ResumeRejectsAMismatchedDevice) {
  const auto packets = test_trace();
  MeasurementSession session(sample_and_hold_factory()(),
                             packet::FlowDefinition::five_tuple(),
                             kInterval);
  for (std::size_t i = 0; i < 50; ++i) session.observe(packets[i]);
  (void)session.drain_reports();
  const SessionCheckpoint checkpoint = session.checkpoint();
  // Resuming a sample-and-hold checkpoint on a multistage device fails
  // on the device-name guard before any state is deserialized.
  EXPECT_THROW((void)MeasurementSession::resume(
                   checkpoint, multistage_factory()(),
                   packet::FlowDefinition::five_tuple()),
               common::StateError);
}

TEST(Checkpoint, ShardedRestoreRejectsWrongShardCount) {
  common::ThreadPool pool(2);
  const auto packets = test_trace();
  MeasurementSession session(sharded_adaptive_factory(&pool)(),
                             packet::FlowDefinition::five_tuple(),
                             kInterval);
  for (std::size_t i = 0; i < 50; ++i) session.observe(packets[i]);
  (void)session.drain_reports();
  const SessionCheckpoint checkpoint = session.checkpoint();

  auto two_shards = [&pool] {
    ShardedDeviceConfig config;
    config.shards = 2;
    config.seed = 9;
    config.pool = &pool;
    config.adaptor = multistage_adaptor();
    return std::make_unique<ShardedDevice>(
        config, [](std::uint32_t, std::uint64_t shard_seed) {
          MultistageFilterConfig inner;
          inner.flow_memory_entries = 128;
          inner.depth = 2;
          inner.buckets_per_stage = 128;
          inner.threshold = 40'000;
          inner.seed = shard_seed;
          return std::make_unique<MultistageFilter>(inner);
        });
  };
  EXPECT_THROW((void)MeasurementSession::resume(
                   checkpoint, two_shards(),
                   packet::FlowDefinition::five_tuple()),
               common::StateError);
}

TEST(Checkpoint, NetflowDeclinesCheckpointing) {
  baseline::SampledNetFlowConfig config;
  config.sampling_divisor = 16;
  config.seed = 3;
  MeasurementSession session(
      std::make_unique<baseline::SampledNetFlow>(config),
      packet::FlowDefinition::five_tuple(), kInterval);
  EXPECT_FALSE(session.device().can_checkpoint());
  EXPECT_THROW((void)session.checkpoint(), common::StateError);
}

}  // namespace
}  // namespace nd::core
