// Kernel-level differential tests for the SIMD dispatch layer: the
// cpu_features clamping rules, raw tag-group mask equality between the
// SWAR, NEON and AVX2 kernels over randomized tag arrays (including the
// mirror-pad wraparound and the SWAR borrow-caveat edge lanes), and
// forced-level equality of FlowMemory and StageHashBank against their
// scalar selves and the pre-tag reference oracle.
//
// Mask contract under test (tag_probe_simd.hpp): the vector kernels are
// exact per lane; the SWAR kernel may falsely mark a lane ABOVE a true
// marked lane (borrow caveat), so its candidate set below the first
// empty is a superset of the exact set whose minimum — the only lane
// the probe trusts without a key compare backstop — is exact, and its
// first empty lane is always exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "../support/reference_flow_memory.hpp"
#include "common/cpu_features.hpp"
#include "flowmem/flow_memory.hpp"
#include "flowmem/tag_probe.hpp"
#include "flowmem/tag_probe_simd.hpp"
#include "hash/hash.hpp"

namespace nd::flowmem {
namespace {

using common::ScopedSimdLevel;
using common::SimdLevel;
using nd::testing::ReferenceFlowMemory;

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

/// Levels worth forcing on this host: scalar always, plus whatever the
/// CPU actually runs (forcing the other platform's set clamps to
/// scalar, which is the clamp test's business, not the kernel tests').
std::vector<SimdLevel> testable_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (common::detected_simd() != SimdLevel::kScalar) {
    levels.push_back(common::detected_simd());
  }
  return levels;
}

// --- cpu_features dispatch rules ---------------------------------------

TEST(CpuFeatures, ForcedLevelClampsToWhatTheHostRuns) {
  const SimdLevel detected = common::detected_simd();
  {
    ScopedSimdLevel scalar(SimdLevel::kScalar);
    EXPECT_EQ(scalar.applied(), SimdLevel::kScalar);
    EXPECT_EQ(common::active_simd(), SimdLevel::kScalar);
  }
  {
    // Asking for the detected level (or stronger) resolves to detected;
    // asking for a *different platform's* set resolves to scalar — a
    // kernel family that was not compiled must never be dispatched.
    ScopedSimdLevel forced(detected);
    EXPECT_EQ(forced.applied(), detected);
    EXPECT_EQ(common::active_simd(), detected);
  }
#if defined(ND_HAVE_AVX2)
  if (detected == SimdLevel::kAvx2) {
    ScopedSimdLevel neon(SimdLevel::kNeon);
    EXPECT_EQ(neon.applied(), SimdLevel::kScalar);
  }
#endif
#if defined(ND_HAVE_NEON)
  {
    ScopedSimdLevel avx2(SimdLevel::kAvx2);
    EXPECT_EQ(avx2.applied(), detected);  // "stronger" clamps down
  }
#endif
}

TEST(CpuFeatures, NamesAreStable) {
  EXPECT_STREQ(common::simd_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(common::simd_name(SimdLevel::kNeon), "neon");
  EXPECT_STREQ(common::simd_name(SimdLevel::kAvx2), "avx2");
}

// --- Raw group-mask equality -------------------------------------------

/// Tag array of `slots` bytes + the kTagMirrorPad mirror, as FlowMemory
/// maintains it.
std::vector<std::uint8_t> mirrored_tags(std::size_t slots,
                                        std::mt19937_64& rng) {
  // A small tag alphabet with plenty of empties and duplicates so
  // probes regularly see matches, empties and collisions in one group.
  static constexpr std::uint8_t kAlphabet[] = {0x00, 0x00, 0x80, 0x81,
                                               0x83, 0x91, 0xF2};
  std::vector<std::uint8_t> tags(slots + kTagMirrorPad);
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kAlphabet) - 1);
  for (std::size_t i = 0; i < slots; ++i) tags[i] = kAlphabet[pick(rng)];
  for (std::size_t i = 0; i < kTagMirrorPad; ++i) {
    tags[slots + i] = tags[i % slots];
  }
  return tags;
}

struct ExactScan {
  std::set<std::size_t> candidates;  ///< match lanes below first empty
  std::optional<std::size_t> first_empty;
};

/// Scalar byte-loop ground truth for one group of `width` lanes.
ExactScan exact_scan(const std::vector<std::uint8_t>& tags,
                     std::size_t slot, std::uint8_t tag,
                     std::size_t width) {
  ExactScan out;
  for (std::size_t lane = 0; lane < width; ++lane) {
    const std::uint8_t t = tags[slot + lane];
    if (t == 0) {
      out.first_empty = lane;
      break;
    }
    if (t == tag) out.candidates.insert(lane);
  }
  return out;
}

/// Decode a kernel's (match, empty) masks the way the probe loop does.
ExactScan decode(const simd::GroupMasks& g, std::size_t stride) {
  ExactScan out;
  if (g.empty != 0) out.first_empty = simd::first_lane_of(g.empty, stride);
  std::uint64_t candidates = simd::below_first(g.match, g.empty);
  while (candidates != 0) {
    const std::size_t lane = simd::first_lane_of(candidates, stride);
    out.candidates.insert(lane);
    candidates = simd::clear_lane(candidates, lane, stride);
  }
  return out;
}

/// SWAR decode may be a superset: every extra lane must sit above the
/// exact set's minimum (the borrow caveat's only legal failure mode).
void expect_swar_compatible(const ExactScan& swar, const ExactScan& exact,
                            std::size_t slot, std::uint8_t tag) {
  EXPECT_EQ(swar.first_empty, exact.first_empty)
      << "slot " << slot << " tag " << int(tag);
  for (const std::size_t lane : exact.candidates) {
    EXPECT_TRUE(swar.candidates.count(lane) != 0)
        << "missing exact candidate lane " << lane << " at slot " << slot;
  }
  if (exact.candidates.empty()) {
    // No true match: every SWAR extra must still be above SOME true
    // marked lane; with no true zero in the XORed word there are none,
    // so in practice the set is empty — but the probe only needs the
    // key-compare backstop, so assert just the subset direction we
    // rely on: first candidate exactness is vacuous here.
    return;
  }
  const std::size_t first_true = *exact.candidates.begin();
  ASSERT_FALSE(swar.candidates.empty());
  EXPECT_EQ(*swar.candidates.begin(), first_true)
      << "slot " << slot << ": SWAR first candidate must be exact";
  for (const std::size_t lane : swar.candidates) {
    if (exact.candidates.count(lane) == 0) {
      EXPECT_GT(lane, first_true)
          << "slot " << slot << ": false positive below the first match";
    }
  }
}

TEST(SimdKernels, GroupMasksAgreeOnRandomizedTagArrays) {
  std::mt19937_64 rng(20260808);
  const std::uint8_t probe_tags[] = {0x80, 0x81, 0x83, 0x91, 0xF2, 0xAA};
  for (const std::size_t slots : {8UL, 16UL, 64UL, 256UL}) {
    for (int round = 0; round < 40; ++round) {
      const auto tags = mirrored_tags(slots, rng);
      std::uniform_int_distribution<std::size_t> pick_slot(0, slots - 1);
      for (int probe = 0; probe < 50; ++probe) {
        // Bias toward the seam so wrapped (mirror-pad) loads are a
        // routine case, not a rarity.
        std::size_t slot = pick_slot(rng);
        if (probe % 4 == 0) slot = slots - 1 - (slot % 8);
        for (const std::uint8_t tag : probe_tags) {
          const auto swar =
              decode(simd::group_masks_swar(tags.data(), slot, tag),
                     simd::kSwarStrideBits);
          expect_swar_compatible(
              swar, exact_scan(tags, slot, tag, kTagGroupWidth), slot,
              tag);
#if defined(ND_HAVE_AVX2)
          if (common::detected_simd() == SimdLevel::kAvx2) {
            const auto avx2 =
                decode(simd::group_masks_avx2(tags.data(), slot, tag),
                       simd::kAvx2StrideBits);
            const auto exact =
                exact_scan(tags, slot, tag, simd::kAvx2GroupWidth);
            EXPECT_EQ(avx2.candidates, exact.candidates)
                << "slot " << slot << " tag " << int(tag);
            EXPECT_EQ(avx2.first_empty, exact.first_empty)
                << "slot " << slot << " tag " << int(tag);
          }
#endif
#if defined(ND_HAVE_NEON)
          {
            const auto neon =
                decode(simd::group_masks_neon(tags.data(), slot, tag),
                       simd::kNeonStrideBits);
            const auto exact =
                exact_scan(tags, slot, tag, simd::kNeonGroupWidth);
            EXPECT_EQ(neon.candidates, exact.candidates);
            EXPECT_EQ(neon.first_empty, exact.first_empty);
          }
#endif
        }
      }
    }
  }
}

TEST(SimdKernels, BorrowCaveatLanesDifferOnlyAboveTheFirstTrueMatch) {
  // The classic SWAR failure shape: lane 0 is a true match for `tag`,
  // lane 1 holds tag^0x01, so the XORed word has 0x00 then 0x01 and the
  // subtraction borrows a false mark into lane 1. The vector kernels
  // must not mark lane 1; SWAR may, and the shared probe loop absorbs
  // the difference with the key compare.
  const std::uint8_t tag = 0x90;
  std::vector<std::uint8_t> tags(64 + kTagMirrorPad, 0x85);
  tags[0] = tag;
  tags[1] = tag ^ 0x01;
  for (std::size_t i = 0; i < kTagMirrorPad; ++i) tags[64 + i] = tags[i];

  const auto swar = decode(simd::group_masks_swar(tags.data(), 0, tag),
                           simd::kSwarStrideBits);
  ASSERT_FALSE(swar.candidates.empty());
  EXPECT_EQ(*swar.candidates.begin(), 0U);
  EXPECT_TRUE(swar.candidates.count(1) != 0)
      << "expected the documented false positive — if SWAR became exact "
         "this test (and the header comment) should be updated";
#if defined(ND_HAVE_AVX2)
  if (common::detected_simd() == SimdLevel::kAvx2) {
    const auto avx2 = decode(simd::group_masks_avx2(tags.data(), 0, tag),
                             simd::kAvx2StrideBits);
    EXPECT_EQ(avx2.candidates, std::set<std::size_t>{0});
  }
#endif
#if defined(ND_HAVE_NEON)
  {
    const auto neon = decode(simd::group_masks_neon(tags.data(), 0, tag),
                             simd::kNeonStrideBits);
    EXPECT_EQ(neon.candidates, std::set<std::size_t>{0});
  }
#endif
}

// --- FlowMemory under every forced level -------------------------------

void drive_and_compare(SimdLevel level) {
  ScopedSimdLevel forced(level);
  ASSERT_EQ(forced.applied(), level);
  FlowMemory memory(128, 29);  // latches the forced level
  ReferenceFlowMemory reference(128, 29);
  std::mt19937_64 rng(4321);
  std::uniform_int_distribution<std::uint32_t> key_id(0, 400);
  std::uniform_int_distribution<std::uint32_t> bytes(1, 2000);
  common::IntervalIndex interval = 0;
  for (int step = 0; step < 12'000; ++step) {
    const packet::FlowKey k = key(key_id(rng));
    FlowEntry* entry = memory.find(k);
    FlowEntry* ref_entry = reference.find(k);
    ASSERT_EQ(entry == nullptr, ref_entry == nullptr) << "step " << step;
    if (entry == nullptr) {
      entry = memory.insert(k, interval);
      ref_entry = reference.insert(k, interval);
      ASSERT_EQ(entry == nullptr, ref_entry == nullptr) << "step " << step;
    }
    if (entry != nullptr) {
      const std::uint32_t b = bytes(rng);
      FlowMemory::add_bytes(*entry, b);
      FlowMemory::add_bytes(*ref_entry, b);
    }
    if (step % 3'000 == 2'999) {
      const EndIntervalPolicy end{PreservePolicy::kEarlyRemoval, 30'000,
                                  4'500};
      memory.end_interval(end);
      reference.end_interval(end);
      ++interval;
    }
  }
  EXPECT_EQ(memory.entries_used(), reference.entries_used());
  EXPECT_EQ(memory.memory_accesses(), reference.memory_accesses());
  common::StateWriter actual_state;
  common::StateWriter expected_state;
  memory.save_state(actual_state);
  reference.save_state(expected_state);
  EXPECT_EQ(actual_state.bytes(), expected_state.bytes())
      << "checkpoint bytes diverged under " << common::simd_name(level);
}

TEST(SimdFlowMemory, EveryKernelMatchesTheReferenceOracleBitForBit) {
  for (const SimdLevel level : testable_levels()) {
    SCOPED_TRACE(common::simd_name(level));
    drive_and_compare(level);
  }
}

TEST(SimdFlowMemory, TinyTablesWrapTheMirrorPadMoreThanOnce) {
  // 8- and 16-slot tables are SMALLER than the widest group load: the
  // mirror pad repeats the whole table, and a single wide group covers
  // it multiple times. Probes (hits, misses, wrapped chains) must still
  // agree with the reference under every kernel.
  for (const SimdLevel level : testable_levels()) {
    SCOPED_TRACE(common::simd_name(level));
    ScopedSimdLevel forced(level);
    for (const std::size_t capacity : {4UL, 8UL}) {
      FlowMemory memory(capacity, 11);
      ReferenceFlowMemory reference(capacity, 11);
      for (std::uint32_t i = 0; i < capacity; ++i) {
        ASSERT_NE(memory.insert(key(i), 0), nullptr);
        ASSERT_NE(reference.insert(key(i), 0), nullptr);
      }
      for (std::uint32_t i = 0; i < 200; ++i) {
        EXPECT_EQ(memory.find(key(i)) == nullptr,
                  reference.find(key(i)) == nullptr)
            << i;
      }
      EXPECT_EQ(memory.memory_accesses(), reference.memory_accesses());
    }
  }
}

// --- StageHashBank under every forced level ----------------------------

TEST(SimdStageHash, BankKernelsMatchPerStageEvaluationAtEveryDepth) {
  std::mt19937_64 rng(99);
  for (const SimdLevel level : testable_levels()) {
    SCOPED_TRACE(common::simd_name(level));
    ScopedSimdLevel forced(level);
    for (std::uint32_t depth = 1; depth <= 8; ++depth) {
      hash::HashFamily family(1234, hash::HashKind::kTabulation);
      std::vector<hash::StageHash> stages;
      for (std::uint32_t d = 0; d < depth; ++d) {
        stages.push_back(family.make_stage(1000 + 37 * d));
      }
      const hash::StageHashBank bank(std::move(stages));
      std::uint64_t out[8];
      for (int i = 0; i < 2'000; ++i) {
        const std::uint64_t fp = rng();
        bank.bucket_all(fp, out);
        for (std::uint32_t s = 0; s < depth; ++s) {
          ASSERT_EQ(out[s], bank.stage(s).bucket(fp))
              << "depth " << depth << " stage " << s << " fp " << fp;
        }
      }
    }
  }
}

#if defined(ND_HAVE_AVX2)

TEST(SimdStageHash, GatherMinMatchesScalarMinOverRandomCounters) {
  if (common::detected_simd() != SimdLevel::kAvx2) {
    GTEST_SKIP() << "host lacks AVX2";
  }
  std::mt19937_64 rng(7);
  const std::uint64_t stride = 1000;
  for (const std::size_t depth : {4UL, 5UL, 6UL, 7UL, 8UL}) {
    std::vector<std::uint64_t> counters(depth * stride);
    for (auto& c : counters) {
      // Mix huge values across the signed boundary so a signed-compare
      // bug in the biased min tree would show.
      c = (rng() % 3 == 0) ? rng() : rng() % 100'000;
    }
    std::vector<std::uint64_t> buckets(depth);
    for (int i = 0; i < 2'000; ++i) {
      for (auto& b : buckets) b = rng() % stride;
      std::uint64_t expected = ~std::uint64_t{0};
      for (std::size_t s = 0; s < depth; ++s) {
        expected = std::min(expected, counters[s * stride + buckets[s]]);
      }
      ASSERT_EQ(hash::simd::gather_min_u64_avx2(counters.data(),
                                                buckets.data(), stride,
                                                depth),
                expected)
          << "depth " << depth;
    }
  }
}

#endif  // ND_HAVE_AVX2

}  // namespace
}  // namespace nd::flowmem
