// Preset-driven differential tests for the SIMD dispatch layer and the
// hugepage slab backing: full interval reports AND checkpoint bytes must
// be bit-identical under every forced ND_SIMD level and under every
// hugepage mode. The kernels are pure strength reductions — same probe
// order, same accepted entries, same bucket values, same counter minima
// — so nothing observable may move when the dispatch switch does.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "../support/report_testing.hpp"
#include "common/cpu_features.hpp"
#include "common/hugepage.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "trace/presets.hpp"

namespace nd::core {
namespace {

using common::ScopedSimdLevel;
using common::SimdLevel;

/// One device's observable history over a trace: every interval report
/// plus the final checkpoint bytes.
struct RunResult {
  std::vector<Report> reports;
  std::vector<std::uint8_t> checkpoint;
};

template <typename MakeDevice>
RunResult run_trace(const trace::TraceConfig& trace_config,
                    const MakeDevice& make_device, SimdLevel forced) {
  // The guard must outlive construction: FlowMemory, StageHashBank and
  // the gather-min switch all latch active_simd() when the device is
  // built.
  ScopedSimdLevel guard(forced);
  const auto intervals = nd::testing::classify_trace(
      trace_config, packet::FlowDefinition::five_tuple());
  auto device = make_device();
  RunResult result;
  for (const auto& interval : intervals) {
    device->observe_batch(interval);
    result.reports.push_back(device->end_interval());
  }
  common::StateWriter state;
  device->save_state(state);
  result.checkpoint = state.bytes();
  return result;
}

template <typename MakeDevice>
void expect_identical_under_every_level(
    const trace::TraceConfig& trace_config, const MakeDevice& make_device,
    const char* device_name) {
  const RunResult baseline =
      run_trace(trace_config, make_device, SimdLevel::kScalar);
  // Force every *nameable* level, exactly like ND_SIMD=...: levels the
  // host cannot run clamp (to scalar or to the detected family), so
  // each forced run is still a valid configuration a user can request.
  for (const SimdLevel requested :
       {SimdLevel::kNeon, SimdLevel::kAvx2}) {
    SCOPED_TRACE(std::string(device_name) + " forced to " +
                 common::simd_name(requested));
    const RunResult forced = run_trace(trace_config, make_device, requested);
    ASSERT_EQ(forced.reports.size(), baseline.reports.size());
    for (std::size_t i = 0; i < baseline.reports.size(); ++i) {
      nd::testing::expect_reports_equal(forced.reports[i],
                                        baseline.reports[i]);
    }
    EXPECT_EQ(forced.checkpoint, baseline.checkpoint)
        << "checkpoint bytes diverged";
  }
}

std::unique_ptr<SampleAndHold> make_sample_and_hold() {
  SampleAndHoldConfig config;
  config.flow_memory_entries = 512;
  config.threshold = 60'000;
  config.preserve = flowmem::PreservePolicy::kEarlyRemoval;
  config.seed = 77;
  return std::make_unique<SampleAndHold>(config);
}

std::unique_ptr<MultistageFilter> make_filter(std::uint32_t depth,
                                              bool conservative) {
  MultistageFilterConfig config;
  config.flow_memory_entries = 512;
  config.depth = depth;
  config.buckets_per_stage = 256;
  config.threshold = 60'000;
  config.conservative_update = conservative;
  config.preserve = flowmem::PreservePolicy::kPreserve;
  config.seed = 77;
  return std::make_unique<MultistageFilter>(config);
}

TEST(SimdDifferential, SampleAndHoldReportsIdenticalUnderEveryLevel) {
  expect_identical_under_every_level(
      trace::scaled(trace::Presets::mag(3), 0.02), make_sample_and_hold,
      "sample-and-hold");
}

TEST(SimdDifferential, MultistageFilterReportsIdenticalUnderEveryLevel) {
  // depth 3, fused update: exercises the bank XOR kernels and the tag
  // probe without the gather-min path.
  expect_identical_under_every_level(
      trace::scaled(trace::Presets::ind(3), 0.05),
      [] { return make_filter(3, false); }, "filter-d3");
}

TEST(SimdDifferential, ConservativeDepth4FilterExercisesGatherMin) {
  // depth >= 4 + conservative update is the configuration whose min
  // loop dispatches to the AVX2 gather kernel; on non-AVX2 hosts this
  // still pins the scalar/NEON agreement for the same shape.
  expect_identical_under_every_level(
      trace::scaled(trace::Presets::cos(3), 0.25),
      [] { return make_filter(4, true); }, "filter-d4-conservative");
}

TEST(SimdDifferential, DeepConservativeFilterCoversGatherRemainder) {
  // depth 6 = one 4-lane gather chunk + a 2-stage scalar remainder.
  expect_identical_under_every_level(
      trace::scaled(trace::Presets::mag(3), 0.02),
      [] { return make_filter(6, true); }, "filter-d6-conservative");
}

// --- Hugepage modes ----------------------------------------------------

class HugepageModeGuard {
 public:
  explicit HugepageModeGuard(common::HugePageMode mode)
      : previous_(common::hugepage_mode()) {
    common::set_hugepage_mode(mode);
  }
  ~HugepageModeGuard() { common::set_hugepage_mode(previous_); }
  HugepageModeGuard(const HugepageModeGuard&) = delete;
  HugepageModeGuard& operator=(const HugepageModeGuard&) = delete;

 private:
  common::HugePageMode previous_;
};

TEST(HugepageDifferential, ReportsAndCheckpointsIdenticalUnderEveryMode) {
  // The backing store changes page size, never bytes. A big flow memory
  // (1 << 16 entries -> a multi-megabyte payload slab) crosses the
  // 2 MB floor so the transparent/explicit paths actually engage.
  const auto trace_config = trace::scaled(trace::Presets::mag(3), 0.02);
  auto make_device = [] {
    MultistageFilterConfig config;
    config.flow_memory_entries = 1 << 16;
    config.depth = 4;
    config.buckets_per_stage = 4096;
    config.threshold = 60'000;
    config.preserve = flowmem::PreservePolicy::kPreserve;
    config.seed = 77;
    return std::make_unique<MultistageFilter>(config);
  };
  RunResult baseline;
  {
    HugepageModeGuard off(common::HugePageMode::kOff);
    baseline = run_trace(trace_config, make_device, SimdLevel::kScalar);
  }
  for (const common::HugePageMode mode :
       {common::HugePageMode::kTransparent,
        common::HugePageMode::kExplicit}) {
    HugepageModeGuard guard(mode);
    const RunResult huge =
        run_trace(trace_config, make_device, SimdLevel::kScalar);
    ASSERT_EQ(huge.reports.size(), baseline.reports.size());
    for (std::size_t i = 0; i < baseline.reports.size(); ++i) {
      nd::testing::expect_reports_equal(huge.reports[i],
                                        baseline.reports[i]);
    }
    EXPECT_EQ(huge.checkpoint, baseline.checkpoint);
  }
}

TEST(HugepageDifferential, StatsAccountForBigSlabsOnly) {
  HugepageModeGuard guard(common::HugePageMode::kTransparent);
  const auto before = common::hugepage_stats();
  {
    // Below the 2 MB floor: operator new, not counted.
    common::Slab<std::uint64_t> small(1024);
    const auto with_small = common::hugepage_stats();
    EXPECT_EQ(with_small.slabs, before.slabs);
    // At/above the floor: mapped and counted; released on destruction.
    common::Slab<std::uint64_t> big((4u << 20) / sizeof(std::uint64_t));
    const auto with_big = common::hugepage_stats();
    EXPECT_EQ(with_big.slabs, before.slabs + 1);
    EXPECT_EQ(with_big.bytes, before.bytes + (4u << 20));
    EXPECT_EQ(with_big.hugetlb_slabs + with_big.madvise_slabs +
                  with_big.fallback_slabs,
              before.hugetlb_slabs + before.madvise_slabs +
                  before.fallback_slabs + 1);
    // Contents are value-initialized whatever the backing.
    EXPECT_EQ(big[0], 0U);
    EXPECT_EQ(big[big.size() - 1], 0U);
  }
  const auto after = common::hugepage_stats();
  EXPECT_EQ(after.slabs, before.slabs);
  EXPECT_EQ(after.bytes, before.bytes);
}

}  // namespace
}  // namespace nd::core
