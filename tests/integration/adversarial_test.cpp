// Adversarial and boundary workloads: the inputs an attacker (or an
// unlucky network) would choose.
#include <gtest/gtest.h>

#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"

namespace nd {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

TEST(Adversarial, ElephantDisguisedAsMinimumPackets) {
  // A large flow sent entirely in 40-byte packets must still be caught
  // by the filter (no packet-size bias — the paper's criticism of
  // NetFlow's every-x-packets sampling does not apply).
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 1024;
  config.depth = 4;
  config.buckets_per_stage = 1024;
  config.threshold = 100'000;
  config.seed = 3;
  core::MultistageFilter device(config);
  for (int i = 0; i < 2500; ++i) {
    device.observe(key(1), 40);  // 100 KB total
  }
  const auto report = device.end_interval();
  ASSERT_NE(core::find_flow(report, key(1)), nullptr);
}

TEST(Adversarial, SmurfAttackManyMiceOneCounterSet) {
  // Thousands of distinct mice must not amplify each other into the
  // flow memory when stages are adequately dimensioned: expected false
  // positives stay a tiny fraction.
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 1u << 16;
  config.depth = 4;
  config.buckets_per_stage = 4096;
  config.threshold = 100'000;
  config.conservative_update = true;
  config.seed = 11;
  core::MultistageFilter device(config);
  // 20,000 mice x 1.5 KB = 30 MB; k = T*b/C ~ 13.6.
  for (std::uint32_t m = 0; m < 20'000; ++m) {
    device.observe(key(m), 1500);
  }
  const auto report = device.end_interval();
  EXPECT_LT(report.flows.size(), 20u);  // << 20,000 mice
}

TEST(Adversarial, FlowStraddlingIntervalBoundaryWithoutPreserve) {
  // T-1 bytes in interval 1 plus T-1 bytes in interval 2: never a large
  // flow in either interval, must not be reported by the basic filter.
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 64;
  config.depth = 2;
  config.buckets_per_stage = 64;
  config.threshold = 10'000;
  config.seed = 5;
  core::MultistageFilter device(config);
  device.observe(key(1), 9'999);
  const auto first = device.end_interval();
  EXPECT_EQ(core::find_flow(first, key(1)), nullptr);
  device.observe(key(1), 9'999);
  const auto second = device.end_interval();
  EXPECT_EQ(core::find_flow(second, key(1)), nullptr);
}

TEST(Adversarial, ExactThresholdPacketPasses) {
  // Boundary: a single packet of exactly T bytes must pass (counters
  // reach T, the condition is >=).
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 16;
  config.depth = 3;
  config.buckets_per_stage = 32;
  config.threshold = 1500;
  config.seed = 7;
  core::MultistageFilter device(config);
  device.observe(key(1), 1500);
  const auto report = device.end_interval();
  EXPECT_NE(core::find_flow(report, key(1)), nullptr);
}

TEST(Adversarial, OneByteBelowThresholdDoesNotPass) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 16;
  config.depth = 3;
  config.buckets_per_stage = 32;
  config.threshold = 1500;
  config.seed = 7;
  core::MultistageFilter device(config);
  device.observe(key(1), 1499);
  const auto report = device.end_interval();
  EXPECT_EQ(core::find_flow(report, key(1)), nullptr);
}

TEST(Adversarial, SampleAndHoldSurvivesPathologicalSizes) {
  core::SampleAndHoldConfig config;
  config.flow_memory_entries = 64;
  config.threshold = 1000;
  config.oversampling = 4.0;
  config.seed = 9;
  core::SampleAndHold device(config);
  device.observe(key(1), 0);           // zero-size packet
  device.observe(key(2), 1);           // one byte
  device.observe(key(3), 0xFFFFFFFF);  // absurd jumbo
  const auto report = device.end_interval();
  // The jumbo flow is sampled with probability ~1 and reported whole.
  const auto* jumbo = core::find_flow(report, key(3));
  ASSERT_NE(jumbo, nullptr);
  EXPECT_EQ(jumbo->estimated_bytes, 0xFFFFFFFFull);
}

TEST(Adversarial, FilterSurvivesPathologicalSizes) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 64;
  config.depth = 2;
  config.buckets_per_stage = 16;
  config.threshold = 1000;
  config.seed = 13;
  core::MultistageFilter device(config);
  device.observe(key(1), 0);
  device.observe(key(2), 0xFFFFFFFF);
  const auto report = device.end_interval();
  EXPECT_EQ(core::find_flow(report, key(1)), nullptr);  // 0 bytes < T
  EXPECT_NE(core::find_flow(report, key(2)), nullptr);
}

TEST(Adversarial, RepeatedIdenticalPacketsFromManyFlowsSameSize) {
  // Uniform flow sizes right below threshold: the worst case for the
  // Lemma 1 analysis. With conservative update none of them passes
  // when stages are strong enough.
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 1u << 16;
  config.depth = 4;
  config.buckets_per_stage = 2048;
  config.threshold = 20'000;
  config.conservative_update = true;
  config.seed = 17;
  core::MultistageFilter device(config);
  // 1,000 flows of exactly T-40 bytes; total 20 MB; k = 2.05.
  for (std::uint32_t f = 0; f < 1000; ++f) {
    common::ByteCount remaining = 19'960;
    while (remaining > 0) {
      const auto size = static_cast<std::uint32_t>(
          std::min<common::ByteCount>(1496, remaining));
      device.observe(key(f), size);
      remaining -= size;
    }
  }
  const auto report = device.end_interval();
  // No false negatives is vacuous (nobody is large); the interesting
  // claim is that conservative update keeps false positives rare even
  // at k ~ 2.
  EXPECT_LT(report.flows.size(), 100u);
}

TEST(Adversarial, ThresholdOneTracksEverything) {
  core::MultistageFilterConfig config;
  config.flow_memory_entries = 256;
  config.depth = 2;
  config.buckets_per_stage = 64;
  config.threshold = 1;
  config.seed = 19;
  core::MultistageFilter device(config);
  for (std::uint32_t f = 0; f < 100; ++f) {
    device.observe(key(f), 40);
  }
  const auto report = device.end_interval();
  EXPECT_EQ(report.flows.size(), 100u);
}

}  // namespace
}  // namespace nd
