// Cross-component consistency properties that only hold if the pieces
// compose correctly end to end.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/exact_oracle.hpp"
#include "core/measurement_session.hpp"
#include "core/multistage_filter.hpp"
#include "eval/driver.hpp"
#include "pcap/pcap.hpp"
#include "reporting/aggregator.hpp"
#include "reporting/record_codec.hpp"
#include "trace/presets.hpp"
#include "trace/stats.hpp"

namespace nd {
namespace {

trace::TraceConfig tiny_trace(std::uint64_t seed = 77) {
  auto config = trace::scaled(trace::Presets::cos(), 0.2);
  config.num_intervals = 3;
  config.seed = seed;
  return config;
}

TEST(CrossComponent, SerialEqualsParallelAtDepthOne) {
  // With one stage there is nothing to chain: the serial and parallel
  // filters must produce identical reports given identical seeds.
  core::MultistageFilterConfig base;
  base.flow_memory_entries = 1u << 16;
  base.depth = 1;
  base.buckets_per_stage = 256;
  base.threshold = 20'000;
  base.conservative_update = false;
  base.shielding = false;
  base.seed = 5;

  core::MultistageFilter parallel(base);
  base.serial = true;
  core::MultistageFilter serial(base);

  trace::TraceSynthesizer synth(tiny_trace());
  const auto packets = synth.next_interval();
  const auto definition = packet::FlowDefinition::five_tuple();
  for (const auto& packet : packets) {
    const auto key = *definition.classify(packet);
    parallel.observe(key, packet.size_bytes);
    serial.observe(key, packet.size_bytes);
  }
  auto pr = parallel.end_interval();
  auto sr = serial.end_interval();
  core::sort_by_size(pr);
  core::sort_by_size(sr);
  ASSERT_EQ(pr.flows.size(), sr.flows.size());
  for (std::size_t i = 0; i < pr.flows.size(); ++i) {
    EXPECT_EQ(pr.flows[i].key, sr.flows[i].key);
    EXPECT_EQ(pr.flows[i].estimated_bytes, sr.flows[i].estimated_bytes);
  }
}

TEST(CrossComponent, AggregatedOracleMatchesNativeDefinition) {
  // Aggregating an exact 5-tuple report to destination-IP must equal an
  // oracle run natively at destination-IP granularity.
  trace::TraceSynthesizer synth(tiny_trace());
  const auto packets = synth.next_interval();

  baseline::ExactOracle five_tuple_oracle;
  baseline::ExactOracle dst_oracle;
  const auto def5 = packet::FlowDefinition::five_tuple();
  const auto defd = packet::FlowDefinition::destination_ip();
  for (const auto& packet : packets) {
    five_tuple_oracle.observe(*def5.classify(packet), packet.size_bytes);
    dst_oracle.observe(*defd.classify(packet), packet.size_bytes);
  }
  const auto aggregated = reporting::aggregate_to_destination_ip(
      five_tuple_oracle.end_interval());
  const auto native = dst_oracle.end_interval();

  ASSERT_EQ(aggregated.flows.size(), native.flows.size());
  for (const auto& flow : aggregated.flows) {
    const auto* match = core::find_flow(native, flow.key);
    ASSERT_NE(match, nullptr) << flow.key.to_string();
    EXPECT_EQ(flow.estimated_bytes, match->estimated_bytes);
  }
}

TEST(CrossComponent, SessionOverPcapMatchesDirectDrive) {
  // pcap round trip + MeasurementSession must reproduce exactly the
  // reports of driving the device directly on the in-memory packets.
  const auto config = tiny_trace(91);
  const auto intervals = trace::synthesize_all(config);

  // Path A: direct drive.
  core::MultistageFilterConfig filter_config;
  filter_config.flow_memory_entries = 1u << 14;
  filter_config.depth = 3;
  filter_config.buckets_per_stage = 512;
  filter_config.threshold = 50'000;
  filter_config.seed = 9;
  core::MultistageFilter direct(filter_config);
  const auto definition = packet::FlowDefinition::five_tuple();
  std::vector<core::Report> direct_reports;
  for (const auto& interval : intervals) {
    for (const auto& packet : interval) {
      direct.observe(*definition.classify(packet), packet.size_bytes);
    }
    direct_reports.push_back(direct.end_interval());
  }

  // Path B: pcap bytes -> reader -> session.
  std::stringstream pcap_stream;
  {
    pcap::PcapWriter writer(pcap_stream, 128);
    for (const auto& interval : intervals) {
      for (const auto& packet : interval) {
        writer.write(packet);
      }
    }
  }
  core::MeasurementSession session(
      std::make_unique<core::MultistageFilter>(filter_config), definition,
      config.interval_duration);
  pcap::PcapReader reader(pcap_stream);
  std::vector<core::Report> session_reports;
  while (const auto record = reader.next_record()) {
    session.observe(*record);
    for (auto& report : session.drain_reports()) {
      session_reports.push_back(std::move(report));
    }
  }
  for (auto& report : session.finish()) {
    session_reports.push_back(std::move(report));
  }

  ASSERT_EQ(session_reports.size(), direct_reports.size());
  for (std::size_t i = 0; i < direct_reports.size(); ++i) {
    auto a = direct_reports[i];
    auto b = session_reports[i];
    core::sort_by_size(a);
    core::sort_by_size(b);
    ASSERT_EQ(a.flows.size(), b.flows.size()) << "interval " << i;
    for (std::size_t f = 0; f < a.flows.size(); ++f) {
      EXPECT_EQ(a.flows[f].key, b.flows[f].key);
      EXPECT_EQ(a.flows[f].estimated_bytes, b.flows[f].estimated_bytes);
    }
  }
}

TEST(CrossComponent, CodecRoundTripPreservesMetrics) {
  // Metrics computed from a decoded report equal those from the
  // original: the export path loses nothing the evaluation needs.
  trace::TraceSynthesizer synth(tiny_trace(33));
  const auto packets = synth.next_interval();
  const auto definition = packet::FlowDefinition::destination_ip();

  baseline::ExactOracle oracle;
  eval::TruthMap truth;
  for (const auto& packet : packets) {
    const auto key = *definition.classify(packet);
    oracle.observe(key, packet.size_bytes);
    truth[key] += packet.size_bytes;
  }
  const auto report = oracle.end_interval();
  const auto decoded = reporting::decode(
      reporting::encode(report, packet::FlowKeyKind::kDestinationIp));

  const auto original =
      eval::threshold_metrics(report, truth, 10'000);
  const auto after =
      eval::threshold_metrics(decoded, truth, 10'000);
  EXPECT_EQ(original.true_large_flows, after.true_large_flows);
  EXPECT_EQ(original.identified_large_flows,
            after.identified_large_flows);
  EXPECT_EQ(original.false_positives, after.false_positives);
  EXPECT_DOUBLE_EQ(original.avg_error_large, after.avg_error_large);
}

}  // namespace
}  // namespace nd
