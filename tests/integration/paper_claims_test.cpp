// Trace-level validation of the Section 7.1 claims:
//  * measured memory/error far below the general bounds, below the Zipf
//    bounds (Table 4 ordering);
//  * false positives fall ~exponentially with filter depth; conservative
//    update beats the plain parallel filter (Figure 7 ordering);
//  * preserving entries slashes the error of large-flow estimates;
//  * shielding reduces false positives.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/multistage_bounds.hpp"
#include "analysis/sample_hold_bounds.hpp"
#include "analysis/zipf_bounds.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "eval/driver.hpp"
#include "trace/presets.hpp"

namespace nd::eval {
namespace {

trace::TraceConfig test_trace(std::uint64_t seed = 5) {
  auto config = trace::scaled(trace::Presets::mag(), 0.04);
  config.num_intervals = 6;
  config.seed = seed;
  return config;
}

DeviceResult run_device(core::MeasurementDevice& device,
                        const trace::TraceConfig& config,
                        common::ByteCount metric_threshold) {
  DriverOptions options;
  options.metric_threshold = metric_threshold;
  return run_single(device, config, packet::FlowDefinition::five_tuple(),
                    options);
}

TEST(Table4Ordering, MeasuredMemoryBelowZipfBelowGeneral) {
  const auto config = test_trace();
  const common::ByteCount threshold =
      config.link_capacity_per_interval / 4000;  // T = 0.025% of link

  core::SampleAndHoldConfig sh;
  sh.flow_memory_entries = 1u << 16;  // effectively unbounded: we want
                                      // the true usage, not a cap
  sh.threshold = threshold;
  sh.oversampling = 4.0;
  sh.seed = 21;
  core::SampleAndHold device(sh);
  const auto result = run_device(device, config, threshold);

  analysis::SampleHoldParams params;
  params.oversampling = 4.0;
  params.threshold = threshold;
  params.capacity = config.link_capacity_per_interval;
  const double general = analysis::entries_bound(params, 0.001);
  const auto sizes = analysis::zipf_flow_sizes(
      config.flow_count, config.zipf_alpha, config.bytes_per_interval);
  const double zipf =
      analysis::sample_hold_entries_zipf(params, sizes, false, 0.001);

  EXPECT_LT(static_cast<double>(result.max_entries_used), zipf);
  EXPECT_LT(zipf, general);
}

TEST(Table4Ordering, PreserveEntriesCutsErrorRaisesMemory) {
  // Section 7.1.1: "preserving entries reduces the average error by
  // 70%-95% and increases memory usage by 40%-70%" (we accept a wider
  // band on synthetic traces).
  const auto config = test_trace(9);
  const common::ByteCount threshold =
      config.link_capacity_per_interval / 4000;

  core::SampleAndHoldConfig base;
  base.flow_memory_entries = 1u << 16;
  base.threshold = threshold;
  base.oversampling = 4.0;
  base.seed = 31;

  core::SampleAndHold plain(base);
  base.preserve = flowmem::PreservePolicy::kPreserve;
  core::SampleAndHold preserving(base);

  const auto plain_result = run_device(plain, config, threshold);
  const auto preserve_result = run_device(preserving, config, threshold);

  EXPECT_LT(preserve_result.avg_error_over_threshold.value(),
            plain_result.avg_error_over_threshold.value() * 0.6);
  EXPECT_GT(preserve_result.max_entries_used,
            plain_result.max_entries_used);
}

TEST(Table4Ordering, EarlyRemovalCutsMemoryVsPreserve) {
  // Section 7.1.1: "an early removal threshold of 15% reduces the memory
  // usage by 20%-30%".
  const auto config = test_trace(13);
  const common::ByteCount threshold =
      config.link_capacity_per_interval / 4000;

  core::SampleAndHoldConfig base;
  base.flow_memory_entries = 1u << 16;
  base.threshold = threshold;
  base.oversampling = 4.7;  // paper compensates the higher miss rate
  base.seed = 37;

  base.preserve = flowmem::PreservePolicy::kPreserve;
  core::SampleAndHold preserving(base);
  base.preserve = flowmem::PreservePolicy::kEarlyRemoval;
  base.early_removal_fraction = 0.15;
  core::SampleAndHold early(base);

  const auto preserve_result = run_device(preserving, config, threshold);
  const auto early_result = run_device(early, config, threshold);
  EXPECT_LT(early_result.max_entries_used,
            preserve_result.max_entries_used);
}

struct Figure7Point {
  double measured_fp_pct;
  double zipf_bound_pct;
  double general_bound;
};

Figure7Point figure7_point(std::uint32_t depth, bool conservative,
                           bool serial, const trace::TraceConfig& config,
                           common::ByteCount threshold,
                           common::ByteCount buckets) {
  core::MultistageFilterConfig msf;
  msf.flow_memory_entries = 1u << 16;
  msf.depth = depth;
  msf.buckets_per_stage = static_cast<std::uint32_t>(buckets);
  msf.threshold = threshold;
  msf.conservative_update = conservative;
  msf.serial = serial;
  msf.shielding = false;
  msf.seed = 91;
  core::MultistageFilter device(msf);
  const auto result = run_device(device, config, threshold);

  analysis::MultistageParams params;
  params.buckets = static_cast<std::uint32_t>(buckets);
  params.depth = depth;
  params.flows = config.flow_count;
  params.capacity = config.bytes_per_interval;  // max traffic, not link
  params.threshold = threshold;
  const auto sizes = analysis::zipf_flow_sizes(
      config.flow_count, config.zipf_alpha, config.bytes_per_interval);
  return Figure7Point{
      result.false_positive_percentage.value(),
      analysis::multistage_false_positive_percentage_zipf(params, sizes),
      analysis::expected_flows_passing(params)};
}

TEST(Figure7, ConservativeBeatsPlainAndBoundsHold) {
  const auto config = test_trace(17);
  // Stage strength k = 3 over the actual traffic, as in Figure 7.
  const common::ByteCount buckets = 3'000;
  const common::ByteCount threshold =
      config.bytes_per_interval * 3 / buckets;

  for (const std::uint32_t depth : {2u, 3u, 4u}) {
    const auto plain =
        figure7_point(depth, false, false, config, threshold, buckets);
    const auto conservative =
        figure7_point(depth, true, false, config, threshold, buckets);
    // Measured below the Zipf-aware analytical bound.
    EXPECT_LT(plain.measured_fp_pct, plain.zipf_bound_pct + 0.5)
        << "depth " << depth;
    // Conservative update strictly helps (Figure 7's bottom line).
    EXPECT_LE(conservative.measured_fp_pct, plain.measured_fp_pct)
        << "depth " << depth;
  }
}

TEST(Figure7, FalsePositivesDecayWithDepth) {
  const auto config = test_trace(19);
  const common::ByteCount buckets = 3'000;
  const common::ByteCount threshold =
      config.bytes_per_interval * 3 / buckets;
  double last = 1e9;
  for (const std::uint32_t depth : {1u, 2u, 3u, 4u}) {
    const auto point =
        figure7_point(depth, false, false, config, threshold, buckets);
    EXPECT_LE(point.measured_fp_pct, last + 0.01) << "depth " << depth;
    last = point.measured_fp_pct;
  }
  // Depth 4 should be dramatically below depth 1.
  const auto d1 = figure7_point(1, false, false, config, threshold, buckets);
  const auto d4 = figure7_point(4, false, false, config, threshold, buckets);
  EXPECT_LT(d4.measured_fp_pct, d1.measured_fp_pct / 4.0);
}

TEST(Shielding, ReducesFalsePositivesAcrossIntervals) {
  const auto config = test_trace(23);
  const common::ByteCount threshold =
      config.link_capacity_per_interval / 2000;

  auto make = [&](bool shielding) {
    core::MultistageFilterConfig msf;
    msf.flow_memory_entries = 1u << 16;
    msf.depth = 4;
    msf.buckets_per_stage = 1000;
    msf.threshold = threshold;
    msf.conservative_update = false;
    msf.shielding = shielding;
    msf.preserve = flowmem::PreservePolicy::kPreserve;
    msf.seed = 97;
    return std::make_unique<core::MultistageFilter>(msf);
  };
  auto with = make(true);
  auto without = make(false);
  const auto with_result = run_device(*with, config, threshold);
  const auto without_result = run_device(*without, config, threshold);
  EXPECT_LE(with_result.false_positive_percentage.value(),
            without_result.false_positive_percentage.value());
}

}  // namespace
}  // namespace nd::eval
