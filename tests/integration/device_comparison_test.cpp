// End-to-end comparison of complete measurement devices on a scaled MAG
// trace — the qualitative claims of Section 7.2 (Tables 5-7): both new
// algorithms beat sampled NetFlow on large flows, despite NetFlow's
// unbounded memory.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/sampled_netflow.hpp"
#include "core/adaptive_device.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "eval/driver.hpp"
#include "trace/presets.hpp"

namespace nd::eval {
namespace {

class DeviceComparison : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.05;
  // Memory budget: the paper gives 4,096 entries to a full MAG trace.
  // Expected sample-and-hold entries scale as O(s1/T (1 + ln(n T/O s1)))
  // — logarithmic in n, so a 5% trace needs more than 5% of the
  // entries for the threshold to stabilize at a comparable fraction of
  // link capacity. 1,024 entries puts the stable threshold near 0.03%
  // of capacity, matching the paper's regime (threshold well under the
  // 0.1% group boundary).
  static constexpr std::size_t kMemoryBudget = 1024;

  void SetUp() override {
    config_ = trace::scaled(trace::Presets::mag(), kScale);
    config_.num_intervals = 16;

    core::SampleAndHoldConfig sh;
    sh.flow_memory_entries = kMemoryBudget;
    // Start near the expected stable point; like the paper, the first 10
    // intervals are ignored while the adaptor settles.
    sh.threshold = config_.link_capacity_per_interval / 300;
    sh.oversampling = 4.0;
    sh.preserve = flowmem::PreservePolicy::kEarlyRemoval;
    sh.early_removal_fraction = 0.15;
    sh.seed = 71;
    sample_and_hold_ = std::make_unique<core::AdaptiveDevice>(
        std::make_unique<core::SampleAndHold>(sh),
        core::sample_and_hold_adaptor());

    core::MultistageFilterConfig msf;
    // Budget split as in Section 7.2: part counters, part flow memory.
    msf.flow_memory_entries = kMemoryBudget * 5 / 8;
    msf.buckets_per_stage = kMemoryBudget * 3 / 8 * 10 / 4;
    msf.depth = 4;
    msf.threshold = config_.link_capacity_per_interval / 300;
    msf.conservative_update = true;
    msf.shielding = true;
    msf.preserve = flowmem::PreservePolicy::kPreserve;
    msf.seed = 72;
    multistage_ = std::make_unique<core::AdaptiveDevice>(
        std::make_unique<core::MultistageFilter>(msf),
        core::multistage_adaptor());

    baseline::SampledNetFlowConfig nf;
    nf.sampling_divisor = 16;
    nf.seed = 73;
    netflow_ = std::make_unique<baseline::SampledNetFlow>(nf);

    DriverOptions options;
    options.warmup_intervals = 10;
    options.link_capacity = config_.link_capacity_per_interval;
    options.groups = paper_groups();
    Driver driver(packet::FlowDefinition::five_tuple(), options);
    driver.add_device("sample-and-hold", *sample_and_hold_);
    driver.add_device("multistage", *multistage_);
    driver.add_device("netflow", *netflow_);
    trace::TraceSynthesizer synth(config_);
    driver.run(synth);
    results_ = driver.results();
  }

  trace::TraceConfig config_;
  std::unique_ptr<core::AdaptiveDevice> sample_and_hold_;
  std::unique_ptr<core::AdaptiveDevice> multistage_;
  std::unique_ptr<baseline::SampledNetFlow> netflow_;
  std::vector<DeviceResult> results_;
};

TEST_F(DeviceComparison, AllDevicesSawTraffic) {
  for (const auto& result : results_) {
    EXPECT_GT(result.packets, 10'000u) << result.label;
    ASSERT_EQ(result.groups.size(), 3u) << result.label;
  }
  EXPECT_GT(results_[0].groups[0].true_flows, 0u);
}

TEST_F(DeviceComparison, NewAlgorithmsFindAllVeryLargeFlows) {
  // Table 5 row 1: 0% unidentified in the > 0.1% group for both (the
  // multistage filter deterministically; sample and hold up to its
  // ~e^-12 miss probability at 3x threshold).
  EXPECT_LE(results_[0].groups[0].unidentified_fraction, 0.005);
  EXPECT_DOUBLE_EQ(results_[1].groups[0].unidentified_fraction, 0.0);
}

TEST_F(DeviceComparison, NewAlgorithmsBeatNetFlowOnVeryLargeFlows) {
  // Table 5 row 1: errors 0.075% / 0.037% vs NetFlow's 9.02%.
  const double sh = results_[0].groups[0].relative_avg_error;
  const double msf = results_[1].groups[0].relative_avg_error;
  const double nf = results_[2].groups[0].relative_avg_error;
  EXPECT_LT(sh, nf / 5.0);
  EXPECT_LT(msf, nf / 5.0);
}

TEST_F(DeviceComparison, NewAlgorithmsBeatNetFlowOnLargeFlows) {
  // Table 5 row 2 (0.1%..0.01% group).
  const double sh = results_[0].groups[1].relative_avg_error;
  const double msf = results_[1].groups[1].relative_avg_error;
  const double nf = results_[2].groups[1].relative_avg_error;
  EXPECT_LT(sh, nf);
  EXPECT_LT(msf, nf);
}

TEST_F(DeviceComparison, EveryoneMissesManyMediumFlows) {
  // Table 5 row 3: the medium group (0.01%..0.001%) sits below the
  // stabilized thresholds, so our devices miss most of those flows —
  // and 1-in-16 NetFlow misses the short ones too (its row 3 shows 18%
  // missed on the real MAG+; on the synthetic trace medium flows are
  // fewer packets, so it misses more).
  EXPECT_GT(results_[0].groups[2].unidentified_fraction, 0.3);
  EXPECT_GT(results_[1].groups[2].unidentified_fraction, 0.3);
  EXPECT_GT(results_[2].groups[2].unidentified_fraction, 0.1);
}

TEST_F(DeviceComparison, BoundedMemoryRespected) {
  EXPECT_LE(results_[0].max_entries_used, kMemoryBudget);
  EXPECT_LE(results_[1].max_entries_used, kMemoryBudget * 5 / 8);
  // NetFlow's DRAM table grows past the multistage filter's SRAM flow
  // memory (it keeps an entry for every sampled flow, large or small).
  EXPECT_GT(netflow_->high_water_entries(), results_[1].max_entries_used);
}

TEST_F(DeviceComparison, AdaptiveThresholdsStabilized) {
  // Both adaptive devices must have moved their threshold off the
  // initial guess and kept usage below capacity.
  EXPECT_GT(results_[0].entries_used.value(), 0.0);
  EXPECT_LT(results_[0].entries_used.value(),
            static_cast<double>(kMemoryBudget));
  EXPECT_GT(results_[1].final_threshold, 0u);
}

}  // namespace
}  // namespace nd::eval
