// Tests for the tag-partitioned flow-memory layout: the SWAR tag-probe
// primitives (including the documented borrow caveat), the edge cases of
// the word-at-a-time probe (wraparound, table-full, 7-bit tag collisions)
// and — the load-bearing contract — bit-identical behaviour against a
// self-contained copy of the pre-tag layout, down to checkpoint bytes
// and device reports on the paper's trace presets.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "../support/reference_flow_memory.hpp"
#include "../support/report_testing.hpp"
#include "core/multistage_filter.hpp"
#include "core/sample_and_hold.hpp"
#include "flowmem/flow_memory.hpp"
#include "flowmem/tag_probe.hpp"
#include "hash/hash.hpp"
#include "trace/presets.hpp"

namespace nd::flowmem {
namespace {

using nd::testing::ReferenceFlowMemory;

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

std::uint64_t word_of_lanes(const std::uint8_t (&lanes)[kTagGroupWidth]) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < kTagGroupWidth; ++i) {
    word |= static_cast<std::uint64_t>(lanes[i]) << (8 * i);
  }
  return word;
}

// --- SWAR primitives ---------------------------------------------------

TEST(TagProbe, TagIsNeverEmpty) {
  // Tag 0 means "empty slot"; tag_of must never produce it, whatever the
  // hash — the high bit guarantees that.
  for (std::uint64_t h :
       {0ULL, 1ULL, ~0ULL, 0x8000000000000000ULL, 0x00FFFFFFFFFFFFFFULL}) {
    EXPECT_GE(tag_of(h), 0x80U) << "hash " << h;
  }
}

TEST(TagProbe, TagUsesTopBitsSlotUsesBottomBits) {
  // Same bottom bits (same home slot), different top bits -> different
  // tags: tag collisions stay independent of slot collisions.
  const std::uint64_t low = 0x123456;
  EXPECT_NE(tag_of(low | (0x01ULL << 57)), tag_of(low | (0x02ULL << 57)));
  EXPECT_EQ(tag_of(0x01ULL << 57), tag_of((0x01ULL << 57) | 0xFFFF));
}

TEST(TagProbe, ZeroLanesFindsEachSingleZeroExactly) {
  for (std::size_t z = 0; z < kTagGroupWidth; ++z) {
    std::uint8_t lanes[kTagGroupWidth];
    for (std::size_t i = 0; i < kTagGroupWidth; ++i) {
      lanes[i] = static_cast<std::uint8_t>(0x80U + i + 1);
    }
    lanes[z] = 0;
    const std::uint64_t marked = zero_lanes(word_of_lanes(lanes));
    ASSERT_NE(marked, 0U);
    // The lowest marked lane is exact even when borrow propagation marks
    // lanes above it.
    EXPECT_EQ(first_lane(marked), z);
  }
}

TEST(TagProbe, ZeroLanesBorrowCaveatOnlyAffectsLanesAboveATrueZero) {
  // lane1 = 0x01 sits directly above a true zero in lane0: the SWAR
  // subtraction borrows through it and falsely marks it. This is the
  // documented caveat — and exactly why the probe only trusts the FIRST
  // marked lane (and discards matches above it).
  std::uint8_t lanes[kTagGroupWidth] = {0x00, 0x01, 0x82, 0x83,
                                        0x84, 0x85, 0x86, 0x87};
  const std::uint64_t marked = zero_lanes(word_of_lanes(lanes));
  EXPECT_EQ(first_lane(marked), 0U);           // the true zero
  EXPECT_NE(marked & (0x80ULL << 8), 0U);      // lane 1 falsely marked
  // Below any zero lane the test is exact: no lane below a zero is ever
  // marked.
  std::uint8_t high_zero[kTagGroupWidth] = {0x81, 0x82, 0x83, 0x84,
                                            0x85, 0x86, 0x87, 0x00};
  EXPECT_EQ(first_lane(zero_lanes(word_of_lanes(high_zero))), 7U);
}

TEST(TagProbe, MatchLanesFindsAllCopiesOfTheByte) {
  std::uint8_t lanes[kTagGroupWidth] = {0x91, 0x85, 0x91, 0x86,
                                        0x87, 0x91, 0x88, 0x89};
  std::uint64_t matches = match_lanes(word_of_lanes(lanes), 0x91);
  EXPECT_EQ(first_lane(matches), 0U);
  matches &= matches - 1;
  EXPECT_EQ(first_lane(matches), 2U);
  matches &= matches - 1;
  EXPECT_EQ(first_lane(matches), 5U);
  matches &= matches - 1;
  EXPECT_EQ(matches, 0U);
}

TEST(TagProbe, LanesBelowFirstDiscardsMatchesPastTheFirstEmpty) {
  std::uint8_t lanes[kTagGroupWidth] = {0x91, 0x85, 0x00, 0x91,
                                        0x91, 0x86, 0x87, 0x88};
  const std::uint64_t word = word_of_lanes(lanes);
  const std::uint64_t kept =
      lanes_below_first(match_lanes(word, 0x91), zero_lanes(word));
  // Only the lane-0 match survives; lanes 3 and 4 are past the empty.
  EXPECT_EQ(first_lane(kept), 0U);
  EXPECT_EQ(kept & (kept - 1), 0U);
  // bound == 0 keeps everything.
  EXPECT_EQ(lanes_below_first(0x8080ULL, 0), 0x8080ULL);
}

// --- Probe edge cases --------------------------------------------------

TEST(TagLayout, FullTableProbeTerminates) {
  // Fill to capacity (half the slots) and look up a missing key: the
  // probe must terminate at an empty slot, and the table must refuse the
  // next insert without losing existing entries.
  FlowMemory memory(64, 7);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_NE(memory.insert(key(i), 0), nullptr) << i;
  }
  EXPECT_EQ(memory.insert(key(1000), 0), nullptr);
  EXPECT_EQ(memory.find(key(1000)), nullptr);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_NE(memory.find(key(i)), nullptr) << i;
  }
  EXPECT_EQ(memory.entries_used(), 64U);
}

TEST(TagLayout, ProbeChainsWrapAroundTheCapacityBoundary) {
  // Craft keys whose home slot lands in the LAST tag group, so the
  // probe's 8-byte loads and chain walks cross the slots-1 -> 0 seam
  // (covered by the mirrored tag pad).
  const std::uint64_t seed = 11;
  const std::size_t slots = 16;  // capacity 8 -> 16 slots
  const hash::HashFamily replica(seed);
  FlowMemory memory(8, seed);
  ReferenceFlowMemory reference(8, seed);
  std::vector<packet::FlowKey> tail_keys;
  for (std::uint32_t i = 0; tail_keys.size() < 6 && i < 100'000; ++i) {
    const packet::FlowKey k = key(i);
    const std::size_t home =
        static_cast<std::size_t>(replica.scramble(k.fingerprint())) &
        (slots - 1);
    if (home >= slots - 2) tail_keys.push_back(k);
  }
  ASSERT_EQ(tail_keys.size(), 6U);
  for (const packet::FlowKey& k : tail_keys) {
    ASSERT_NE(memory.insert(k, 0), nullptr);
    ASSERT_NE(reference.insert(k, 0), nullptr);
  }
  for (const packet::FlowKey& k : tail_keys) {
    FlowEntry* found = memory.find(k);
    flowmem::FlowEntry* expected = reference.find(k);
    ASSERT_NE(found, nullptr);
    ASSERT_NE(expected, nullptr);
    EXPECT_EQ(found->key, k);
    EXPECT_EQ(expected->key, k);
  }
  // Missing keys homed at the seam still terminate (and agree with the
  // reference on access counts).
  for (std::uint32_t i = 100'000; i < 100'050; ++i) {
    EXPECT_EQ(memory.find(key(i)) == nullptr,
              reference.find(key(i)) == nullptr);
  }
  EXPECT_EQ(memory.memory_accesses(), reference.memory_accesses());
}

TEST(TagLayout, TagCollisionWithKeyMismatchIsRejectedByKeyCompare) {
  // Two distinct keys with the SAME home slot and the SAME 7-bit tag:
  // the tag scan alone cannot tell them apart, so find() must fall back
  // to the full key comparison.
  const std::uint64_t seed = 5;
  const std::size_t slots = 16;
  const hash::HashFamily replica(seed);
  packet::FlowKey first = key(0);
  packet::FlowKey second = key(0);
  bool found_pair = false;
  for (std::uint32_t a = 0; a < 4'000 && !found_pair; ++a) {
    const std::uint64_t ha = replica.scramble(key(a).fingerprint());
    for (std::uint32_t b = a + 1; b < 4'000; ++b) {
      const std::uint64_t hb = replica.scramble(key(b).fingerprint());
      if ((ha & (slots - 1)) == (hb & (slots - 1)) &&
          tag_of(ha) == tag_of(hb)) {
        first = key(a);
        second = key(b);
        found_pair = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found_pair) << "no colliding pair in the search range";
  FlowMemory memory(8, seed);
  ASSERT_NE(memory.insert(first, 0), nullptr);
  EXPECT_EQ(memory.find(second), nullptr);  // same tag, different key
  ASSERT_NE(memory.insert(second, 0), nullptr);
  FlowEntry* a_entry = memory.find(first);
  FlowEntry* b_entry = memory.find(second);
  ASSERT_NE(a_entry, nullptr);
  ASSERT_NE(b_entry, nullptr);
  EXPECT_NE(a_entry, b_entry);
  EXPECT_EQ(a_entry->key, first);
  EXPECT_EQ(b_entry->key, second);
}

// --- Equivalence with the pre-tag layout -------------------------------

void expect_same_state(FlowMemory& actual, ReferenceFlowMemory& expected) {
  EXPECT_EQ(actual.entries_used(), expected.entries_used());
  EXPECT_EQ(actual.high_water(), expected.high_water());
  EXPECT_EQ(actual.memory_accesses(), expected.memory_accesses());
  common::StateWriter actual_state;
  common::StateWriter expected_state;
  actual.save_state(actual_state);
  expected.save_state(expected_state);
  // Byte-identical checkpoints: same slots, same payloads, same counts —
  // the strongest form of "the layout change is unobservable".
  EXPECT_EQ(actual_state.bytes(), expected_state.bytes());
}

TEST(TagLayout, RandomizedOperationsMatchReferenceBitForBit) {
  for (const PreservePolicy policy :
       {PreservePolicy::kClear, PreservePolicy::kPreserve,
        PreservePolicy::kEarlyRemoval}) {
    FlowMemory memory(128, 29);
    ReferenceFlowMemory reference(128, 29);
    std::mt19937_64 rng(1234);
    std::uniform_int_distribution<std::uint32_t> key_id(0, 400);
    std::uniform_int_distribution<std::uint32_t> bytes(1, 2000);
    common::IntervalIndex interval = 0;
    for (int step = 0; step < 20'000; ++step) {
      const packet::FlowKey k = key(key_id(rng));
      const std::uint32_t b = bytes(rng);
      FlowEntry* entry = memory.find(k);
      FlowEntry* ref_entry = reference.find(k);
      ASSERT_EQ(entry == nullptr, ref_entry == nullptr) << "step " << step;
      if (entry == nullptr) {
        entry = memory.insert(k, interval);
        ref_entry = reference.insert(k, interval);
        ASSERT_EQ(entry == nullptr, ref_entry == nullptr)
            << "step " << step;
      }
      if (entry != nullptr) {
        FlowMemory::add_bytes(*entry, b);
        FlowMemory::add_bytes(*ref_entry, b);
      }
      if (step % 2'500 == 2'499) {
        expect_same_state(memory, reference);
        const EndIntervalPolicy end{policy, 30'000, 4'500};
        memory.end_interval(end);
        reference.end_interval(end);
        ++interval;
        expect_same_state(memory, reference);
      }
    }
    expect_same_state(memory, reference);
  }
}

TEST(TagLayout, PreserveAndEarlyRemovalCompactionsMatchReference) {
  // Deterministic eviction shapes: a few heavy flows over threshold, a
  // band of new-this-interval flows, and small old flows that must be
  // evicted; the post-compaction placement (probe chains re-packed from
  // scratch) must match the reference slot for slot.
  for (const PreservePolicy policy :
       {PreservePolicy::kPreserve, PreservePolicy::kEarlyRemoval}) {
    FlowMemory memory(64, 17);
    ReferenceFlowMemory reference(64, 17);
    const EndIntervalPolicy end{policy, 10'000, 1'500};
    for (std::uint32_t i = 0; i < 48; ++i) {
      FlowEntry* entry = memory.insert(key(i), 0);
      FlowEntry* ref_entry = reference.insert(key(i), 0);
      ASSERT_NE(entry, nullptr);
      ASSERT_NE(ref_entry, nullptr);
      // i % 3 == 0 -> heavy, i % 3 == 1 -> early-removal band, else tiny.
      const common::ByteCount b =
          i % 3 == 0 ? 20'000U : (i % 3 == 1 ? 2'000U : 100U);
      FlowMemory::add_bytes(*entry, b);
      FlowMemory::add_bytes(*ref_entry, b);
    }
    memory.end_interval(end);
    reference.end_interval(end);
    expect_same_state(memory, reference);
    // Survivors are exact next interval and findable through the
    // re-packed chains.
    for (std::uint32_t i = 0; i < 48; ++i) {
      FlowEntry* entry = memory.find(key(i));
      FlowEntry* ref_entry = reference.find(key(i));
      ASSERT_EQ(entry == nullptr, ref_entry == nullptr) << i;
      if (entry != nullptr) {
        EXPECT_TRUE(entry->exact_this_interval);
        EXPECT_EQ(entry->bytes_current, 0U);
        EXPECT_EQ(entry->bytes_lifetime, ref_entry->bytes_lifetime);
      }
    }
    expect_same_state(memory, reference);
  }
}

TEST(TagLayout, CheckpointRoundTripRebuildsTags) {
  // save -> restore into a fresh table: the tag array is derived state,
  // so lookups (including negatives) must behave identically after the
  // round trip, and a re-save must be byte-identical.
  FlowMemory memory(32, 23);
  for (std::uint32_t i = 0; i < 30; ++i) {
    FlowEntry* entry = memory.insert(key(i), 0);
    ASSERT_NE(entry, nullptr);
    FlowMemory::add_bytes(*entry, 100U * (i + 1));
  }
  common::StateWriter saved;
  memory.save_state(saved);
  FlowMemory restored(32, 23);
  common::StateReader reader(saved.bytes());
  restored.restore_state(reader);
  for (std::uint32_t i = 0; i < 30; ++i) {
    FlowEntry* entry = restored.find(key(i));
    ASSERT_NE(entry, nullptr) << i;
    EXPECT_EQ(entry->bytes_current, 100U * (i + 1));
  }
  EXPECT_EQ(restored.find(key(500)), nullptr);
  common::StateWriter resaved;
  restored.save_state(resaved);
  // find() bumped accesses_ since the save; compare modulo that by
  // saving from the original after the same number of extra finds.
  for (std::uint32_t i = 0; i < 30; ++i) (void)memory.find(key(i));
  (void)memory.find(key(500));
  common::StateWriter original;
  memory.save_state(original);
  EXPECT_EQ(resaved.bytes(), original.bytes());
}

// --- Device-level equivalence on the paper's presets -------------------

template <typename Device>
void expect_scalar_and_batched_reports_identical(
    const trace::TraceConfig& trace_config, Device make_device) {
  const auto intervals = nd::testing::classify_trace(
      trace_config, packet::FlowDefinition::five_tuple());
  auto scalar = make_device();
  auto batched = make_device();
  for (const auto& interval : intervals) {
    for (const auto& packet : interval) {
      scalar->observe(packet.key, packet.bytes);
    }
    batched->observe_batch(interval);
    nd::testing::expect_reports_equal(scalar->end_interval(),
                                      batched->end_interval());
  }
}

TEST(TagLayout, ScalarAndBatchedReportsIdenticalOnPresets) {
  // The distance-k tag prefetch pipeline is hints only: on each scaled
  // Table 3 preset, per-packet observe and the prefetching observe_batch
  // must produce bit-identical interval reports for both devices.
  const auto presets = {trace::scaled(trace::Presets::mag(3), 0.02),
                        trace::scaled(trace::Presets::ind(3), 0.05),
                        trace::scaled(trace::Presets::cos(3), 0.25)};
  for (const auto& preset : presets) {
    expect_scalar_and_batched_reports_identical(preset, [] {
      core::SampleAndHoldConfig config;
      config.flow_memory_entries = 512;
      config.threshold = 60'000;
      config.preserve = PreservePolicy::kEarlyRemoval;
      config.seed = 77;
      return std::make_unique<core::SampleAndHold>(config);
    });
    expect_scalar_and_batched_reports_identical(preset, [] {
      core::MultistageFilterConfig config;
      config.flow_memory_entries = 512;
      config.depth = 3;
      config.buckets_per_stage = 256;
      config.threshold = 60'000;
      config.preserve = PreservePolicy::kPreserve;
      config.seed = 77;
      return std::make_unique<core::MultistageFilter>(config);
    });
  }
}

}  // namespace
}  // namespace nd::flowmem
