// Randomized reference-model stress tests: FlowMemory and CamFlowMemory
// must agree with a plain std::unordered_map across long random
// insert/update/end-interval workloads (as long as capacity is never the
// binding constraint), and with each other when the CAM window covers
// the whole table.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "flowmem/cam_flow_memory.hpp"
#include "flowmem/flow_memory.hpp"

namespace nd::flowmem {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

struct ReferenceEntry {
  common::ByteCount current{0};
  common::ByteCount lifetime{0};
  bool created_this_interval{true};
};

using Reference = std::unordered_map<std::uint32_t, ReferenceEntry>;

void reference_end_interval(Reference& reference,
                            const EndIntervalPolicy& policy) {
  for (auto it = reference.begin(); it != reference.end();) {
    bool keep = false;
    switch (policy.policy) {
      case PreservePolicy::kClear:
        break;
      case PreservePolicy::kPreserve:
        keep = it->second.current >= policy.threshold ||
               it->second.created_this_interval;
        break;
      case PreservePolicy::kEarlyRemoval:
        keep = it->second.current >= policy.threshold ||
               (it->second.created_this_interval &&
                it->second.current >= policy.early_removal_threshold);
        break;
    }
    if (!keep) {
      it = reference.erase(it);
    } else {
      it->second.current = 0;
      it->second.created_this_interval = false;
      ++it;
    }
  }
}

class FlowMemoryStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowMemoryStress, AgreesWithReferenceModel) {
  common::Rng rng(GetParam());
  FlowMemory memory(4096, GetParam() ^ 0xAA);
  Reference reference;

  for (int step = 0; step < 30'000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.uniform(2000));
    const auto bytes = static_cast<std::uint32_t>(40 + rng.uniform(1460));

    FlowEntry* entry = memory.find(key(id));
    auto ref_it = reference.find(id);
    ASSERT_EQ(entry != nullptr, ref_it != reference.end()) << id;

    if (entry == nullptr) {
      entry = memory.insert(key(id), 0);
      ASSERT_NE(entry, nullptr);  // capacity 4096 > 2000 ids
      ref_it = reference.emplace(id, ReferenceEntry{}).first;
    }
    FlowMemory::add_bytes(*entry, bytes);
    ref_it->second.current += bytes;
    ref_it->second.lifetime += bytes;
    ASSERT_EQ(entry->bytes_current, ref_it->second.current);

    if (step % 5000 == 4999) {
      EndIntervalPolicy policy;
      const auto roll = rng.uniform(3);
      policy.policy = roll == 0   ? PreservePolicy::kClear
                      : roll == 1 ? PreservePolicy::kPreserve
                                  : PreservePolicy::kEarlyRemoval;
      policy.threshold = 20'000;
      policy.early_removal_threshold = 3'000;
      memory.end_interval(policy);
      reference_end_interval(reference, policy);
      ASSERT_EQ(memory.entries_used(), reference.size());
    }
  }
}

TEST_P(FlowMemoryStress, CamMemoryAgreesWithReferenceModel) {
  common::Rng rng(GetParam() ^ 0x77);
  CamFlowMemoryConfig config;
  config.hash_slots = 8192;  // roomy: window rarely overflows
  config.max_probe = 8;
  config.cam_entries = 256;
  config.seed = GetParam();
  CamFlowMemory memory(config);
  Reference reference;

  for (int step = 0; step < 20'000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.uniform(1500));
    const auto bytes = static_cast<std::uint32_t>(40 + rng.uniform(1460));

    FlowEntry* entry = memory.find(key(id));
    auto ref_it = reference.find(id);
    ASSERT_EQ(entry != nullptr, ref_it != reference.end()) << id;

    if (entry == nullptr) {
      entry = memory.insert(key(id), 0);
      ASSERT_NE(entry, nullptr);
      ref_it = reference.emplace(id, ReferenceEntry{}).first;
    }
    FlowMemory::add_bytes(*entry, bytes);
    ref_it->second.current += bytes;
    ref_it->second.lifetime += bytes;

    if (step % 4000 == 3999) {
      EndIntervalPolicy policy;
      policy.policy = PreservePolicy::kPreserve;
      policy.threshold = 25'000;
      memory.end_interval(policy);
      reference_end_interval(reference, policy);
      ASSERT_EQ(memory.entries_used(), reference.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowMemoryStress,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace nd::flowmem
