#include "flowmem/cam_flow_memory.hpp"

#include <gtest/gtest.h>

namespace nd::flowmem {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

CamFlowMemoryConfig small_config() {
  CamFlowMemoryConfig config;
  config.hash_slots = 64;
  config.max_probe = 2;
  config.cam_entries = 4;
  config.seed = 9;
  return config;
}

TEST(CamFlowMemory, InsertFindRoundTrip) {
  CamFlowMemory memory(small_config());
  FlowEntry* e = memory.insert(key(1), 0);
  ASSERT_NE(e, nullptr);
  FlowMemory::add_bytes(*e, 123);
  FlowEntry* found = memory.find(key(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->bytes_current, 123u);
}

TEST(CamFlowMemory, MissingKeyNotFound) {
  CamFlowMemory memory(small_config());
  EXPECT_EQ(memory.find(key(42)), nullptr);
}

TEST(CamFlowMemory, OverflowGoesToCam) {
  // A 1-slot window over a tiny table forces collisions into the CAM.
  CamFlowMemoryConfig config;
  config.hash_slots = 8;
  config.max_probe = 1;
  config.cam_entries = 8;
  config.seed = 3;
  CamFlowMemory memory(config);

  std::size_t inserted = 0;
  for (std::uint32_t i = 0; i < 16 && inserted < 12; ++i) {
    if (memory.insert(key(i), 0) != nullptr) ++inserted;
  }
  EXPECT_GT(memory.cam_used(), 0u);
  EXPECT_EQ(memory.entries_used(), inserted);
  // Everything inserted must still be findable (hash or CAM).
  std::size_t found = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    if (memory.find(key(i)) != nullptr) ++found;
  }
  EXPECT_EQ(found, inserted);
}

TEST(CamFlowMemory, FailsWhenWindowAndCamFull) {
  CamFlowMemoryConfig config;
  config.hash_slots = 8;
  config.max_probe = 8;  // window spans whole table
  config.cam_entries = 2;
  config.seed = 5;
  CamFlowMemory memory(config);
  std::size_t successes = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    if (memory.insert(key(i), 0) != nullptr) ++successes;
  }
  EXPECT_EQ(successes, 10u);  // 8 slots + 2 CAM
  EXPECT_GT(memory.failed_inserts(), 0u);
}

TEST(CamFlowMemory, CamHighWaterSticks) {
  CamFlowMemoryConfig config;
  config.hash_slots = 8;
  config.max_probe = 1;
  config.cam_entries = 8;
  config.seed = 7;
  CamFlowMemory memory(config);
  for (std::uint32_t i = 0; i < 20; ++i) {
    (void)memory.insert(key(i), 0);
  }
  const std::size_t high = memory.cam_high_water();
  EXPECT_GT(high, 0u);
  memory.end_interval(EndIntervalPolicy{});  // clear
  EXPECT_EQ(memory.cam_used(), 0u);
  EXPECT_EQ(memory.cam_high_water(), high);
}

TEST(CamFlowMemory, PreservePolicyAppliesAcrossBothStores) {
  CamFlowMemoryConfig config;
  config.hash_slots = 8;
  config.max_probe = 1;
  config.cam_entries = 8;
  config.seed = 11;
  CamFlowMemory memory(config);

  for (std::uint32_t i = 0; i < 12; ++i) {
    FlowEntry* e = memory.insert(key(i), 0);
    if (e != nullptr) {
      FlowMemory::add_bytes(*e, i < 6 ? 10'000u : 10u);
    }
  }
  const std::size_t before = memory.entries_used();
  ASSERT_GT(before, 6u);

  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kPreserve;
  policy.threshold = 1000;
  memory.end_interval(policy);
  // All entries were created this interval, so all survive...
  EXPECT_EQ(memory.entries_used(), before);
  memory.end_interval(policy);
  // ...but only the large ones survive a second interval.
  std::size_t survivors = 0;
  memory.for_each([&](const FlowEntry& entry) {
    EXPECT_GE(entry.bytes_lifetime, 10'000u);
    ++survivors;
  });
  EXPECT_EQ(memory.entries_used(), survivors);
  EXPECT_LE(survivors, 6u);
}

TEST(CamFlowMemory, SurvivorsExactAndZeroed) {
  CamFlowMemory memory(small_config());
  FlowEntry* e = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*e, 5000);
  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kPreserve;
  policy.threshold = 1000;
  memory.end_interval(policy);
  FlowEntry* survivor = memory.find(key(1));
  ASSERT_NE(survivor, nullptr);
  EXPECT_TRUE(survivor->exact_this_interval);
  EXPECT_EQ(survivor->bytes_current, 0u);
}

TEST(CamFlowMemory, ForEachVisitsBothStores) {
  CamFlowMemoryConfig config;
  config.hash_slots = 8;
  config.max_probe = 1;
  config.cam_entries = 8;
  config.seed = 13;
  CamFlowMemory memory(config);
  for (std::uint32_t i = 0; i < 14; ++i) {
    (void)memory.insert(key(i), 0);
  }
  std::size_t visited = 0;
  memory.for_each([&](const FlowEntry&) { ++visited; });
  EXPECT_EQ(visited, memory.entries_used());
  EXPECT_GT(memory.cam_used(), 0u);
}

}  // namespace
}  // namespace nd::flowmem
