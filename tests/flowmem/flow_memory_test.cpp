#include "flowmem/flow_memory.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nd::flowmem {
namespace {

packet::FlowKey key(std::uint32_t i) {
  return packet::FlowKey::destination_ip(i);
}

TEST(FlowMemory, FindMissingReturnsNull) {
  FlowMemory memory(16, 1);
  EXPECT_EQ(memory.find(key(1)), nullptr);
}

TEST(FlowMemory, InsertThenFind) {
  FlowMemory memory(16, 1);
  FlowEntry* inserted = memory.insert(key(1), 0);
  ASSERT_NE(inserted, nullptr);
  FlowMemory::add_bytes(*inserted, 100);
  FlowEntry* found = memory.find(key(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->bytes_current, 100u);
  EXPECT_EQ(found, inserted);
}

TEST(FlowMemory, CapacityEnforced) {
  FlowMemory memory(4, 2);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_NE(memory.insert(key(i), 0), nullptr);
  }
  EXPECT_EQ(memory.insert(key(99), 0), nullptr);  // full
  EXPECT_EQ(memory.entries_used(), 4u);
}

TEST(FlowMemory, ZeroCapacityRejectsAll) {
  FlowMemory memory(0, 3);
  EXPECT_EQ(memory.insert(key(1), 0), nullptr);
}

TEST(FlowMemory, ManyEntriesAllRetrievable) {
  // Stresses collision handling: 1000 entries in a 1000-capacity table.
  FlowMemory memory(1000, 4);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    FlowEntry* e = memory.insert(key(i), 0);
    ASSERT_NE(e, nullptr) << i;
    FlowMemory::add_bytes(*e, i + 1);
  }
  for (std::uint32_t i = 0; i < 1000; ++i) {
    FlowEntry* e = memory.find(key(i));
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->bytes_current, i + 1);
  }
}

TEST(FlowMemory, AddBytesAccumulatesLifetime) {
  FlowMemory memory(8, 5);
  FlowEntry* e = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*e, 10);
  FlowMemory::add_bytes(*e, 20);
  EXPECT_EQ(e->bytes_current, 30u);
  EXPECT_EQ(e->bytes_lifetime, 30u);
}

TEST(FlowMemory, ClearPolicyEmptiesTable) {
  FlowMemory memory(8, 6);
  (void)memory.insert(key(1), 0);
  (void)memory.insert(key(2), 0);
  memory.end_interval(EndIntervalPolicy{});
  EXPECT_EQ(memory.entries_used(), 0u);
  EXPECT_EQ(memory.find(key(1)), nullptr);
}

TEST(FlowMemory, PreserveKeepsLargeAndNewEntries) {
  FlowMemory memory(8, 7);
  // A large flow from a previous interval...
  FlowEntry* large = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*large, 1000);
  // ...and a small flow created this interval.
  FlowEntry* fresh = memory.insert(key(2), 0);
  FlowMemory::add_bytes(*fresh, 10);

  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kPreserve;
  policy.threshold = 500;
  memory.end_interval(policy);

  // Both survive: the large one by size, the fresh one because it was
  // added this interval (it may be a large flow that entered late).
  EXPECT_EQ(memory.entries_used(), 2u);
}

TEST(FlowMemory, PreserveDropsOldSmallEntries) {
  FlowMemory memory(8, 8);
  FlowEntry* entry = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*entry, 10);

  EndIntervalPolicy preserve;
  preserve.policy = PreservePolicy::kPreserve;
  preserve.threshold = 500;
  memory.end_interval(preserve);   // survives: created this interval
  ASSERT_EQ(memory.entries_used(), 1u);
  memory.end_interval(preserve);   // dropped: old and small
  EXPECT_EQ(memory.entries_used(), 0u);
}

TEST(FlowMemory, SurvivorsBecomeExactWithZeroedCounter) {
  FlowMemory memory(8, 9);
  FlowEntry* entry = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*entry, 900);
  EXPECT_FALSE(entry->exact_this_interval);

  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kPreserve;
  policy.threshold = 500;
  memory.end_interval(policy);

  FlowEntry* survivor = memory.find(key(1));
  ASSERT_NE(survivor, nullptr);
  EXPECT_TRUE(survivor->exact_this_interval);
  EXPECT_FALSE(survivor->created_this_interval);
  EXPECT_EQ(survivor->bytes_current, 0u);
  EXPECT_EQ(survivor->bytes_lifetime, 900u);
}

TEST(FlowMemory, EarlyRemovalDropsBelowR) {
  FlowMemory memory(8, 10);
  FlowEntry* tiny = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*tiny, 50);
  FlowEntry* medium = memory.insert(key(2), 0);
  FlowMemory::add_bytes(*medium, 200);
  FlowEntry* large = memory.insert(key(3), 0);
  FlowMemory::add_bytes(*large, 2000);

  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kEarlyRemoval;
  policy.threshold = 1000;
  policy.early_removal_threshold = 150;  // R = 0.15 T
  memory.end_interval(policy);

  EXPECT_EQ(memory.find(key(1)), nullptr);   // below R
  EXPECT_NE(memory.find(key(2)), nullptr);   // >= R, new this interval
  EXPECT_NE(memory.find(key(3)), nullptr);   // >= T
  EXPECT_EQ(memory.entries_used(), 2u);
}

TEST(FlowMemory, EarlyRemovalOldEntriesNeedFullThreshold) {
  FlowMemory memory(8, 11);
  FlowEntry* entry = memory.insert(key(1), 0);
  FlowMemory::add_bytes(*entry, 200);

  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kEarlyRemoval;
  policy.threshold = 1000;
  policy.early_removal_threshold = 150;
  memory.end_interval(policy);
  ASSERT_EQ(memory.entries_used(), 1u);  // new + >= R

  // Next interval it counts only 200 again — an old entry now, and
  // 200 < T, so it is dropped even though 200 >= R.
  FlowEntry* survivor = memory.find(key(1));
  FlowMemory::add_bytes(*survivor, 200);
  memory.end_interval(policy);
  EXPECT_EQ(memory.entries_used(), 0u);
}

TEST(FlowMemory, FindAfterRebuildHandlesCollisions) {
  // Fill, preserve everything, then verify lookups after the rebuild.
  FlowMemory memory(64, 12);
  for (std::uint32_t i = 0; i < 64; ++i) {
    FlowEntry* e = memory.insert(key(i), 0);
    ASSERT_NE(e, nullptr);
    FlowMemory::add_bytes(*e, 1'000'000);  // all "large"
  }
  EndIntervalPolicy policy;
  policy.policy = PreservePolicy::kPreserve;
  policy.threshold = 1;
  memory.end_interval(policy);
  EXPECT_EQ(memory.entries_used(), 64u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_NE(memory.find(key(i)), nullptr) << i;
  }
}

TEST(FlowMemory, HighWaterPersistsAcrossIntervals) {
  FlowMemory memory(8, 13);
  (void)memory.insert(key(1), 0);
  (void)memory.insert(key(2), 0);
  (void)memory.insert(key(3), 0);
  EXPECT_EQ(memory.high_water(), 3u);
  memory.end_interval(EndIntervalPolicy{});
  EXPECT_EQ(memory.high_water(), 3u);
  (void)memory.insert(key(4), 0);
  EXPECT_EQ(memory.high_water(), 3u);  // usage 1 < old high water
}

TEST(FlowMemory, ForEachVisitsExactlyOccupied) {
  FlowMemory memory(16, 14);
  (void)memory.insert(key(1), 0);
  (void)memory.insert(key(2), 0);
  std::vector<packet::FlowKey> seen;
  memory.for_each([&](const FlowEntry& e) { seen.push_back(e.key); });
  EXPECT_EQ(seen.size(), 2u);
}

TEST(FlowMemory, MemoryAccessesCounted) {
  FlowMemory memory(8, 15);
  const auto before = memory.memory_accesses();
  (void)memory.find(key(1));
  (void)memory.insert(key(1), 0);
  (void)memory.find(key(1));
  EXPECT_EQ(memory.memory_accesses(), before + 3);
}

TEST(FlowMemory, CreatedIntervalRecorded) {
  FlowMemory memory(8, 16);
  FlowEntry* e = memory.insert(key(5), 7);
  EXPECT_EQ(e->created_interval, 7u);
  EXPECT_TRUE(e->created_this_interval);
}

}  // namespace
}  // namespace nd::flowmem
