#include "reporting/collector.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nd::reporting {
namespace {

core::Report report_with(std::size_t flows) {
  core::Report report;
  for (std::size_t i = 0; i < flows; ++i) {
    report.flows.push_back(core::ReportedFlow{
        packet::FlowKey::destination_ip(static_cast<std::uint32_t>(i)),
        1000 * (flows - i),  // largest first
        false});
  }
  return report;
}

TEST(CollectionChannel, DeliversWhollyUnderBudget) {
  CollectionChannel channel(10'000);
  const auto delivered = channel.deliver(report_with(10));
  EXPECT_EQ(delivered.flows.size(), 10u);
  EXPECT_DOUBLE_EQ(channel.stats().record_loss_rate(), 0.0);
  EXPECT_EQ(channel.stats().bytes_offered,
            channel.stats().bytes_delivered);
}

TEST(CollectionChannel, TruncatesOverBudget) {
  // Budget for header + 3 records.
  CollectionChannel channel(kHeaderBytes + 3 * kRecordBytes);
  const auto delivered = channel.deliver(report_with(10));
  EXPECT_EQ(delivered.flows.size(), 3u);
  // Records are delivered in order: the heavy hitters survive.
  EXPECT_EQ(delivered.flows[0].estimated_bytes, 10'000u);
  EXPECT_NEAR(channel.stats().record_loss_rate(), 0.7, 1e-9);
}

TEST(CollectionChannel, TinyBudgetDeliversNothing) {
  CollectionChannel channel(4);
  const auto delivered = channel.deliver(report_with(5));
  EXPECT_TRUE(delivered.flows.empty());
  EXPECT_DOUBLE_EQ(channel.stats().record_loss_rate(), 1.0);
}

TEST(CollectionChannel, StatsAccumulateAcrossIntervals) {
  CollectionChannel channel(kHeaderBytes + 2 * kRecordBytes);
  (void)channel.deliver(report_with(4));
  (void)channel.deliver(report_with(1));
  const auto& stats = channel.stats();
  EXPECT_EQ(stats.reports_offered, 2u);
  EXPECT_EQ(stats.records_offered, 5u);
  EXPECT_EQ(stats.records_delivered, 3u);  // 2 + 1
  EXPECT_LT(stats.bytes_delivered, stats.bytes_offered);
}

TEST(CollectionChannel, MetricsTrailerDeliveredUnderBudget) {
  const std::string metrics = "{\"interval\":1,\"metrics\":[]}";
  CollectionChannel channel(10'000);
  const auto delivered = channel.deliver(report_with(10), metrics);
  EXPECT_TRUE(delivered.metrics_delivered);
  EXPECT_EQ(delivered.report.flows.size(), 10u);
  EXPECT_EQ(channel.stats().bytes_offered,
            channel.stats().bytes_delivered);
  // The trailer's bytes are accounted on the channel.
  EXPECT_EQ(channel.stats().bytes_delivered,
            encoded_size(report_with(10), metrics.size()));
}

TEST(CollectionChannel, TrailerDroppedBeforeAnyFlowRecord) {
  // Budget covers all records but not the trailer: flow records keep
  // priority on the constrained link, the trailer is the first casualty.
  const std::string metrics(200, 'x');
  const auto report = report_with(10);
  CollectionChannel channel(encoded_size(report) + 100);
  const auto delivered = channel.deliver(report, metrics);
  EXPECT_FALSE(delivered.metrics_delivered);
  EXPECT_EQ(delivered.report.flows.size(), 10u);
  // Offered bytes include the dropped trailer; delivered bytes do not.
  EXPECT_EQ(channel.stats().bytes_offered,
            encoded_size(report, metrics.size()));
  EXPECT_EQ(channel.stats().bytes_delivered, encoded_size(report));
}

TEST(CollectionChannel, TrailerPressureStillTruncatesRecords) {
  // Once the records alone exceed the budget, behavior degrades exactly
  // like the trailer-less path: prefix of records, no trailer.
  CollectionChannel channel(kHeaderBytes + 3 * kRecordBytes);
  const auto delivered = channel.deliver(report_with(10), "{}");
  EXPECT_FALSE(delivered.metrics_delivered);
  EXPECT_EQ(delivered.report.flows.size(), 3u);
}

TEST(CollectionChannel, EmptyTrailerBehavesLikePlainDeliver) {
  CollectionChannel channel(10'000);
  const auto delivered = channel.deliver(report_with(2), "");
  EXPECT_FALSE(delivered.metrics_delivered);
  EXPECT_EQ(delivered.report.flows.size(), 2u);
  EXPECT_EQ(channel.stats().bytes_offered,
            channel.stats().bytes_delivered);
}

TEST(CollectionChannel, NinetyPercentLossScenario) {
  // Section 2's "loss rates of up to 90% using basic NetFlow": offer
  // 10x more records than the channel carries.
  CollectionChannel channel(kHeaderBytes + 100 * kRecordBytes);
  (void)channel.deliver(report_with(1000));
  EXPECT_NEAR(channel.stats().record_loss_rate(), 0.9, 1e-9);
}

}  // namespace
}  // namespace nd::reporting
