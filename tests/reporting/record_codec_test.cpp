#include "reporting/record_codec.hpp"

#include <gtest/gtest.h>

namespace nd::reporting {
namespace {

core::Report sample_report() {
  core::Report report;
  report.interval = 7;
  report.threshold = 1'000'000;
  report.flows.push_back(core::ReportedFlow{
      packet::FlowKey::five_tuple(0x0A000001, 0x0A000002, 80, 443,
                                  packet::IpProtocol::kTcp),
      123'456'789ULL, true});
  report.flows.push_back(core::ReportedFlow{
      packet::FlowKey::five_tuple(0x0A000003, 0x0A000004, 53, 9999,
                                  packet::IpProtocol::kUdp),
      42ULL, false});
  return report;
}

TEST(RecordCodec, EncodedSizeFormula) {
  const auto report = sample_report();
  EXPECT_EQ(encoded_size(report), kHeaderBytes + 2 * kRecordBytes);
  EXPECT_EQ(encode(report, packet::FlowKeyKind::kFiveTuple).size(),
            encoded_size(report));
}

TEST(RecordCodec, RoundTripFiveTuple) {
  const auto report = sample_report();
  const auto decoded =
      decode(encode(report, packet::FlowKeyKind::kFiveTuple));
  EXPECT_EQ(decoded.interval, report.interval);
  EXPECT_EQ(decoded.threshold, report.threshold);
  ASSERT_EQ(decoded.flows.size(), report.flows.size());
  for (std::size_t i = 0; i < report.flows.size(); ++i) {
    EXPECT_EQ(decoded.flows[i].key, report.flows[i].key) << i;
    EXPECT_EQ(decoded.flows[i].estimated_bytes,
              report.flows[i].estimated_bytes);
    EXPECT_EQ(decoded.flows[i].exact, report.flows[i].exact);
  }
}

TEST(RecordCodec, RoundTripDestinationIp) {
  core::Report report;
  report.interval = 1;
  report.flows.push_back(core::ReportedFlow{
      packet::FlowKey::destination_ip(0xC0A80101), 999ULL, false});
  const auto decoded =
      decode(encode(report, packet::FlowKeyKind::kDestinationIp));
  EXPECT_EQ(decoded.flows[0].key, report.flows[0].key);
}

TEST(RecordCodec, RoundTripAsPair) {
  core::Report report;
  report.flows.push_back(core::ReportedFlow{
      packet::FlowKey::as_pair(64512, 1701), 5'000'000ULL, true});
  const auto decoded = decode(encode(report, packet::FlowKeyKind::kAsPair));
  EXPECT_EQ(decoded.flows[0].key.src_as(), 64512u);
  EXPECT_EQ(decoded.flows[0].key.dst_as(), 1701u);
}

TEST(RecordCodec, RoundTripNetworkPair) {
  core::Report report;
  report.flows.push_back(core::ReportedFlow{
      packet::FlowKey::network_pair(0x0A010200, 0x0A020300, 24),
      777'000ULL, false});
  const auto decoded =
      decode(encode(report, packet::FlowKeyKind::kNetworkPair));
  EXPECT_EQ(decoded.flows[0].key, report.flows[0].key);
  EXPECT_EQ(decoded.flows[0].key.prefix_len(), 24);
}

TEST(RecordCodec, EmptyReportRoundTrips) {
  core::Report report;
  report.interval = 3;
  const auto decoded =
      decode(encode(report, packet::FlowKeyKind::kFiveTuple));
  EXPECT_EQ(decoded.interval, 3u);
  EXPECT_TRUE(decoded.flows.empty());
}

TEST(RecordCodec, MixedKindsRejected) {
  core::Report report;
  report.flows.push_back(core::ReportedFlow{
      packet::FlowKey::destination_ip(1), 1ULL, false});
  EXPECT_THROW((void)encode(report, packet::FlowKeyKind::kFiveTuple),
               CodecError);
}

TEST(RecordCodec, BadMagicRejected) {
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple);
  data[0] ^= 0xFF;
  EXPECT_THROW((void)decode(data), CodecError);
}

TEST(RecordCodec, BadVersionRejected) {
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple);
  data[5] = 99;
  EXPECT_THROW((void)decode(data), CodecError);
}

TEST(RecordCodec, TruncationRejected) {
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple);
  data.pop_back();
  EXPECT_THROW((void)decode(data), CodecError);
  EXPECT_THROW((void)decode(std::span<const std::uint8_t>(data.data(), 10)),
               CodecError);
}

TEST(RecordCodec, TrailingBytesRejected) {
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple);
  data.push_back(0);
  EXPECT_THROW((void)decode(data), CodecError);
}

TEST(RecordCodec, CountMismatchRejected) {
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple);
  data[15] = 5;  // claim 5 records, carry 2
  EXPECT_THROW((void)decode(data), CodecError);
}

TEST(RecordCodec, ShardTrailerRoundTrips) {
  auto report = sample_report();
  report.shards.push_back(
      core::ShardStatus{60'000, 54'000, 0.913, 115, 128});
  report.shards.push_back(
      core::ShardStatus{48'500, 48'500, 0.787, 100, 128});
  EXPECT_EQ(encoded_size(report),
            kHeaderBytes + 2 * kRecordBytes + 2 * kShardRecordBytes);

  const auto data = encode(report, packet::FlowKeyKind::kFiveTuple);
  ASSERT_EQ(data.size(), encoded_size(report));
  EXPECT_EQ(data[7], 2u);  // shard count in the former reserved byte

  const auto decoded = decode(data);
  ASSERT_EQ(decoded.shards.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(decoded.shards[s].threshold, report.shards[s].threshold) << s;
    EXPECT_EQ(decoded.shards[s].next_threshold,
              report.shards[s].next_threshold);
    EXPECT_EQ(decoded.shards[s].entries_used, report.shards[s].entries_used);
    EXPECT_EQ(decoded.shards[s].capacity, report.shards[s].capacity);
    // Usage travels in micro-units, so round-trips to 1e-6.
    EXPECT_NEAR(decoded.shards[s].smoothed_usage,
                report.shards[s].smoothed_usage, 1e-6);
  }
  EXPECT_EQ(core::effective_threshold(decoded), 1'000'000u);
}

TEST(RecordCodec, VersionOnePayloadStillDecodes) {
  // A v1 sender wrote version 1 and a reserved zero where v2 carries the
  // shard count; such payloads must keep decoding unchanged.
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple);
  ASSERT_EQ(data[7], 0u);  // no shard section on an unsharded report
  data[5] = 1;             // patch the version byte back to v1
  const auto decoded = decode(data);
  EXPECT_EQ(decoded.interval, 7u);
  EXPECT_EQ(decoded.flows.size(), 2u);
  EXPECT_TRUE(decoded.shards.empty());
}

TEST(RecordCodec, ShardTrailerTruncationRejected) {
  auto report = sample_report();
  report.shards.push_back(core::ShardStatus{60'000, 54'000, 0.9, 115, 128});
  auto data = encode(report, packet::FlowKeyKind::kFiveTuple);
  data.pop_back();
  EXPECT_THROW((void)decode(data), CodecError);
}

TEST(RecordCodec, TooManyShardsRejected) {
  core::Report report;
  report.shards.resize(kMaxShards + 1);
  EXPECT_THROW((void)encode(report, packet::FlowKeyKind::kFiveTuple),
               CodecError);
}

TEST(RecordCodec, ShardTrafficTalliesRoundTrip) {
  // v3 widened the shard record by the per-interval packet/byte tallies.
  auto report = sample_report();
  core::ShardStatus status{60'000, 54'000, 0.913, 115, 128};
  status.packets = 123'456;
  status.bytes = 789'012'345;
  report.shards.push_back(status);

  const auto decoded = decode(encode(report, packet::FlowKeyKind::kFiveTuple));
  ASSERT_EQ(decoded.shards.size(), 1u);
  EXPECT_EQ(decoded.shards[0].packets, 123'456u);
  EXPECT_EQ(decoded.shards[0].bytes, 789'012'345u);
}

TEST(RecordCodec, MetricsTrailerRoundTrips) {
  const auto report = sample_report();
  const std::string metrics =
      "{\"interval\":7,\"metrics\":[{\"name\":\"nd_device_packets_total\","
      "\"kind\":\"counter\",\"value\":9}]}";
  EXPECT_EQ(encoded_size(report, metrics.size()),
            encoded_size(report) + kTrailerLengthBytes + metrics.size());

  const auto data = encode(report, packet::FlowKeyKind::kFiveTuple, metrics);
  ASSERT_EQ(data.size(), encoded_size(report, metrics.size()));
  const auto decoded = decode_full(data);
  EXPECT_EQ(decoded.metrics_json, metrics);
  EXPECT_EQ(decoded.report.flows.size(), report.flows.size());

  // The report-only decoder skips the trailer without complaint.
  EXPECT_EQ(decode(data).flows.size(), report.flows.size());
}

TEST(RecordCodec, EmptyTrailerEncodesAsV2Layout) {
  const auto report = sample_report();
  EXPECT_EQ(encoded_size(report, 0), encoded_size(report));
  const auto data = encode(report, packet::FlowKeyKind::kFiveTuple, "");
  EXPECT_EQ(data.size(), encoded_size(report));
  EXPECT_TRUE(decode_full(data).metrics_json.empty());
}

TEST(RecordCodec, TruncatedTrailerRejected) {
  const auto report = sample_report();
  auto data = encode(report, packet::FlowKeyKind::kFiveTuple, "{\"x\":1}");
  data.pop_back();  // length prefix no longer matches the payload
  EXPECT_THROW((void)decode_full(data), CodecError);
  // Chop into the length prefix itself.
  data.resize(encoded_size(report) + 2);
  EXPECT_THROW((void)decode_full(data), CodecError);
}

TEST(RecordCodec, VersionTwoShardPayloadStillDecodes) {
  // Hand-build a v2 payload: 40-byte shard records, no tallies, no
  // trailer. Encode with v3 and surgically strip the 16 tally bytes.
  auto report = sample_report();
  core::ShardStatus status{60'000, 54'000, 0.913, 115, 128};
  status.packets = 111;  // must NOT survive a v2 round trip
  status.bytes = 222;
  report.shards.push_back(status);

  auto data = encode(report, packet::FlowKeyKind::kFiveTuple);
  ASSERT_EQ(data.size(), kHeaderBytes + 2 * kRecordBytes + kShardRecordBytes);
  data.resize(data.size() - (kShardRecordBytes - kShardRecordBytesV2));
  data[5] = 2;  // patch the version byte back to v2

  const auto decoded = decode_full(data);
  ASSERT_EQ(decoded.report.shards.size(), 1u);
  EXPECT_EQ(decoded.report.shards[0].threshold, 60'000u);
  EXPECT_EQ(decoded.report.shards[0].entries_used, 115u);
  EXPECT_EQ(decoded.report.shards[0].packets, 0u);
  EXPECT_EQ(decoded.report.shards[0].bytes, 0u);
  EXPECT_TRUE(decoded.metrics_json.empty());
}

TEST(RecordCodec, TrailerOnOldVersionsRejected) {
  // Excess bytes after the shard records are only legal on v3.
  auto data = encode(sample_report(), packet::FlowKeyKind::kFiveTuple,
                     "{\"x\":1}");
  data[5] = 2;
  EXPECT_THROW((void)decode_full(data), CodecError);
}

}  // namespace
}  // namespace nd::reporting
