#include "reporting/aggregator.hpp"

#include <gtest/gtest.h>

namespace nd::reporting {
namespace {

core::ReportedFlow five_tuple_flow(std::uint32_t src, std::uint32_t dst,
                                   std::uint16_t sport,
                                   common::ByteCount bytes,
                                   bool exact = true) {
  return core::ReportedFlow{
      packet::FlowKey::five_tuple(src, dst, sport, 80,
                                  packet::IpProtocol::kTcp),
      bytes, exact};
}

TEST(Aggregator, DestinationIpSumsAcrossSources) {
  core::Report report;
  report.interval = 4;
  report.threshold = 100;
  report.flows.push_back(five_tuple_flow(1, 0x0A000001, 1111, 500));
  report.flows.push_back(five_tuple_flow(2, 0x0A000001, 2222, 300));
  report.flows.push_back(five_tuple_flow(3, 0x0A000002, 3333, 50));

  const auto aggregated = aggregate_to_destination_ip(report);
  EXPECT_EQ(aggregated.interval, 4u);
  ASSERT_EQ(aggregated.flows.size(), 2u);
  // Sorted by size: the 800-byte aggregate first.
  EXPECT_EQ(aggregated.flows[0].key,
            packet::FlowKey::destination_ip(0x0A000001));
  EXPECT_EQ(aggregated.flows[0].estimated_bytes, 800u);
  EXPECT_EQ(aggregated.flows[1].estimated_bytes, 50u);
}

TEST(Aggregator, ExactOnlyIfAllContributorsExact) {
  core::Report report;
  report.flows.push_back(five_tuple_flow(1, 9, 1, 100, true));
  report.flows.push_back(five_tuple_flow(2, 9, 2, 100, false));
  report.flows.push_back(five_tuple_flow(3, 8, 3, 100, true));
  const auto aggregated = aggregate_to_destination_ip(report);
  for (const auto& flow : aggregated.flows) {
    if (flow.key.dst_ip() == 9) {
      EXPECT_FALSE(flow.exact);
    } else {
      EXPECT_TRUE(flow.exact);
    }
  }
}

TEST(Aggregator, NetworkPairMasks) {
  core::Report report;
  report.flows.push_back(
      five_tuple_flow(0x0A000001, 0x0B000001, 1, 100));
  report.flows.push_back(
      five_tuple_flow(0x0A0000FE, 0x0B0000FE, 2, 200));  // same /24s
  report.flows.push_back(
      five_tuple_flow(0x0A000101, 0x0B000001, 3, 50));   // other src /24

  const auto aggregated = aggregate_to_network_pair(report, 24);
  ASSERT_EQ(aggregated.flows.size(), 2u);
  EXPECT_EQ(aggregated.flows[0].estimated_bytes, 300u);
  EXPECT_EQ(aggregated.flows[0].key.kind(),
            packet::FlowKeyKind::kNetworkPair);
  EXPECT_EQ(aggregated.flows[0].key.src_network(), 0x0A000000u);
  EXPECT_EQ(aggregated.flows[0].key.prefix_len(), 24);
}

TEST(Aggregator, PrefixZeroCollapsesToOneAggregate) {
  core::Report report;
  report.flows.push_back(five_tuple_flow(1, 2, 1, 10));
  report.flows.push_back(five_tuple_flow(0xFF000000, 0xEE000000, 2, 20));
  const auto aggregated = aggregate_to_network_pair(report, 0);
  ASSERT_EQ(aggregated.flows.size(), 1u);
  EXPECT_EQ(aggregated.flows[0].estimated_bytes, 30u);
}

TEST(Aggregator, EmptyReportStaysEmpty) {
  core::Report report;
  report.interval = 9;
  const auto aggregated = aggregate_to_destination_ip(report);
  EXPECT_TRUE(aggregated.flows.empty());
  EXPECT_EQ(aggregated.interval, 9u);
}

TEST(Aggregator, TotalBytesConserved) {
  core::Report report;
  common::ByteCount total = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const common::ByteCount bytes = 100 + i * 7;
    report.flows.push_back(
        five_tuple_flow(i % 5, i % 3, static_cast<std::uint16_t>(i),
                        bytes));
    total += bytes;
  }
  for (const auto& aggregated :
       {aggregate_to_destination_ip(report),
        aggregate_to_network_pair(report, 16)}) {
    common::ByteCount sum = 0;
    for (const auto& flow : aggregated.flows) {
      sum += flow.estimated_bytes;
    }
    EXPECT_EQ(sum, total);
  }
}

}  // namespace
}  // namespace nd::reporting
